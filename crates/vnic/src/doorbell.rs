//! Doorbell paths: how a host tells the NIC "a descriptor is posted".
//!
//! The VIA spec leaves the doorbell mechanism to the implementation; the two
//! designs in the paper's systems are a protected memory-mapped write
//! (cLAN, Berkeley VIA) and a kernel trap (M-VIA, which emulates VIA inside
//! the Linux kernel). The choice moves microseconds between the host and
//! the device on every single post — the §3.2.1 base benchmarks see it
//! directly, and `bench --bench ablation_doorbell` isolates it.

use simkit::{SimDuration, SimTime};
use trace::{MsgId, TracePoint, Tracer};

use crate::host::HostParams;

/// The mechanism a post uses to notify the VIA provider.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DoorbellKind {
    /// User-space store to a memory-mapped, per-VI doorbell register.
    Mmio,
    /// Trap into the kernel (software VIA); the kernel performs the post.
    KernelTrap,
}

impl DoorbellKind {
    /// Host CPU time consumed ringing the doorbell once.
    pub fn host_cost(self, host: &HostParams) -> SimDuration {
        match self {
            DoorbellKind::Mmio => host.mmio_write,
            DoorbellKind::KernelTrap => host.kernel_trap,
        }
    }

    /// Delay until the device side observes the ring (beyond firmware
    /// scheduling, which [`crate::firmware::FirmwareModel`] adds).
    pub fn propagation(self) -> SimDuration {
        match self {
            // A posted PCI write surfaces in NIC memory almost immediately.
            DoorbellKind::Mmio => SimDuration::from_nanos(300),
            // The kernel *is* the provider: no device to propagate to.
            DoorbellKind::KernelTrap => SimDuration::ZERO,
        }
    }

    /// Like [`DoorbellKind::propagation`], but stamps a
    /// [`TracePoint::DoorbellRing`] record (aux = 0 for MMIO, 1 for a
    /// kernel trap) at ring time.
    pub fn propagation_traced(
        self,
        tracer: &Tracer,
        at: SimTime,
        node: u32,
        msg: Option<MsgId>,
    ) -> SimDuration {
        tracer.record(
            at,
            TracePoint::DoorbellRing,
            node,
            msg,
            matches!(self, DoorbellKind::KernelTrap) as u64,
        );
        self.propagation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_costs_more_host_time_than_mmio() {
        let h = HostParams::pentium_ii_300();
        assert!(DoorbellKind::KernelTrap.host_cost(&h) > DoorbellKind::Mmio.host_cost(&h));
    }

    #[test]
    fn mmio_has_device_propagation() {
        assert!(DoorbellKind::Mmio.propagation() > SimDuration::ZERO);
        assert_eq!(DoorbellKind::KernelTrap.propagation(), SimDuration::ZERO);
    }
}
