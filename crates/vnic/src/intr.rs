//! Interrupt delivery for blocking completion waits.
//!
//! Polling waits resume the instant a completion lands (and burn CPU the
//! whole time); blocking waits pay an interrupt: dispatch latency before the
//! process runs again, plus handler CPU charged to the node. This trade is
//! the entire content of the paper's Fig. 4 (blocking latency up, CPU
//! utilization down).

use simkit::{CpuId, Sim, SimDuration, WaitToken};

use crate::host::HostParams;

/// Per-node interrupt delivery model.
#[derive(Clone, Copy, Debug)]
pub struct InterruptController {
    cpu: CpuId,
    /// Device-assert → process-running delay.
    latency: SimDuration,
    /// Host CPU consumed by the handler + wakeup path.
    cpu_cost: SimDuration,
}

impl InterruptController {
    /// Controller for `cpu` with explicit costs.
    pub fn new(cpu: CpuId, latency: SimDuration, cpu_cost: SimDuration) -> Self {
        InterruptController {
            cpu,
            latency,
            cpu_cost,
        }
    }

    /// Controller using the host parameter defaults.
    pub fn from_host(cpu: CpuId, host: &HostParams) -> Self {
        Self::new(cpu, host.interrupt_latency, host.interrupt_cpu_cost)
    }

    /// Deliver an interrupt that resumes the process blocked on `token`:
    /// charges handler CPU and wakes the process after the dispatch latency.
    pub fn deliver(&self, sim: &Sim, token: WaitToken) {
        sim.charge(self.cpu, self.cpu_cost);
        sim.wake_in(self.latency, token);
    }

    /// The dispatch latency of this controller.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simkit::SimTime;
    use std::sync::Arc;

    #[test]
    fn interrupt_adds_latency_and_charges_cpu() {
        let sim = Sim::new();
        let cpu = sim.add_cpu("host");
        let host = HostParams::pentium_ii_300();
        let ic = InterruptController::from_host(cpu, &host);
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let h = sim.spawn("blocked", Some(cpu), move |ctx| {
            let t = ctx.prepare_wait();
            *s2.lock() = Some(t);
            ctx.wait(t); // blocking: no CPU while waiting
            ctx.now()
        });
        let s3 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(100), move |s| {
            let t = s3.lock().take().unwrap();
            ic.deliver(s, t);
        });
        sim.run_to_completion();
        // Resumed at completion time + interrupt latency.
        assert_eq!(
            h.expect_result(),
            SimTime::ZERO + SimDuration::from_micros(100) + host.interrupt_latency
        );
        // Only the handler cost was charged, not the 100 us of blocking.
        assert_eq!(sim.cpu_busy(cpu), host.interrupt_cpu_cost);
    }
}
