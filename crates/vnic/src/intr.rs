//! Interrupt delivery for blocking completion waits.
//!
//! Polling waits resume the instant a completion lands (and burn CPU the
//! whole time); blocking waits pay an interrupt: dispatch latency before the
//! process runs again, plus handler CPU charged to the node. This trade is
//! the entire content of the paper's Fig. 4 (blocking latency up, CPU
//! utilization down).
//!
//! Interrupt wakes are scheduled as [`EventClass::Completion`] timers, so a
//! run report attributes them to the completion path. [`CoalescedInterrupts`]
//! adds optional interrupt moderation on top: deliveries landing inside an
//! open moderation window piggyback on the already-armed wake timer
//! (cancelling and re-arming it with the newest wait token) instead of
//! raising a fresh interrupt — one handler charge per fired interrupt, not
//! per completion. A zero window degenerates to immediate per-completion
//! delivery, which is the default everywhere.

use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{CpuId, EventClass, Sim, SimDuration, SimTime, TimerHandle, WaitToken};
use trace::{MsgId, TracePoint, Tracer};

use crate::host::HostParams;

/// Per-node interrupt delivery model.
#[derive(Clone, Copy, Debug)]
pub struct InterruptController {
    cpu: CpuId,
    /// Device-assert → process-running delay.
    latency: SimDuration,
    /// Host CPU consumed by the handler + wakeup path.
    cpu_cost: SimDuration,
}

impl InterruptController {
    /// Controller for `cpu` with explicit costs.
    pub fn new(cpu: CpuId, latency: SimDuration, cpu_cost: SimDuration) -> Self {
        InterruptController {
            cpu,
            latency,
            cpu_cost,
        }
    }

    /// Controller using the host parameter defaults.
    pub fn from_host(cpu: CpuId, host: &HostParams) -> Self {
        Self::new(cpu, host.interrupt_latency, host.interrupt_cpu_cost)
    }

    /// Deliver an interrupt that resumes the process blocked on `token`:
    /// charges handler CPU and wakes the process after the dispatch latency.
    pub fn deliver(&self, sim: &Sim, token: WaitToken) {
        sim.charge(self.cpu, self.cpu_cost);
        sim.wake_in_as(EventClass::Completion, self.latency, token);
    }

    /// Like [`InterruptController::deliver`], but stamps a
    /// [`TracePoint::Interrupt`] record (aux = dispatch latency in ns) at
    /// assert time.
    pub fn deliver_traced(
        &self,
        sim: &Sim,
        token: WaitToken,
        tracer: &Tracer,
        node: u32,
        msg: Option<MsgId>,
    ) {
        tracer.record(
            sim.now(),
            TracePoint::Interrupt,
            node,
            msg,
            self.latency.as_nanos(),
        );
        self.deliver(sim, token);
    }

    /// The dispatch latency of this controller.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }
}

struct PendingIntr {
    deadline: SimTime,
    timer: TimerHandle,
}

/// An [`InterruptController`] with a moderation window.
///
/// The first completion in a quiet period charges the handler and arms a
/// cancellable wake timer `latency + window` out; completions arriving
/// before that deadline cancel the pending timer and re-arm it **at the
/// same deadline** with their (newer) wait token — the wake is never
/// pushed back, and the waiter always resumes on a token it is actually
/// parked on. Clones share the window state.
#[derive(Clone)]
pub struct CoalescedInterrupts {
    ctrl: InterruptController,
    window: SimDuration,
    pending: Arc<Mutex<Option<PendingIntr>>>,
}

impl CoalescedInterrupts {
    /// Wrap `ctrl` with a moderation `window`. A zero window forwards every
    /// delivery straight to [`InterruptController::deliver`].
    pub fn new(ctrl: InterruptController, window: SimDuration) -> Self {
        CoalescedInterrupts {
            ctrl,
            window,
            pending: Arc::new(Mutex::new(None)),
        }
    }

    /// Deliver (or merge) an interrupt for `token`.
    pub fn deliver(&self, sim: &Sim, token: WaitToken) {
        if self.window == SimDuration::ZERO {
            self.ctrl.deliver(sim, token);
            return;
        }
        let now = sim.now();
        let mut pending = self.pending.lock();
        if let Some(p) = pending.as_ref() {
            if p.deadline >= now && p.timer.cancel() {
                // Merge: same deadline, newest token, no extra handler cost.
                let timer = sim.wake_timer_in(EventClass::Completion, p.deadline - now, token);
                *pending = Some(PendingIntr {
                    deadline: p.deadline,
                    timer,
                });
                return;
            }
        }
        sim.charge(self.ctrl.cpu, self.ctrl.cpu_cost);
        let deadline = now + self.ctrl.latency + self.window;
        let timer = sim.wake_timer_in(EventClass::Completion, deadline - now, token);
        *pending = Some(PendingIntr { deadline, timer });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use simkit::SimTime;
    use std::sync::Arc;

    #[test]
    fn interrupt_adds_latency_and_charges_cpu() {
        let sim = Sim::new();
        let cpu = sim.add_cpu("host");
        let host = HostParams::pentium_ii_300();
        let ic = InterruptController::from_host(cpu, &host);
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let h = sim.spawn("blocked", Some(cpu), move |ctx| {
            let t = ctx.prepare_wait();
            *s2.lock() = Some(t);
            ctx.wait(t); // blocking: no CPU while waiting
            ctx.now()
        });
        let s3 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(100), move |s| {
            let t = s3.lock().take().unwrap();
            ic.deliver(s, t);
        });
        sim.run_to_completion();
        // Resumed at completion time + interrupt latency.
        assert_eq!(
            h.expect_result(),
            SimTime::ZERO + SimDuration::from_micros(100) + host.interrupt_latency
        );
        // Only the handler cost was charged, not the 100 us of blocking.
        assert_eq!(sim.cpu_busy(cpu), host.interrupt_cpu_cost);
    }

    #[test]
    fn interrupt_wake_accounts_as_completion() {
        let sim = Sim::new();
        let cpu = sim.add_cpu("host");
        let host = HostParams::pentium_ii_300();
        let ic = InterruptController::from_host(cpu, &host);
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        sim.spawn("blocked", Some(cpu), move |ctx| {
            let t = ctx.prepare_wait();
            *s2.lock() = Some(t);
            ctx.wait(t);
        });
        let s3 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(10), move |s| {
            let t = s3.lock().take().unwrap();
            ic.deliver(s, t);
        });
        let report = sim.run_to_completion();
        assert_eq!(report.sched.class(EventClass::Completion).fired, 1);
    }

    #[test]
    fn zero_window_coalescing_matches_plain_delivery() {
        let host = HostParams::pentium_ii_300();
        let sim = Sim::new();
        let cpu = sim.add_cpu("host");
        let ic = CoalescedInterrupts::new(
            InterruptController::from_host(cpu, &host),
            SimDuration::ZERO,
        );
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let h = sim.spawn("blocked", Some(cpu), move |ctx| {
            let t = ctx.prepare_wait();
            *s2.lock() = Some(t);
            ctx.wait(t);
            ctx.now()
        });
        let s3 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(100), move |s| {
            let t = s3.lock().take().unwrap();
            ic.deliver(s, t);
        });
        sim.run_to_completion();
        assert_eq!(
            h.expect_result(),
            SimTime::ZERO + SimDuration::from_micros(100) + host.interrupt_latency
        );
        assert_eq!(sim.cpu_busy(cpu), host.interrupt_cpu_cost);
    }

    #[test]
    fn window_merges_back_to_back_interrupts() {
        // Two deliveries inside one window: one handler charge, one fired
        // wake timer, one cancelled (the merged re-arm).
        let host = HostParams::pentium_ii_300();
        let sim = Sim::new();
        let cpu = sim.add_cpu("host");
        let window = SimDuration::from_micros(20);
        let ic = CoalescedInterrupts::new(InterruptController::from_host(cpu, &host), window);
        let slot: Arc<Mutex<Option<WaitToken>>> = Arc::new(Mutex::new(None));
        let s2 = Arc::clone(&slot);
        let h = sim.spawn("blocked", Some(cpu), move |ctx| {
            let t = ctx.prepare_wait();
            *s2.lock() = Some(t);
            ctx.wait(t);
            ctx.now()
        });
        let ic2 = ic.clone();
        let s3 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(100), move |s| {
            let t = s3.lock().expect("waiter parked");
            ic2.deliver(s, t);
        });
        let s4 = Arc::clone(&slot);
        sim.call_in(SimDuration::from_micros(105), move |s| {
            // Second completion, 5 us later: still inside the window. The
            // waiter has not moved, so its token is unchanged — merging
            // re-arms the same wake.
            let t = s4.lock().expect("waiter parked");
            ic.deliver(s, t);
        });
        let report = sim.run_to_completion();
        // Woken at the *first* delivery's deadline, exactly once charged.
        assert_eq!(
            h.expect_result(),
            SimTime::ZERO + SimDuration::from_micros(100) + host.interrupt_latency + window
        );
        assert_eq!(sim.cpu_busy(cpu), host.interrupt_cpu_cost);
        assert_eq!(report.sched.class(EventClass::Completion).cancelled, 1);
    }
}
