//! Virtual→physical address translation machinery.
//!
//! This is the 2×2 design space of Banikazemi et al. (CANPC'00), which the
//! paper's §3.2.2 benchmark probes: translation performed by the **host** or
//! the **NIC**, with the translation tables resident in **host** or **NIC**
//! memory. When the NIC translates out of host-resident tables it keeps a
//! capacity-limited software cache (Berkeley VIA's design); a miss costs a
//! DMA fetch of the page-table entry across the PCI bus. The cache is real
//! — hits and misses depend on the actual page-number reference stream — so
//! the buffer-reuse benchmark (Fig. 5) exercises genuine locality behaviour.

use simkit::{SimDuration, SimTime};
use trace::{MsgId, TracePoint, Tracer};

use crate::pci::PciBus;

/// Who walks the translation tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Translator {
    /// Host CPU translates at post time (cost charged to the host).
    Host,
    /// NIC processor translates during the transfer.
    Nic,
}

/// Where the translation tables live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableLocation {
    /// Tables in host memory; a NIC translator needs DMA (or a cache hit).
    HostMemory,
    /// Tables in NIC memory; local lookups, capacity paid in NIC SRAM.
    NicMemory,
}

/// Translation-path configuration and costs.
#[derive(Clone, Copy, Debug)]
pub struct XlateConfig {
    /// Who translates.
    pub translator: Translator,
    /// Where the tables are.
    pub tables: TableLocation,
    /// Entries in the NIC's software translation cache (only meaningful for
    /// `Translator::Nic` + `TableLocation::HostMemory`; 0 disables caching).
    pub nic_cache_entries: usize,
    /// Host-side per-page lookup cost (`Translator::Host`).
    pub host_lookup: SimDuration,
    /// NIC-local per-page lookup cost (`TableLocation::NicMemory`).
    pub nic_local_lookup: SimDuration,
    /// NIC cache hit cost per page.
    pub nic_cache_hit: SimDuration,
    /// Extra NIC processing on a cache miss, on top of the PCI fetch of the
    /// page-table entry.
    pub nic_miss_penalty: SimDuration,
    /// Bytes DMA'd from host memory per missed page-table entry.
    pub pte_fetch_bytes: u64,
}

impl XlateConfig {
    /// Berkeley VIA: NIC translates, tables in host memory, software cache
    /// on the LANai.
    pub fn bvia() -> Self {
        XlateConfig {
            translator: Translator::Nic,
            tables: TableLocation::HostMemory,
            nic_cache_entries: 256,
            host_lookup: SimDuration::from_nanos(200),
            nic_local_lookup: SimDuration::from_nanos(350),
            nic_cache_hit: SimDuration::from_nanos(300),
            nic_miss_penalty: SimDuration::from_micros(8),
            pte_fetch_bytes: 8,
        }
    }

    /// cLAN: hardware translation out of NIC-resident tables.
    pub fn clan() -> Self {
        XlateConfig {
            translator: Translator::Nic,
            tables: TableLocation::NicMemory,
            nic_cache_entries: 0,
            host_lookup: SimDuration::from_nanos(200),
            nic_local_lookup: SimDuration::from_nanos(150),
            nic_cache_hit: SimDuration::from_nanos(150),
            nic_miss_penalty: SimDuration::ZERO,
            pte_fetch_bytes: 0,
        }
    }

    /// M-VIA: the kernel translates on the host during its copy; per-page
    /// work rides on the page tables already mapped.
    pub fn mvia() -> Self {
        XlateConfig {
            translator: Translator::Host,
            tables: TableLocation::HostMemory,
            nic_cache_entries: 0,
            host_lookup: SimDuration::from_nanos(250),
            nic_local_lookup: SimDuration::ZERO,
            nic_cache_hit: SimDuration::ZERO,
            nic_miss_penalty: SimDuration::ZERO,
            pte_fetch_bytes: 0,
        }
    }
}

/// Outcome of translating one page reference on the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageOutcome {
    /// Found in the NIC software cache.
    Hit,
    /// Fetched from host memory (cache filled or bypassed).
    Miss,
    /// Local NIC-memory table lookup (no cache involved).
    Local,
}

/// Hit/miss counters for the NIC translation cache.
#[derive(Clone, Copy, Debug, Default)]
pub struct TlbStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (PTE fetched over PCI).
    pub misses: u64,
    /// Local (NIC-memory table) lookups.
    pub local: u64,
}

/// A direct-mapped software translation cache keyed by global page number.
///
/// Direct mapping matches the simple firmware caches of the era and gives
/// deterministic conflict behaviour.
pub struct NicTlb {
    slots: Vec<Option<u64>>,
    stats: TlbStats,
}

impl NicTlb {
    /// Cache with `entries` slots (0 = every lookup misses).
    pub fn new(entries: usize) -> Self {
        NicTlb {
            slots: vec![None; entries],
            stats: TlbStats::default(),
        }
    }

    /// Look up `page`, filling on miss. Returns whether it hit.
    pub fn access(&mut self, page: u64) -> bool {
        if self.slots.is_empty() {
            self.stats.misses += 1;
            return false;
        }
        let idx = (page % self.slots.len() as u64) as usize;
        if self.slots[idx] == Some(page) {
            self.stats.hits += 1;
            true
        } else {
            self.slots[idx] = Some(page);
            self.stats.misses += 1;
            false
        }
    }

    /// Drop every cached entry (e.g. after a deregistration).
    pub fn invalidate_all(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Invalidate any slot holding a page in `[first, last]`.
    pub fn invalidate_range(&mut self, first: u64, last: u64) {
        for s in &mut self.slots {
            if let Some(p) = *s {
                if p >= first && p <= last {
                    *s = None;
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

/// The NIC-side translation engine: owns the cache, prices each page
/// reference, and issues PTE-fetch DMAs on misses.
pub struct XlateEngine {
    config: XlateConfig,
    tlb: NicTlb,
}

impl XlateEngine {
    /// Engine for `config`.
    pub fn new(config: XlateConfig) -> Self {
        XlateEngine {
            tlb: NicTlb::new(
                if config.tables == TableLocation::HostMemory
                    && config.translator == Translator::Nic
                {
                    config.nic_cache_entries
                } else {
                    0
                },
            ),
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &XlateConfig {
        &self.config
    }

    /// Per-page host-side translation cost (zero unless the host translates).
    pub fn host_cost_per_page(&self) -> SimDuration {
        match self.config.translator {
            Translator::Host => self.config.host_lookup,
            Translator::Nic => SimDuration::ZERO,
        }
    }

    /// Price the NIC-side translation of `pages`, reserving PCI for PTE
    /// fetches on misses. Returns the total added NIC delay.
    pub fn nic_translate(&mut self, pages: impl Iterator<Item = u64>, pci: &PciBus) -> SimDuration {
        self.nic_translate_traced(pages, pci, &Tracer::disabled(), SimTime::ZERO, 0, None)
    }

    /// Like [`XlateEngine::nic_translate`], but stamps a
    /// [`TracePoint::XlateHit`] / [`TracePoint::XlateMiss`] record per page
    /// (aux = the page number; local NIC-memory lookups count as hits).
    /// Records are stamped `at` — the translation start — since per-page
    /// completion times are not individually modeled.
    pub fn nic_translate_traced(
        &mut self,
        pages: impl Iterator<Item = u64>,
        pci: &PciBus,
        tracer: &Tracer,
        at: SimTime,
        node: u32,
        msg: Option<MsgId>,
    ) -> SimDuration {
        if self.config.translator == Translator::Host {
            return SimDuration::ZERO; // host already attached physical addrs
        }
        let mut total = SimDuration::ZERO;
        for page in pages {
            match self.config.tables {
                TableLocation::NicMemory => {
                    self.tlb.stats.local += 1;
                    total += self.config.nic_local_lookup;
                    tracer.record(at, TracePoint::XlateHit, node, msg, page);
                }
                TableLocation::HostMemory => {
                    if self.tlb.access(page) {
                        total += self.config.nic_cache_hit;
                        tracer.record(at, TracePoint::XlateHit, node, msg, page);
                    } else {
                        total += self.config.nic_miss_penalty
                            + pci.unloaded(self.config.pte_fetch_bytes);
                        // Actually occupy the bus so concurrent DMA contends.
                        pci.reserve(self.config.pte_fetch_bytes);
                        tracer.record(at, TracePoint::XlateMiss, node, msg, page);
                    }
                }
            }
        }
        total
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Invalidate cached translations for a page range (deregistration).
    pub fn invalidate_range(&mut self, first: u64, last: u64) {
        self.tlb.invalidate_range(first, last);
    }

    /// Drop every cached translation (a device reset: the NIC's
    /// translation table is wiped wholesale). Counters survive — they
    /// describe history, and the cold refills after the reset show up as
    /// honest misses.
    pub fn invalidate_all(&mut self) {
        self.tlb.invalidate_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pci::PciParams;
    use simkit::Sim;

    #[test]
    fn tlb_hits_on_reuse() {
        let mut tlb = NicTlb::new(16);
        assert!(!tlb.access(5));
        assert!(tlb.access(5));
        assert!(tlb.access(5));
        let s = tlb.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn tlb_direct_mapped_conflicts() {
        let mut tlb = NicTlb::new(4);
        assert!(!tlb.access(1));
        assert!(!tlb.access(5)); // 5 % 4 == 1: evicts page 1
        assert!(!tlb.access(1)); // conflict miss
        assert_eq!(tlb.stats().misses, 3);
    }

    #[test]
    fn zero_entry_tlb_always_misses() {
        let mut tlb = NicTlb::new(0);
        for _ in 0..5 {
            assert!(!tlb.access(7));
        }
        assert_eq!(tlb.stats().misses, 5);
    }

    #[test]
    fn invalidate_range_evicts() {
        let mut tlb = NicTlb::new(8);
        tlb.access(3);
        tlb.access(4);
        tlb.invalidate_range(3, 3);
        assert!(!tlb.access(3), "page 3 must have been evicted");
        assert!(tlb.access(4), "page 4 must have survived");
    }

    #[test]
    fn bvia_engine_reuse_is_cheap_fresh_is_expensive() {
        let sim = Sim::new();
        let pci = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let mut eng = XlateEngine::new(XlateConfig::bvia());
        let cold = eng.nic_translate(0..8, &pci);
        let warm = eng.nic_translate(0..8, &pci);
        assert!(cold > warm * 2, "cold={cold} warm={warm}");
        assert_eq!(eng.stats().misses, 8);
        assert_eq!(eng.stats().hits, 8);
    }

    #[test]
    fn clan_engine_is_reuse_insensitive() {
        let sim = Sim::new();
        let pci = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let mut eng = XlateEngine::new(XlateConfig::clan());
        let a = eng.nic_translate(0..8, &pci);
        let b = eng.nic_translate(100..108, &pci);
        assert_eq!(a, b);
        assert_eq!(eng.stats().local, 16);
    }

    #[test]
    fn host_translator_adds_no_nic_delay() {
        let sim = Sim::new();
        let pci = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let mut eng = XlateEngine::new(XlateConfig::mvia());
        assert_eq!(eng.nic_translate(0..64, &pci), SimDuration::ZERO);
        assert!(eng.host_cost_per_page() > SimDuration::ZERO);
    }

    #[test]
    fn miss_reserves_pci_bus() {
        let sim = Sim::new();
        let pci = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let mut eng = XlateEngine::new(XlateConfig::bvia());
        let before = pci.stats().transfers;
        eng.nic_translate(0..4, &pci);
        assert_eq!(pci.stats().transfers - before, 4);
    }

    #[test]
    fn capacity_misses_beyond_cache_size() {
        let sim = Sim::new();
        let pci = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let mut cfg = XlateConfig::bvia();
        cfg.nic_cache_entries = 32;
        let mut eng = XlateEngine::new(cfg);
        // Touch 64 distinct pages twice: second pass still misses everywhere
        // because 64 pages don't fit in 32 direct-mapped slots.
        eng.nic_translate(0..64, &pci);
        let second = eng.nic_translate(0..64, &pci);
        assert!(second > SimDuration::from_micros(32), "second={second}");
        assert_eq!(eng.stats().hits, 0);
    }
}
