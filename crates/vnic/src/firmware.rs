//! NIC firmware service models.
//!
//! How fast the device notices and begins servicing a rung doorbell depends
//! on the firmware architecture. Berkeley VIA's LANai firmware *polls a
//! data structure containing the send descriptors for all VIs* (paper
//! §4.3.4) — so service delay grows with the number of active VIs, which is
//! exactly what Fig. 6 measures. cLAN's hardware pops doorbells from a FIFO
//! in O(1). M-VIA has no device-side descriptor processing at all.

use simkit::{SimDuration, SimTime};
use trace::{MsgId, TracePoint, Tracer};

/// Device-side descriptor scheduling model.
#[derive(Clone, Copy, Debug)]
pub enum FirmwareModel {
    /// Hardware doorbell FIFO: O(1) dispatch regardless of VI count.
    HardwareFifo {
        /// Fixed pop-and-dispatch time.
        dispatch: SimDuration,
    },
    /// Firmware scans the per-VI descriptor blocks in a loop; a ring is
    /// noticed after the scan walks the active VIs.
    PollingLoop {
        /// Loop overhead per pass (bookkeeping, branch back).
        pass_overhead: SimDuration,
        /// Cost of inspecting one VI's send block.
        per_vi: SimDuration,
    },
    /// No device-side scheduler (host-emulated VIA).
    HostEmulated,
}

impl FirmwareModel {
    /// Delay from doorbell visibility to the start of descriptor processing,
    /// given the number of VIs currently open on this NIC.
    pub fn service_delay(&self, active_vis: usize) -> SimDuration {
        match *self {
            FirmwareModel::HardwareFifo { dispatch } => dispatch,
            FirmwareModel::PollingLoop {
                pass_overhead,
                per_vi,
            } => {
                // Deterministic worst-of-one-pass: the firmware has just
                // passed this VI, so the ring is noticed after one full scan.
                pass_overhead + per_vi * active_vis.max(1) as u64
            }
            FirmwareModel::HostEmulated => SimDuration::ZERO,
        }
    }

    /// Like [`FirmwareModel::service_delay`], but stamps a
    /// [`TracePoint::FwScan`] record (aux = the VI count the scan walked)
    /// when the scan completes, i.e. at `at + delay`.
    pub fn service_delay_traced(
        &self,
        active_vis: usize,
        tracer: &Tracer,
        at: SimTime,
        node: u32,
        msg: Option<MsgId>,
    ) -> SimDuration {
        let delay = self.service_delay(active_vis);
        tracer.record(at + delay, TracePoint::FwScan, node, msg, active_vis as u64);
        delay
    }

    /// Berkeley VIA's LANai 4.3 polling firmware.
    pub fn bvia() -> Self {
        FirmwareModel::PollingLoop {
            pass_overhead: SimDuration::from_nanos(1_500),
            per_vi: SimDuration::from_nanos(950),
        }
    }

    /// cLAN's hardware doorbell engine.
    pub fn clan() -> Self {
        FirmwareModel::HardwareFifo {
            dispatch: SimDuration::from_nanos(350),
        }
    }

    /// M-VIA: the kernel path does the work inline.
    pub fn mvia() -> Self {
        FirmwareModel::HostEmulated
    }
}

/// Scripted firmware-stall windows: while a window is open the device's
/// descriptor scheduler services nothing (a wedged firmware loop, a
/// management-interrupt storm), so a doorbell rung inside the window is
/// noticed only once the window closes.
///
/// The fault layer of a provider installs windows; the transmit path adds
/// [`FirmwareStalls::delay_from`] on top of the normal
/// [`FirmwareModel::service_delay`]. With no windows installed the check is
/// one empty-`Vec` branch, so fault-free runs are timing-identical.
/// Meaningless on [`FirmwareModel::HostEmulated`] providers, which have no
/// device-side scheduler to stall.
#[derive(Clone, Debug, Default)]
pub struct FirmwareStalls {
    /// Closed-open stall intervals `[start, end)`.
    windows: Vec<(SimTime, SimTime)>,
}

impl FirmwareStalls {
    /// No stalls.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no window has been installed.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Install a stall of `duration` starting at `at`.
    pub fn add(&mut self, at: SimTime, duration: SimDuration) {
        assert!(duration > SimDuration::ZERO, "stall must have extent");
        self.windows.push((at, at + duration));
    }

    /// Forget every installed window (a firmware reset: the device-side
    /// scheduler restarts with a clean stall script).
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    /// Extra service delay for a doorbell being serviced at `now`: zero
    /// outside every window, otherwise the time left until the latest
    /// covering window closes (overlapping stalls extend each other).
    pub fn delay_from(&self, now: SimTime) -> SimDuration {
        if self.windows.is_empty() {
            return SimDuration::ZERO;
        }
        let mut release = now;
        // A stall can end inside another stall; chase the release time
        // until no window covers it.
        loop {
            let covered = self
                .windows
                .iter()
                .filter(|(start, end)| *start <= release && release < *end)
                .map(|&(_, end)| end)
                .max();
            match covered {
                Some(end) if end > release => release = end,
                _ => break,
            }
        }
        release.saturating_duration_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polling_grows_linearly_with_vis() {
        let fw = FirmwareModel::bvia();
        let d1 = fw.service_delay(1);
        let d8 = fw.service_delay(8);
        let d32 = fw.service_delay(32);
        assert!(d8 > d1);
        assert!(d32 > d8);
        // Slope: (d32 - d8) / 24 == per_vi.
        assert_eq!((d32 - d8) / 24, SimDuration::from_nanos(950));
    }

    #[test]
    fn fifo_is_flat_in_vi_count() {
        let fw = FirmwareModel::clan();
        assert_eq!(fw.service_delay(1), fw.service_delay(64));
    }

    #[test]
    fn host_emulated_is_free() {
        assert_eq!(FirmwareModel::mvia().service_delay(16), SimDuration::ZERO);
    }

    #[test]
    fn zero_vis_treated_as_one() {
        let fw = FirmwareModel::bvia();
        assert_eq!(fw.service_delay(0), fw.service_delay(1));
    }

    #[test]
    fn empty_stalls_are_free() {
        let stalls = FirmwareStalls::new();
        assert!(stalls.is_empty());
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(123)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn stall_delays_until_window_close() {
        let mut stalls = FirmwareStalls::new();
        stalls.add(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        // Before, at the edge, inside, and after.
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(99)),
            SimDuration::ZERO
        );
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(100)),
            SimDuration::from_nanos(50)
        );
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(130)),
            SimDuration::from_nanos(20)
        );
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(150)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn overlapping_stalls_chain() {
        let mut stalls = FirmwareStalls::new();
        stalls.add(SimTime::from_nanos(100), SimDuration::from_nanos(50));
        stalls.add(SimTime::from_nanos(140), SimDuration::from_nanos(100));
        // Caught by the first window, released only when the second ends.
        assert_eq!(
            stalls.delay_from(SimTime::from_nanos(120)),
            SimDuration::from_nanos(120)
        );
    }

    #[test]
    #[should_panic(expected = "must have extent")]
    fn zero_length_stall_rejected() {
        FirmwareStalls::new().add(SimTime::ZERO, SimDuration::ZERO);
    }
}
