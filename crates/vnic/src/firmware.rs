//! NIC firmware service models.
//!
//! How fast the device notices and begins servicing a rung doorbell depends
//! on the firmware architecture. Berkeley VIA's LANai firmware *polls a
//! data structure containing the send descriptors for all VIs* (paper
//! §4.3.4) — so service delay grows with the number of active VIs, which is
//! exactly what Fig. 6 measures. cLAN's hardware pops doorbells from a FIFO
//! in O(1). M-VIA has no device-side descriptor processing at all.

use simkit::{SimDuration, SimTime};
use trace::{MsgId, TracePoint, Tracer};

/// Device-side descriptor scheduling model.
#[derive(Clone, Copy, Debug)]
pub enum FirmwareModel {
    /// Hardware doorbell FIFO: O(1) dispatch regardless of VI count.
    HardwareFifo {
        /// Fixed pop-and-dispatch time.
        dispatch: SimDuration,
    },
    /// Firmware scans the per-VI descriptor blocks in a loop; a ring is
    /// noticed after the scan walks the active VIs.
    PollingLoop {
        /// Loop overhead per pass (bookkeeping, branch back).
        pass_overhead: SimDuration,
        /// Cost of inspecting one VI's send block.
        per_vi: SimDuration,
    },
    /// No device-side scheduler (host-emulated VIA).
    HostEmulated,
}

impl FirmwareModel {
    /// Delay from doorbell visibility to the start of descriptor processing,
    /// given the number of VIs currently open on this NIC.
    pub fn service_delay(&self, active_vis: usize) -> SimDuration {
        match *self {
            FirmwareModel::HardwareFifo { dispatch } => dispatch,
            FirmwareModel::PollingLoop {
                pass_overhead,
                per_vi,
            } => {
                // Deterministic worst-of-one-pass: the firmware has just
                // passed this VI, so the ring is noticed after one full scan.
                pass_overhead + per_vi * active_vis.max(1) as u64
            }
            FirmwareModel::HostEmulated => SimDuration::ZERO,
        }
    }

    /// Like [`FirmwareModel::service_delay`], but stamps a
    /// [`TracePoint::FwScan`] record (aux = the VI count the scan walked)
    /// when the scan completes, i.e. at `at + delay`.
    pub fn service_delay_traced(
        &self,
        active_vis: usize,
        tracer: &Tracer,
        at: SimTime,
        node: u32,
        msg: Option<MsgId>,
    ) -> SimDuration {
        let delay = self.service_delay(active_vis);
        tracer.record(at + delay, TracePoint::FwScan, node, msg, active_vis as u64);
        delay
    }

    /// Berkeley VIA's LANai 4.3 polling firmware.
    pub fn bvia() -> Self {
        FirmwareModel::PollingLoop {
            pass_overhead: SimDuration::from_nanos(1_500),
            per_vi: SimDuration::from_nanos(950),
        }
    }

    /// cLAN's hardware doorbell engine.
    pub fn clan() -> Self {
        FirmwareModel::HardwareFifo {
            dispatch: SimDuration::from_nanos(350),
        }
    }

    /// M-VIA: the kernel path does the work inline.
    pub fn mvia() -> Self {
        FirmwareModel::HostEmulated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polling_grows_linearly_with_vis() {
        let fw = FirmwareModel::bvia();
        let d1 = fw.service_delay(1);
        let d8 = fw.service_delay(8);
        let d32 = fw.service_delay(32);
        assert!(d8 > d1);
        assert!(d32 > d8);
        // Slope: (d32 - d8) / 24 == per_vi.
        assert_eq!((d32 - d8) / 24, SimDuration::from_nanos(950));
    }

    #[test]
    fn fifo_is_flat_in_vi_count() {
        let fw = FirmwareModel::clan();
        assert_eq!(fw.service_delay(1), fw.service_delay(64));
    }

    #[test]
    fn host_emulated_is_free() {
        assert_eq!(FirmwareModel::mvia().service_delay(16), SimDuration::ZERO);
    }

    #[test]
    fn zero_vis_treated_as_one() {
        let fw = FirmwareModel::bvia();
        assert_eq!(fw.service_delay(0), fw.service_delay(1));
    }
}
