//! Bounded device descriptor rings.
//!
//! Real NICs stage work in fixed-size descriptor rings; when a ring is
//! full the post *fails visibly* instead of queueing unboundedly in host
//! memory. [`DescRing`] models that: a capacity-bounded FIFO that rejects
//! pushes past capacity and keeps an occupancy high-water mark plus a
//! rejected-push count, so exhaustion shows up as an accountable event
//! rather than silent elastic growth.

use std::collections::VecDeque;

/// A capacity-bounded FIFO of device descriptors (transmit jobs, receive
/// slots, …). Rejecting, not elastic: `try_push` hands the item back when
/// the ring is full.
#[derive(Debug)]
pub struct DescRing<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    rejected: u64,
}

impl<T> DescRing<T> {
    /// An empty ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a descriptor ring needs at least one slot");
        DescRing {
            items: VecDeque::new(),
            capacity,
            high_water: 0,
            rejected: 0,
        }
    }

    /// Append `item`, or give it back if the ring is at capacity (the
    /// rejected-push counter records the refusal either way).
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Pop the oldest item, if any.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Drop every queued item (a device reset wiping the ring), returning
    /// how many died. The high-water mark and rejected-push count survive:
    /// they describe the ring's history, not its contents.
    pub fn clear(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Pushes refused because the ring was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_occupancy() {
        let mut r = DescRing::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.high_water(), 3);
        assert_eq!(r.pop_front(), Some(0));
        assert_eq!(r.pop_front(), Some(1));
        r.try_push(9).unwrap();
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), Some(9));
        assert_eq!(r.pop_front(), None);
        assert_eq!(r.high_water(), 3, "high water survives drain");
    }

    #[test]
    fn full_ring_rejects_and_counts() {
        let mut r = DescRing::new(2);
        r.try_push("a").unwrap();
        r.try_push("b").unwrap();
        assert_eq!(r.try_push("c"), Err("c"));
        assert_eq!(r.try_push("d"), Err("d"));
        assert_eq!(r.rejected(), 2);
        assert_eq!(r.len(), 2);
        r.pop_front();
        r.try_push("c").unwrap();
        assert_eq!(r.rejected(), 2, "a successful push is not a rejection");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = DescRing::<u32>::new(0);
    }
}
