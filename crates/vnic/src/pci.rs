//! The I/O bus between host memory and the NIC.
//!
//! A 33 MHz / 32-bit PCI bus is a single shared FIFO resource per node:
//! every DMA (descriptor fetch, translation-entry fetch, payload transfer)
//! serializes across it. The model is busy-until occupancy with a
//! per-transaction setup cost — enough for contention between concurrent
//! send and receive DMA streams to emerge, which is what shapes the large-
//! message bandwidth ceilings in the paper.

use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{EventClass, Sim, SimDuration, SimTime};

/// PCI bus characteristics.
#[derive(Clone, Copy, Debug)]
pub struct PciParams {
    /// Per-transaction arbitration + address-phase overhead.
    pub setup: SimDuration,
    /// Sustained burst bandwidth in bytes/second.
    pub bandwidth_bps: u64,
}

impl PciParams {
    /// 33 MHz / 32-bit PCI: 132 MB/s theoretical; ~120 MB/s sustained burst.
    pub fn pci_33_32() -> Self {
        PciParams {
            setup: SimDuration::from_nanos(400),
            bandwidth_bps: 120_000_000,
        }
    }

    /// Pure data time (setup excluded) for `bytes`.
    pub fn data_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_nanos(ns as u64)
    }
}

/// Per-bus transfer counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PciStats {
    /// Completed transactions.
    pub transfers: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

struct PciState {
    params: PciParams,
    busy_until: SimTime,
    stats: PciStats,
}

/// One node's PCI bus. Clonable handle; all clones share the occupancy.
#[derive(Clone)]
pub struct PciBus {
    sim: Sim,
    state: Arc<Mutex<PciState>>,
}

impl PciBus {
    /// New idle bus.
    pub fn new(sim: Sim, params: PciParams) -> Self {
        PciBus {
            sim,
            state: Arc::new(Mutex::new(PciState {
                params,
                busy_until: SimTime::ZERO,
                stats: PciStats::default(),
            })),
        }
    }

    /// Reserve the bus starting no earlier than `earliest` for a transfer of
    /// `bytes`; returns the completion instant. The reservation is made
    /// immediately (FIFO arbitration at call order).
    pub fn reserve_at(&self, earliest: SimTime, bytes: u64) -> SimTime {
        let mut st = self.state.lock();
        let start = st.busy_until.max(earliest);
        let end = start + st.params.setup + st.params.data_time(bytes);
        st.busy_until = end;
        st.stats.transfers += 1;
        st.stats.bytes += bytes;
        end
    }

    /// Reserve the bus starting now; returns the completion instant.
    pub fn reserve(&self, bytes: u64) -> SimTime {
        self.reserve_at(self.sim.now(), bytes)
    }

    /// Reserve the bus now and run `f` when the transfer completes. DMA
    /// completion accounts as [`EventClass::Firmware`]; use
    /// [`PciBus::transfer_then_as`] when the transfer belongs to another
    /// component (e.g. a completion write).
    pub fn transfer_then(&self, bytes: u64, f: impl FnOnce(&Sim) + Send + 'static) {
        self.transfer_then_as(EventClass::Firmware, bytes, f);
    }

    /// [`PciBus::transfer_then`] with an explicit [`EventClass`] tag.
    pub fn transfer_then_as(
        &self,
        class: EventClass,
        bytes: u64,
        f: impl FnOnce(&Sim) + Send + 'static,
    ) {
        let end = self.reserve(bytes);
        self.sim.call_at_as(class, end, f);
    }

    /// Instant the last reservation releases the bus. `SimTime::ZERO` for
    /// a bus that has never been reserved.
    pub fn busy_until(&self) -> SimTime {
        self.state.lock().busy_until
    }

    /// Whether the bus is free at `now` (no reservation extends past it).
    /// The fused fast path uses this as a contention guard: fusing only
    /// when the bus is idle keeps its eager reservations identical to the
    /// general event chain's.
    pub fn idle(&self, now: SimTime) -> bool {
        self.state.lock().busy_until <= now
    }

    /// Unloaded duration of a transfer (setup + data), ignoring occupancy.
    pub fn unloaded(&self, bytes: u64) -> SimDuration {
        let st = self.state.lock();
        st.params.setup + st.params.data_time(bytes)
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PciStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_serialize_on_the_bus() {
        let sim = Sim::new();
        let bus = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let t1 = bus.reserve(1200);
        let t2 = bus.reserve(1200);
        assert!(t2 > t1);
        assert_eq!(t2 - t1, bus.unloaded(1200));
    }

    #[test]
    fn data_time_exact() {
        let p = PciParams::pci_33_32();
        // 120 bytes at 120 MB/s = 1 us.
        assert_eq!(p.data_time(120), SimDuration::from_micros(1));
        assert_eq!(p.data_time(0), SimDuration::ZERO);
    }

    #[test]
    fn transfer_then_fires_at_completion() {
        let sim = Sim::new();
        let bus = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let done = Arc::new(Mutex::new(None));
        let d2 = Arc::clone(&done);
        bus.transfer_then(120, move |s| {
            *d2.lock() = Some(s.now());
        });
        sim.run_to_completion();
        let expected = SimTime::ZERO + PciParams::pci_33_32().setup + SimDuration::from_micros(1);
        assert_eq!(done.lock().unwrap(), expected);
    }

    #[test]
    fn reserve_at_respects_earliest() {
        let sim = Sim::new();
        let bus = PciBus::new(sim.clone(), PciParams::pci_33_32());
        let later = SimTime::ZERO + SimDuration::from_micros(50);
        let end = bus.reserve_at(later, 0);
        assert_eq!(end, later + PciParams::pci_33_32().setup);
    }

    #[test]
    fn stats_accumulate() {
        let sim = Sim::new();
        let bus = PciBus::new(sim.clone(), PciParams::pci_33_32());
        bus.reserve(100);
        bus.reserve(200);
        let s = bus.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 300);
    }
}
