//! # vnic — host, I/O bus, and programmable-NIC mechanisms
//!
//! The node-local substrate of the VIBe reproduction. Where [`fabric`]
//! models the wires, this crate models everything between a user buffer and
//! the wire:
//!
//! * [`host::HostParams`] — host CPU cost table (trap, MMIO, memcpy,
//!   interrupts, page pinning), calibrated to the paper's 300 MHz PII.
//! * [`pci::PciBus`] — the shared 33 MHz/32-bit PCI bus every DMA crosses.
//! * [`xlate`] — the 2×2 address-translation design space (host/NIC
//!   translator × host/NIC tables) with a *real* capacity-limited NIC
//!   translation cache; Fig. 5's buffer-reuse sensitivity comes from here.
//! * [`doorbell::DoorbellKind`] — MMIO vs. kernel-trap notification.
//! * [`firmware::FirmwareModel`] — O(1) hardware doorbell FIFO vs. the
//!   per-VI polling loop that makes Berkeley VIA's latency grow with the
//!   number of open VIs (Fig. 6).
//! * [`intr::InterruptController`] — blocking-wait interrupt delivery
//!   (Fig. 4's latency/CPU trade).
//! * [`ring::DescRing`] — capacity-bounded device descriptor rings, so
//!   resource exhaustion is a visible, accountable event.
//!
//! The VIA engine in the `via` crate composes these mechanisms into the
//! three provider profiles.

#![warn(missing_docs)]

pub mod doorbell;
pub mod firmware;
pub mod host;
pub mod intr;
pub mod pci;
pub mod ring;
pub mod xlate;

pub use doorbell::DoorbellKind;
pub use firmware::{FirmwareModel, FirmwareStalls};
pub use host::HostParams;
pub use intr::{CoalescedInterrupts, InterruptController};
pub use pci::{PciBus, PciParams, PciStats};
pub use ring::DescRing;
pub use xlate::{
    NicTlb, PageOutcome, TableLocation, TlbStats, Translator, XlateConfig, XlateEngine,
};
