//! Host-processor cost model.
//!
//! Calibrated to the paper's testbed: 300 MHz Pentium II, SDRAM, Linux 2.2.
//! Every constant is a *cost* the VIA layer charges to the node's CPU (via
//! [`simkit::ProcessCtx::busy`]) when the corresponding action happens on
//! the host.

use simkit::SimDuration;

/// Host CPU and memory-system cost constants.
#[derive(Clone, Copy, Debug)]
pub struct HostParams {
    /// Entering + leaving the kernel (trap/syscall round trip).
    pub kernel_trap: SimDuration,
    /// One uncached write across the PCI bus (MMIO doorbell ring).
    pub mmio_write: SimDuration,
    /// Fixed cost of starting a memcpy (call + cache warmup).
    pub memcpy_setup: SimDuration,
    /// Host memory copy bandwidth, bytes/second (~200 MB/s sustained for
    /// uncached kernel bounce buffers on a PII-300).
    pub copy_bandwidth_bps: u64,
    /// Building a descriptor's control segment and ringing bookkeeping.
    pub descriptor_build: SimDuration,
    /// Additional per-data-segment descriptor fill cost.
    pub per_segment_build: SimDuration,
    /// One poll of a descriptor/CQ status word.
    pub completion_check: SimDuration,
    /// CPU consumed handling one interrupt (handler + wakeup path).
    pub interrupt_cpu_cost: SimDuration,
    /// Delay from device interrupt assertion until the blocked process runs
    /// again (IRQ dispatch + scheduler).
    pub interrupt_latency: SimDuration,
    /// Virtual-memory page size (4 KiB on the testbed).
    pub page_size: u32,
}

impl HostParams {
    /// The paper's testbed host: 300 MHz Pentium II, 33 MHz/32-bit PCI,
    /// Linux 2.2.
    pub fn pentium_ii_300() -> Self {
        HostParams {
            kernel_trap: SimDuration::from_nanos(1_800),
            mmio_write: SimDuration::from_nanos(250),
            memcpy_setup: SimDuration::from_nanos(150),
            copy_bandwidth_bps: 200_000_000,
            descriptor_build: SimDuration::from_nanos(500),
            per_segment_build: SimDuration::from_nanos(150),
            completion_check: SimDuration::from_nanos(100),
            interrupt_cpu_cost: SimDuration::from_micros(4),
            interrupt_latency: SimDuration::from_micros(9),
            page_size: 4096,
        }
    }

    /// Time for the host CPU to copy `bytes` (setup + per-byte).
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.copy_bandwidth_bps as u128);
        self.memcpy_setup + SimDuration::from_nanos(ns as u64)
    }

    /// Number of pages a buffer spans, assuming worst-case page alignment is
    /// avoided (buffers in the benchmarks are page-aligned, as real VIPL
    /// allocators produced).
    pub fn pages_spanned(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1 // a zero-length descriptor still names one page
        } else {
            bytes.div_ceil(self.page_size as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_time_scales_linearly() {
        let h = HostParams::pentium_ii_300();
        // 200 KB at 200 MB/s = 1 ms (+ setup).
        let t = h.copy_time(200_000);
        assert_eq!(t, h.memcpy_setup + SimDuration::from_millis(1));
        assert_eq!(h.copy_time(0), SimDuration::ZERO);
    }

    #[test]
    fn copy_time_rounds_up() {
        let h = HostParams::pentium_ii_300();
        // 1 byte at 200 MB/s = 5 ns exactly.
        assert_eq!(t_minus_setup(&h, 1), 5);
        fn t_minus_setup(h: &HostParams, b: u64) -> u64 {
            (h.copy_time(b) - h.memcpy_setup).as_nanos()
        }
    }

    #[test]
    fn pages_spanned_boundaries() {
        let h = HostParams::pentium_ii_300();
        assert_eq!(h.pages_spanned(0), 1);
        assert_eq!(h.pages_spanned(1), 1);
        assert_eq!(h.pages_spanned(4096), 1);
        assert_eq!(h.pages_spanned(4097), 2);
        assert_eq!(h.pages_spanned(8192), 2);
        assert_eq!(h.pages_spanned(32 * 1024 * 1024), 8192);
    }
}
