//! Integration tests of the message-passing layer: protocol selection,
//! tag matching, unexpected messages, collectives, and multi-rank
//! exchanges across the three VIA profiles.

use mpl::{Mpl, MplConfig};
use simkit::Sim;
use via::Profile;

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(salt))
        .collect()
}

/// Two-rank exchange of one message of `len` bytes; returns (receiver's
/// bytes, sender stats, receiver stats).
fn exchange(
    profile: Profile,
    cfg: MplConfig,
    len: usize,
) -> (Vec<u8>, mpl::MplStats, mpl::MplStats) {
    let sim = Sim::new();
    let handles = Mpl::spawn_world(&sim, profile, 2, cfg, 1, move |ctx, mut mpl| {
        let buf = mpl.malloc((len as u64).max(1) + 64);
        let mh = mpl.register(ctx, buf, (len as u64).max(1) + 64);
        if mpl.rank() == 0 {
            mpl.mem_write(buf, &pattern(len, 9));
            mpl.send(ctx, 1, 42, buf, mh, len as u64);
            (Vec::new(), mpl.stats())
        } else {
            let n = mpl.recv(ctx, 0, 42, buf, mh, (len as u64).max(1) + 64);
            assert_eq!(n, len as u64);
            (mpl.mem_read(buf, n.max(1))[..len].to_vec(), mpl.stats())
        }
    });
    sim.run_to_completion();
    let (_, tx_stats) = handles[0].expect_result();
    let (data, rx_stats) = handles[1].expect_result();
    (data, tx_stats, rx_stats)
}

#[test]
fn eager_path_for_small_messages() {
    for p in Profile::paper_trio() {
        let (data, tx, _) = exchange(p.clone(), MplConfig::default(), 1000);
        assert_eq!(data, pattern(1000, 9), "{}", p.name);
        assert_eq!(tx.eager_sends, 1, "{}", p.name);
        assert_eq!(tx.rendezvous_sends, 0, "{}", p.name);
    }
}

#[test]
fn rendezvous_path_for_large_messages() {
    for p in Profile::paper_trio() {
        let (data, tx, rx) = exchange(p.clone(), MplConfig::default(), 20_000);
        assert_eq!(data, pattern(20_000, 9), "{}", p.name);
        assert_eq!(tx.rendezvous_sends, 1, "{}", p.name);
        assert_eq!(rx.rts_matches, 1, "{}", p.name);
    }
}

#[test]
fn threshold_is_inclusive_boundary() {
    let cfg = MplConfig {
        eager_threshold: 4096,
        ..Default::default()
    };
    let (_, tx, _) = exchange(Profile::clan(), cfg, 4096);
    assert_eq!(tx.eager_sends, 1);
    let (_, tx, _) = exchange(Profile::clan(), cfg, 4097);
    assert_eq!(tx.rendezvous_sends, 1);
}

#[test]
fn zero_length_messages_work() {
    let (data, tx, _) = exchange(Profile::bvia(), MplConfig::default(), 0);
    assert!(data.is_empty());
    assert_eq!(tx.eager_sends, 1);
}

#[test]
fn out_of_order_tags_match_correctly() {
    // Sender posts tag A then tag B; receiver asks for B first: A must be
    // stashed as unexpected and still delivered afterward.
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::clan(),
        2,
        MplConfig::default(),
        2,
        |ctx, mut mpl| {
            let buf = mpl.malloc(8192);
            let mh = mpl.register(ctx, buf, 8192);
            if mpl.rank() == 0 {
                mpl.mem_write(buf, &pattern(100, 1));
                mpl.send(ctx, 1, 1, buf, mh, 100);
                mpl.mem_write(buf, &pattern(200, 2));
                mpl.send(ctx, 1, 2, buf, mh, 200);
                (Vec::new(), Vec::new(), mpl.stats())
            } else {
                let n2 = mpl.recv(ctx, 0, 2, buf, mh, 8192);
                let b = mpl.mem_read(buf, n2);
                let n1 = mpl.recv(ctx, 0, 1, buf, mh, 8192);
                let a = mpl.mem_read(buf, n1);
                (a, b, mpl.stats())
            }
        },
    );
    sim.run_to_completion();
    let (a, b, stats) = handles[1].expect_result();
    assert_eq!(a, pattern(100, 1));
    assert_eq!(b, pattern(200, 2));
    assert!(stats.unexpected_matches >= 1);
}

#[test]
fn interleaved_eager_and_rendezvous_same_pair() {
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::clan(),
        2,
        MplConfig::default(),
        3,
        |ctx, mut mpl| {
            let buf = mpl.malloc(64 * 1024);
            let mh = mpl.register(ctx, buf, 64 * 1024);
            if mpl.rank() == 0 {
                for (tag, len, salt) in [
                    (1u16, 128usize, 1u8),
                    (2, 30_000, 2),
                    (3, 64, 3),
                    (4, 25_000, 4),
                ] {
                    mpl.mem_write(buf, &pattern(len, salt));
                    mpl.send(ctx, 1, tag, buf, mh, len as u64);
                }
                true
            } else {
                for (tag, len, salt) in [
                    (1u16, 128usize, 1u8),
                    (2, 30_000, 2),
                    (3, 64, 3),
                    (4, 25_000, 4),
                ] {
                    let n = mpl.recv(ctx, 0, tag, buf, mh, 64 * 1024);
                    assert_eq!(n, len as u64, "tag {tag}");
                    assert_eq!(mpl.mem_read(buf, n), pattern(len, salt), "tag {tag}");
                }
                true
            }
        },
    );
    sim.run_to_completion();
    assert!(handles.into_iter().all(|h| h.expect_result()));
}

#[test]
fn barrier_synchronizes_four_ranks() {
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::clan(),
        4,
        MplConfig::default(),
        4,
        |ctx, mut mpl| {
            // Ranks reach the barrier at staggered times; everyone must
            // leave it no earlier than the latest arrival.
            let delay = simkit::SimDuration::from_millis(mpl.rank() as u64 * 3);
            ctx.sleep(delay);
            let arrived = ctx.now();
            mpl.barrier(ctx);
            (arrived, ctx.now())
        },
    );
    sim.run_to_completion();
    let results: Vec<_> = handles.into_iter().map(|h| h.expect_result()).collect();
    let latest_arrival = results.iter().map(|(a, _)| *a).max().unwrap();
    for (rank, (_, left)) in results.iter().enumerate() {
        assert!(
            *left >= latest_arrival,
            "rank {rank} left the barrier at {left} before the last arrival {latest_arrival}"
        );
    }
}

#[test]
fn ring_exchange_across_four_ranks() {
    // Each rank sends to (rank+1) % N and receives from (rank-1) % N —
    // the canonical halo-exchange pattern.
    const N: usize = 4;
    const LEN: usize = 12_000; // rendezvous-sized
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::bvia(),
        N,
        MplConfig::default(),
        5,
        |ctx, mut mpl| {
            let rank = mpl.rank();
            let buf_tx = mpl.malloc(LEN as u64);
            let mh_tx = mpl.register(ctx, buf_tx, LEN as u64);
            let buf_rx = mpl.malloc(LEN as u64);
            let mh_rx = mpl.register(ctx, buf_rx, LEN as u64);
            mpl.mem_write(buf_tx, &pattern(LEN, rank as u8));
            let dst = (rank + 1) % N;
            let src = (rank + N - 1) % N;
            // Even ranks send first; odd ranks receive first (avoids the
            // rendezvous handshake interleaving problem of naive rings).
            if rank % 2 == 0 {
                mpl.send(ctx, dst, 7, buf_tx, mh_tx, LEN as u64);
                let n = mpl.recv(ctx, src, 7, buf_rx, mh_rx, LEN as u64);
                assert_eq!(n, LEN as u64);
            } else {
                let n = mpl.recv(ctx, src, 7, buf_rx, mh_rx, LEN as u64);
                assert_eq!(n, LEN as u64);
                mpl.send(ctx, dst, 7, buf_tx, mh_tx, LEN as u64);
            }
            mpl.mem_read(buf_rx, LEN as u64)
        },
    );
    sim.run_to_completion();
    for (rank, h) in handles.into_iter().enumerate() {
        let got = h.expect_result();
        let src = (rank + 4 - 1) % 4;
        assert_eq!(got, pattern(LEN, src as u8), "rank {rank}");
    }
}

#[test]
fn many_small_messages_stress_the_ring() {
    // More messages than ring slots, sent back-to-back: the repost path
    // must keep up without dropping anything (flow control comes from the
    // blocking sends pacing against eager completions).
    const MSGS: usize = 64;
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::clan(),
        2,
        MplConfig {
            ring_slots: 4,
            ..Default::default()
        },
        6,
        |ctx, mut mpl| {
            let buf = mpl.malloc(4096);
            let mh = mpl.register(ctx, buf, 4096);
            if mpl.rank() == 0 {
                for i in 0..MSGS {
                    mpl.mem_write(buf, &pattern(256, i as u8));
                    mpl.send(ctx, 1, i as u16, buf, mh, 256);
                    // Pace: eager sends complete locally, so without the
                    // layer-level pacing of a real app we hand the ring a
                    // chance to repost.
                    ctx.sleep(simkit::SimDuration::from_micros(40));
                }
                0
            } else {
                let mut ok = 0;
                for i in 0..MSGS {
                    let n = mpl.recv(ctx, 0, i as u16, buf, mh, 4096);
                    assert_eq!(n, 256);
                    assert_eq!(mpl.mem_read(buf, 256), pattern(256, i as u8), "msg {i}");
                    ok += 1;
                }
                ok
            }
        },
    );
    sim.run_to_completion();
    assert_eq!(handles[1].expect_result(), MSGS);
}

#[test]
fn works_over_reliable_delivery_with_loss() {
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(0.05);
    let cfg = MplConfig {
        reliability: via::Reliability::ReliableDelivery,
        ..Default::default()
    };
    let handles = Mpl::spawn_world(&sim, profile, 2, cfg, 7, |ctx, mut mpl| {
        let buf = mpl.malloc(64 * 1024);
        let mh = mpl.register(ctx, buf, 64 * 1024);
        if mpl.rank() == 0 {
            for (tag, len) in [(1u16, 500usize), (2, 40_000), (3, 120)] {
                mpl.mem_write(buf, &pattern(len, tag as u8));
                mpl.send(ctx, 1, tag, buf, mh, len as u64);
            }
            true
        } else {
            for (tag, len) in [(1u16, 500usize), (2, 40_000), (3, 120)] {
                let n = mpl.recv(ctx, 0, tag, buf, mh, 64 * 1024);
                assert_eq!(n, len as u64);
                assert_eq!(mpl.mem_read(buf, n), pattern(len, tag as u8));
            }
            true
        }
    });
    sim.run_to_completion();
    assert!(handles.into_iter().all(|h| h.expect_result()));
}

#[test]
#[should_panic(expected = "truncated")]
fn oversized_message_panics_like_mpi_err_truncate() {
    let sim = Sim::new();
    let handles = Mpl::spawn_world(
        &sim,
        Profile::clan(),
        2,
        MplConfig::default(),
        8,
        |ctx, mut mpl| {
            let buf = mpl.malloc(8192);
            let mh = mpl.register(ctx, buf, 8192);
            if mpl.rank() == 0 {
                mpl.send(ctx, 1, 1, buf, mh, 4096);
            } else {
                // Capacity smaller than the incoming message.
                mpl.recv(ctx, 0, 1, buf, mh, 100);
            }
        },
    );
    let _ = sim.run();
    sim.shutdown();
    for h in handles {
        let _ = h.take_result(); // rethrows the receiver's panic
    }
}
