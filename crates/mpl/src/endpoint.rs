//! The message-passing endpoint: tag-matched, rank-addressed send/receive
//! over VIA, with automatic eager/rendezvous protocol selection.
//!
//! Architecture (the classic MPI-over-VIA design the paper's audience was
//! building):
//!
//! * every rank pair has **two VI connections** — an *eager* VI fed by a
//!   ring of pre-posted, pre-registered bounce buffers, and a *bulk* VI
//!   used only for rendezvous payloads, so the FIFO receive queue can be
//!   pointed at the user's buffer without racing the ring;
//! * small messages go **eager**: one copy into a registered bounce slot
//!   on the send side, one copy out of the ring slot on the receive side
//!   (buffer reuse keeps the NIC's translation cache hot — the Fig. 5
//!   lesson);
//! * large messages go **rendezvous**: RTS → receiver posts the user
//!   buffer on the bulk VI → CTS → sender streams zero-copy from its own
//!   registered user buffer;
//! * one completion queue per rank merges every receive queue, drained by
//!   a progress engine that stashes unexpected messages.

use simkit::{ProcessCtx, SimDuration, WaitMode};
use via::{
    Cq, Descriptor, Discriminator, MemAttributes, MemHandle, Profile, Provider, QueueKind,
    Reliability, Vi, ViAttributes, ViId,
};

use crate::proto::{self, Kind, Tag};

/// Tag reserved by the layer for its collective operations.
pub const BARRIER_TAG: Tag = 0xFFFF;

/// Layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct MplConfig {
    /// Largest message sent eagerly; larger ones use rendezvous.
    pub eager_threshold: u32,
    /// Pre-posted ring slots per peer.
    pub ring_slots: usize,
    /// Reliability level of every connection (must be supported by the
    /// profile).
    pub reliability: Reliability,
}

impl Default for MplConfig {
    fn default() -> Self {
        MplConfig {
            eager_threshold: 8192,
            ring_slots: 8,
            reliability: Reliability::Unreliable,
        }
    }
}

/// Layer counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct MplStats {
    /// Messages sent via the eager path.
    pub eager_sends: u64,
    /// Messages sent via rendezvous.
    pub rendezvous_sends: u64,
    /// Receives satisfied from the unexpected-message stash.
    pub unexpected_matches: u64,
    /// Receives that matched a parked RTS.
    pub rts_matches: u64,
}

struct Peer {
    eager: Vi,
    bulk: Vi,
    /// Pre-registered ring slots: `(va, handle)`, reposted after each use.
    ring: Vec<(u64, MemHandle)>,
    /// Bounce buffer for this rank's eager sends to the peer.
    send_slot: (u64, MemHandle),
    /// Small buffer for RTS/CTS control sends.
    ctrl_slot: (u64, MemHandle),
    /// Length of a completed inbound bulk (rendezvous) transfer.
    bulk_done: Option<u64>,
    /// A CTS for this rank's outstanding rendezvous send arrived.
    cts_pending: bool,
}

/// One rank's endpoint. Construct with [`Mpl::attach`] inside the rank's
/// simulated process.
pub struct Mpl {
    provider: Provider,
    rank: usize,
    ranks: usize,
    cfg: MplConfig,
    cq: Cq,
    peers: Vec<Option<Peer>>,
    /// Unexpected eager messages: `(src, tag, payload)`.
    unexpected: Vec<(usize, Tag, Vec<u8>)>,
    /// Parked rendezvous requests: `(src, tag, len)`.
    pending_rts: Vec<(usize, Tag, u64)>,
    stats: MplStats,
}

impl Mpl {
    /// Build the endpoint: creates two VIs per peer, wires every receive
    /// queue to one CQ, connects the full mesh (lower rank initiates), and
    /// posts the eager rings. Call from the rank's own process.
    pub fn attach(
        ctx: &mut ProcessCtx,
        provider: Provider,
        rank: usize,
        ranks: usize,
        cfg: MplConfig,
    ) -> Self {
        assert!(ranks >= 2, "a world needs at least two ranks");
        assert!(rank < ranks);
        assert!(
            provider.profile().supports_reliability(cfg.reliability),
            "profile does not support the requested reliability"
        );
        let slot_len = (cfg.eager_threshold as u64).max(64);
        let cq = provider
            .create_cq(ctx, (ranks * (cfg.ring_slots + 2) * 2).max(64))
            .expect("cq");
        let attrs = ViAttributes {
            reliability: cfg.reliability,
            ..Default::default()
        };
        let mut peers: Vec<Option<Peer>> = (0..ranks).map(|_| None).collect();
        // Deterministic mesh bring-up: for each pair, the lower rank
        // connects and the higher accepts; requests park at the acceptor,
        // so no extra synchronization is needed.
        #[allow(clippy::needless_range_loop)] // `peer` is a rank, not an index
        for peer in 0..ranks {
            if peer == rank {
                continue;
            }
            let eager = provider
                .create_vi(ctx, attrs, None, Some(&cq))
                .expect("eager vi");
            let bulk = provider
                .create_vi(ctx, attrs, None, Some(&cq))
                .expect("bulk vi");
            let (lo, hi) = (rank.min(peer), rank.max(peer));
            let pair = (lo * ranks + hi) as u64;
            let (d_eager, d_bulk) = (Discriminator(pair * 2), Discriminator(pair * 2 + 1));
            if rank < peer {
                provider
                    .connect(ctx, &eager, fabric::NodeId(peer as u32), d_eager, None)
                    .expect("connect eager");
                provider
                    .connect(ctx, &bulk, fabric::NodeId(peer as u32), d_bulk, None)
                    .expect("connect bulk");
            } else {
                provider.accept(ctx, &eager, d_eager).expect("accept eager");
                provider.accept(ctx, &bulk, d_bulk).expect("accept bulk");
            }
            // Eager receive ring + send-side bounce/control slots.
            let mut ring = Vec::with_capacity(cfg.ring_slots);
            for _ in 0..cfg.ring_slots {
                let va = provider.malloc(slot_len);
                let mh = provider
                    .register_mem(ctx, va, slot_len, MemAttributes::default())
                    .expect("ring slot");
                eager
                    .post_recv(ctx, Descriptor::recv().segment(va, mh, slot_len as u32))
                    .expect("ring post");
                ring.push((va, mh));
            }
            let sva = provider.malloc(slot_len);
            let smh = provider
                .register_mem(ctx, sva, slot_len, MemAttributes::default())
                .expect("send slot");
            let cva = provider.malloc(64);
            let cmh = provider
                .register_mem(ctx, cva, 64, MemAttributes::default())
                .expect("ctrl slot");
            peers[peer] = Some(Peer {
                eager,
                bulk,
                ring,
                send_slot: (sva, smh),
                ctrl_slot: (cva, cmh),
                bulk_done: None,
                cts_pending: false,
            });
        }
        Mpl {
            provider,
            rank,
            ranks,
            cfg,
            cq,
            peers,
            unexpected: Vec::new(),
            pending_rts: Vec::new(),
            stats: MplStats::default(),
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Layer counters.
    pub fn stats(&self) -> MplStats {
        self.stats
    }

    /// Register an application buffer for zero-copy rendezvous transfers.
    pub fn register(&self, ctx: &mut ProcessCtx, va: u64, len: u64) -> MemHandle {
        self.provider
            .register_mem(ctx, va, len, MemAttributes::default())
            .expect("user registration")
    }

    /// Allocate application memory (convenience; see [`Provider::malloc`]).
    pub fn malloc(&self, len: u64) -> u64 {
        self.provider.malloc(len)
    }

    /// Raw memory access for tests/examples.
    pub fn mem_write(&self, va: u64, data: &[u8]) {
        self.provider.mem_write(va, data);
    }

    /// Raw memory access for tests/examples.
    pub fn mem_read(&self, va: u64, len: u64) -> Vec<u8> {
        self.provider.mem_read(va, len)
    }

    fn peer(&mut self, rank: usize) -> &mut Peer {
        self.peers[rank]
            .as_mut()
            .unwrap_or_else(|| panic!("no connection to rank {rank}"))
    }

    fn classify(&self, vi_id: ViId) -> Option<(usize, bool)> {
        for (r, p) in self.peers.iter().enumerate() {
            if let Some(p) = p {
                if p.eager.id() == vi_id {
                    return Some((r, true));
                }
                if p.bulk.id() == vi_id {
                    return Some((r, false));
                }
            }
        }
        None
    }

    /// Drive the progress engine through one completion.
    fn progress(&mut self, ctx: &mut ProcessCtx) {
        let (vi_id, kind) = self.cq.wait(ctx, WaitMode::Poll);
        if kind != QueueKind::Recv {
            return;
        }
        let Some((src, is_eager)) = self.classify(vi_id) else {
            return;
        };
        if !is_eager {
            // A rendezvous payload landed in the user's buffer.
            let comp = self.peer(src).bulk.recv_done(ctx).expect("bulk completion");
            assert!(comp.is_ok(), "bulk recv: {:?}", comp.status);
            self.peer(src).bulk_done = Some(comp.length);
            return;
        }
        let comp = self
            .peer(src)
            .eager
            .recv_done(ctx)
            .expect("eager completion");
        assert!(comp.is_ok(), "eager recv: {:?}", comp.status);
        let (kind, tag) = proto::unpack(comp.immediate.expect("layer messages carry imm"))
            .expect("valid layer immediate");
        // The completed descriptor is the ring's oldest slot: rotate it.
        let slot = {
            let p = self.peer(src);
            let slot = p.ring.remove(0);
            p.ring.push(slot);
            slot
        };
        match kind {
            Kind::Eager => {
                let data = self.provider.mem_read(slot.0, comp.length.max(1))
                    [..comp.length as usize]
                    .to_vec();
                // Stash copy costs host time, like a real unexpected queue.
                ctx.busy(self.provider.profile().host.copy_time(comp.length));
                self.unexpected.push((src, tag, data));
            }
            Kind::Rts => {
                let len = proto::decode_len(&self.provider.mem_read(slot.0, 8));
                self.pending_rts.push((src, tag, len));
            }
            Kind::Cts => {
                self.peer(src).cts_pending = true;
            }
        }
        // Re-arm the slot.
        let slot_len = (self.cfg.eager_threshold as u64).max(64);
        let p = self.peer(src);
        let (va, mh) = *p.ring.last().expect("ring nonempty");
        p.eager
            .post_recv(ctx, Descriptor::recv().segment(va, mh, slot_len as u32))
            .expect("ring repost");
    }

    fn send_eager_frame(
        &mut self,
        ctx: &mut ProcessCtx,
        dst: usize,
        imm: u32,
        slot: (u64, MemHandle),
        len: u64,
    ) {
        let vi = self.peer(dst).eager.clone();
        vi.post_send(
            ctx,
            Descriptor::send()
                .segment(slot.0, slot.1, len as u32)
                .immediate(imm),
        )
        .expect("eager post");
        let comp = vi.send_wait(ctx, WaitMode::Poll);
        assert!(comp.is_ok(), "eager send: {:?}", comp.status);
    }

    /// Blocking tagged send of `len` bytes at `(va, mh)` to `dst`.
    /// `mh` is only dereferenced on the rendezvous path (zero-copy); eager
    /// sends bounce through the layer's registered slot.
    pub fn send(
        &mut self,
        ctx: &mut ProcessCtx,
        dst: usize,
        tag: Tag,
        va: u64,
        mh: MemHandle,
        len: u64,
    ) {
        assert!(tag != BARRIER_TAG, "tag {BARRIER_TAG:#x} is reserved");
        if len <= self.cfg.eager_threshold as u64 {
            self.stats.eager_sends += 1;
            // One copy into the hot, registered bounce slot.
            let slot = self.peer(dst).send_slot;
            if len > 0 {
                let data = self.provider.mem_read(va, len);
                self.provider.mem_write(slot.0, &data);
                ctx.busy(self.provider.profile().host.copy_time(len));
            }
            self.send_eager_frame(ctx, dst, proto::pack(Kind::Eager, tag), slot, len);
        } else {
            self.stats.rendezvous_sends += 1;
            // RTS with the length, wait for CTS, stream zero-copy.
            let ctrl = self.peer(dst).ctrl_slot;
            self.provider.mem_write(ctrl.0, &proto::encode_len(len));
            self.send_eager_frame(ctx, dst, proto::pack(Kind::Rts, tag), ctrl, 8);
            while !self.peer(dst).cts_pending {
                self.progress(ctx);
            }
            self.peer(dst).cts_pending = false;
            let bulk = self.peer(dst).bulk.clone();
            bulk.post_send(ctx, Descriptor::send().segment(va, mh, len as u32))
                .expect("bulk post");
            let comp = bulk.send_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok(), "bulk send: {:?}", comp.status);
        }
    }

    /// Blocking tagged receive from `src` into `(va, mh, cap)`. Returns the
    /// message length. Panics if the message exceeds `cap` (a protocol
    /// error in the application, as in MPI_ERR_TRUNCATE).
    pub fn recv(
        &mut self,
        ctx: &mut ProcessCtx,
        src: usize,
        tag: Tag,
        va: u64,
        mh: MemHandle,
        cap: u64,
    ) -> u64 {
        loop {
            // 1) Unexpected eager message already stashed?
            if let Some(i) = self
                .unexpected
                .iter()
                .position(|(s, t, _)| *s == src && *t == tag)
            {
                let (_, _, data) = self.unexpected.remove(i);
                assert!(data.len() as u64 <= cap, "message truncated");
                self.stats.unexpected_matches += 1;
                if !data.is_empty() {
                    self.provider.mem_write(va, &data);
                    ctx.busy(self.provider.profile().host.copy_time(data.len() as u64));
                }
                return data.len() as u64;
            }
            // 2) Parked rendezvous request?
            if let Some(i) = self
                .pending_rts
                .iter()
                .position(|(s, t, _)| *s == src && *t == tag)
            {
                let (_, _, len) = self.pending_rts.remove(i);
                assert!(len <= cap, "message truncated");
                self.stats.rts_matches += 1;
                // Post the landing descriptor FIRST, then clear-to-send.
                let bulk = self.peer(src).bulk.clone();
                bulk.post_recv(ctx, Descriptor::recv().segment(va, mh, len as u32))
                    .expect("bulk landing");
                let ctrl = self.peer(src).ctrl_slot;
                self.send_eager_frame(ctx, src, proto::pack(Kind::Cts, tag), ctrl, 0);
                loop {
                    if let Some(got) = self.peer(src).bulk_done.take() {
                        assert_eq!(got, len, "rendezvous length mismatch");
                        return got;
                    }
                    self.progress(ctx);
                }
            }
            // 3) Nothing matches yet: make progress.
            self.progress(ctx);
        }
    }

    /// A linear barrier over the layer's own messages (rank 0 gathers,
    /// then releases).
    pub fn barrier(&mut self, ctx: &mut ProcessCtx) {
        if self.rank == 0 {
            for r in 1..self.ranks {
                self.recv_barrier(ctx, r);
            }
            for r in 1..self.ranks {
                self.send_barrier(ctx, r);
            }
        } else {
            self.send_barrier(ctx, 0);
            self.recv_barrier(ctx, 0);
        }
    }

    fn send_barrier(&mut self, ctx: &mut ProcessCtx, dst: usize) {
        let ctrl = self.peer(dst).ctrl_slot;
        self.send_eager_frame(ctx, dst, proto::pack(Kind::Eager, BARRIER_TAG), ctrl, 0);
    }

    fn recv_barrier(&mut self, ctx: &mut ProcessCtx, src: usize) {
        loop {
            if let Some(i) = self
                .unexpected
                .iter()
                .position(|(s, t, _)| *s == src && *t == BARRIER_TAG)
            {
                self.unexpected.remove(i);
                return;
            }
            self.progress(ctx);
        }
    }

    /// Build a default world: a cluster of `ranks` nodes on `profile`, one
    /// spawned process per rank running `body(ctx, mpl)`. Returns the
    /// handles in rank order. (Convenience for tests and benchmarks.)
    pub fn spawn_world<F, R>(
        sim: &simkit::Sim,
        profile: Profile,
        ranks: usize,
        cfg: MplConfig,
        seed: u64,
        body: F,
    ) -> Vec<simkit::ProcessHandle<R>>
    where
        F: Fn(&mut ProcessCtx, Mpl) -> R + Clone + Send + 'static,
        R: Send + 'static,
    {
        let cluster = via::Cluster::new(sim.clone(), profile, ranks, seed);
        (0..ranks)
            .map(|rank| {
                let provider = cluster.provider(rank);
                let body = body.clone();
                sim.spawn(format!("rank{rank}"), Some(provider.cpu()), move |ctx| {
                    let mpl = Mpl::attach(ctx, provider, rank, ranks, cfg);
                    body(ctx, mpl)
                })
            })
            .collect()
    }
}

/// Small helper: sleep long enough for in-flight layer traffic to drain in
/// tests (virtual time is free).
pub fn settle(ctx: &mut ProcessCtx) {
    ctx.sleep(SimDuration::from_millis(2));
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::Sim;

    #[test]
    fn default_config_is_sane() {
        let c = MplConfig::default();
        assert_eq!(c.eager_threshold, 8192);
        assert!(c.ring_slots >= 2);
        assert_eq!(c.reliability, Reliability::Unreliable);
    }

    #[test]
    fn attach_builds_a_full_mesh() {
        let sim = Sim::new();
        let handles = Mpl::spawn_world(
            &sim,
            Profile::clan(),
            3,
            MplConfig::default(),
            0,
            |_ctx, mpl| {
                // Every peer slot except self is populated.
                (mpl.rank(), mpl.ranks())
            },
        );
        sim.run_to_completion();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.expect_result(), (i, 3));
        }
    }

    #[test]
    fn stats_start_at_zero() {
        let sim = Sim::new();
        let handles = Mpl::spawn_world(
            &sim,
            Profile::clan(),
            2,
            MplConfig::default(),
            0,
            |_ctx, mpl| {
                let s = mpl.stats();
                s.eager_sends + s.rendezvous_sends + s.unexpected_matches + s.rts_matches
            },
        );
        sim.run_to_completion();
        for h in handles {
            assert_eq!(h.expect_result(), 0);
        }
    }
}
