//! The wire protocol of the message-passing layer: message kinds and the
//! immediate-data encoding that carries them.
//!
//! Every eager-VI message carries a 32-bit immediate:
//! `[kind:2][reserved:14][tag:16]`. Tags are the application's matching
//! key (like MPI tags); kinds distinguish user data from rendezvous
//! control.

/// Matching tag (16 bits on the wire).
pub type Tag = u16;

/// Message kinds on the eager VI.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// User payload delivered inline (length ≤ eager threshold).
    Eager,
    /// Request-to-send: a rendezvous transfer of `len` bytes (payload
    /// carries the length) wants to start.
    Rts,
    /// Clear-to-send: the receiver posted the landing descriptor on the
    /// bulk VI; the sender may stream.
    Cts,
}

/// Pack a kind and tag into a descriptor immediate.
pub fn pack(kind: Kind, tag: Tag) -> u32 {
    let k = match kind {
        Kind::Eager => 0u32,
        Kind::Rts => 1,
        Kind::Cts => 2,
    };
    (k << 30) | tag as u32
}

/// Unpack a descriptor immediate. Returns `None` on an unknown kind.
pub fn unpack(imm: u32) -> Option<(Kind, Tag)> {
    let kind = match imm >> 30 {
        0 => Kind::Eager,
        1 => Kind::Rts,
        2 => Kind::Cts,
        _ => return None,
    };
    Some((kind, (imm & 0xFFFF) as Tag))
}

/// Encode a rendezvous length into the RTS payload.
pub fn encode_len(len: u64) -> [u8; 8] {
    len.to_le_bytes()
}

/// Decode an RTS payload.
pub fn decode_len(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for kind in [Kind::Eager, Kind::Rts, Kind::Cts] {
            for tag in [0u16, 1, 77, u16::MAX] {
                assert_eq!(unpack(pack(kind, tag)), Some((kind, tag)));
            }
        }
    }

    #[test]
    fn unknown_kind_is_none() {
        assert_eq!(unpack(3 << 30), None);
    }

    #[test]
    fn len_roundtrip() {
        for len in [0u64, 1, 28672, u64::MAX] {
            assert_eq!(decode_len(&encode_len(len)), len);
        }
    }
}
