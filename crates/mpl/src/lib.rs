//! # mpl — a message-passing layer over VIA
//!
//! The kind of "programming model layer" the VIBe paper addresses (§1
//! names MPI implementors as a primary audience; §5 plans distributed-
//! memory-model micro-benchmarks): tag-matched, rank-addressed blocking
//! send/receive with automatic **eager/rendezvous** protocol selection,
//! built entirely on the `via` crate's public API.
//!
//! Design choices follow directly from VIBe's measurements:
//!
//! * eager messages bounce through a small ring of pre-registered buffers
//!   — maximum buffer reuse keeps NIC translation caches hot (Fig. 5);
//! * the eager threshold defaults to 8 KiB — the copy-vs-registration
//!   crossover the `buffer_strategies` example measures;
//! * rendezvous payloads travel on a dedicated bulk VI per pair so the
//!   FIFO receive queue can point at user memory without racing the ring;
//! * one CQ per rank multiplexes every connection (§3.2.3's pattern).
//!
//! ```
//! use simkit::Sim;
//! use via::Profile;
//! use mpl::{Mpl, MplConfig};
//!
//! let sim = Sim::new();
//! let handles = Mpl::spawn_world(&sim, Profile::clan(), 2, MplConfig::default(), 7,
//!     |ctx, mut mpl| {
//!         let buf = mpl.malloc(1 << 20);
//!         let mh = mpl.register(ctx, buf, 1 << 20);
//!         if mpl.rank() == 0 {
//!             mpl.mem_write(buf, b"forty-two");
//!             mpl.send(ctx, 1, 5, buf, mh, 9);
//!             Vec::new()
//!         } else {
//!             let n = mpl.recv(ctx, 0, 5, buf, mh, 1 << 20);
//!             mpl.mem_read(buf, n)
//!         }
//!     });
//! sim.run_to_completion();
//! assert_eq!(handles[1].expect_result(), b"forty-two");
//! ```

#![warn(missing_docs)]

pub mod endpoint;
pub mod proto;

pub use endpoint::{settle, Mpl, MplConfig, MplStats, BARRIER_TAG};
pub use proto::{Kind, Tag};
