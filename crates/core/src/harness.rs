//! The measurement harness: connected pairs, buffer pools, and the three
//! measurement primitives the whole suite is built from — ping-pong
//! latency (§3.2's "standard ping-pong test"), streamed bandwidth
//! ("messages sent repeatedly … sender waits for the last message to be
//! acknowledged"), and request/reply transactions (§3.3.1).

use fabric::NodeId;
use simkit::{CpuMeter, ProcessCtx, Sim, SimBarrier, WaitMode};
use via::{
    Cluster, Cq, Descriptor, Discriminator, MemAttributes, MemHandle, Profile, Provider,
    Reliability, Vi, ViAttributes,
};

pub use simkit::SimDuration;

/// The base RNG seed every suite measurement derives its streams from.
///
/// Determinism in this codebase is *content-keyed*: a measurement's RNG
/// streams come from `SimRng::derive(seed, label)` where the label names
/// *what* is being measured, never *when* or *on which thread*. That is
/// what lets the parallel suite runner split an experiment into per-sweep-
/// point jobs without perturbing a single sample — each job restates this
/// seed and re-derives the identical streams the serial path uses.
pub const BASE_SEED: u64 = 0x5EED;

/// The message sizes the paper's figures sweep (bytes).
pub fn paper_sizes() -> Vec<u64> {
    vec![4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672]
}

/// Configuration of one data-transfer experiment. Each VIBe data-transfer
/// micro-benchmark is this struct with exactly one knob moved off the
/// base setup (§3.2.1's five base properties).
#[derive(Clone, Debug)]
pub struct DtConfig {
    /// Provider/interconnect under test.
    pub profile: Profile,
    /// Message size in bytes.
    pub msg_size: u64,
    /// Measured iterations.
    pub iters: u32,
    /// Unmeasured warmup iterations.
    pub warmup: u32,
    /// Polling or blocking completion waits.
    pub wait: WaitMode,
    /// Check receive completions through a CQ (§3.2.3) instead of the
    /// work queue.
    pub use_recv_cq: bool,
    /// Percentage of iterations that re-use the previous buffer
    /// (§3.2.2): 100 = the base setup's single buffer; 0 = a fresh buffer
    /// every iteration.
    pub reuse_percent: u32,
    /// Total VIs created on each node (§3.2.4); the test uses one of them.
    pub active_vis: usize,
    /// Data segments the message is split across (§3.2.5 MDS).
    pub segments: usize,
    /// Reliability level (§3.2.5 REL).
    pub reliability: Reliability,
    /// Outstanding sends during the bandwidth test (§3.2.5 PIP/ASY).
    pub queue_depth: usize,
    /// Use RDMA writes instead of send/receive (§3.2.5 RDMA).
    pub rdma: bool,
    /// RNG seed for the run.
    pub seed: u64,
    /// Fabric shape joining the two nodes. `None` (the base setup) is the
    /// legacy single-switch San; a multi-switch shape routes the pair's
    /// traffic hop by hop — the chaos suite uses this to exercise
    /// switch/trunk fault windows end to end.
    pub topology: Option<fabric::Topology>,
}

impl DtConfig {
    /// The §3.2.1 base setup: 100% buffer reuse, one data segment, no CQ,
    /// one VI connection, polling.
    pub fn base(profile: Profile, msg_size: u64) -> Self {
        DtConfig {
            profile,
            msg_size,
            iters: 40,
            warmup: 8,
            wait: WaitMode::Poll,
            use_recv_cq: false,
            reuse_percent: 100,
            active_vis: 1,
            segments: 1,
            reliability: Reliability::Unreliable,
            queue_depth: 16,
            rdma: false,
            seed: BASE_SEED,
            topology: None,
        }
    }
}

/// Latency/CPU measurement output.
#[derive(Clone, Copy, Debug)]
pub struct PingPongResult {
    /// One-way latency in microseconds (half the mean round trip).
    pub latency_us: f64,
    /// Client CPU utilization over the measured interval, in `[0,1]`.
    pub client_util: f64,
    /// Server CPU utilization over the measured interval.
    pub server_util: f64,
}

/// Bandwidth measurement output.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthResult {
    /// Delivered bandwidth in MB/s (10^6 bytes per second).
    pub mbps: f64,
    /// Sender CPU utilization over the measured interval.
    pub client_util: f64,
}

/// A registered, page-aligned buffer pool cycled according to the reuse
/// percentage (the §3.2.2 knob). Deterministic: iteration `i` takes a
/// fresh buffer iff the running fresh-quota `ceil((i+1)·(100-r)/100)`
/// increased.
pub struct BufferPool {
    bufs: Vec<(u64, MemHandle)>,
    cursor: usize,
    fresh_used: u64,
    reuse_percent: u32,
}

impl BufferPool {
    /// Allocate and register `count` buffers of `size` bytes.
    pub fn build(
        ctx: &mut ProcessCtx,
        provider: &Provider,
        count: usize,
        size: u64,
        reuse_percent: u32,
    ) -> Self {
        assert!(count >= 1);
        assert!(reuse_percent <= 100);
        let mut bufs = Vec::with_capacity(count);
        for _ in 0..count {
            let va = provider.malloc(size.max(1));
            let mh = provider
                .register_mem(ctx, va, size.max(1), MemAttributes::default())
                .expect("pool registration");
            bufs.push((va, mh));
        }
        BufferPool {
            bufs,
            cursor: 0,
            fresh_used: 0,
            reuse_percent,
        }
    }

    /// How many distinct buffers a run of `iters` iterations needs (capped
    /// so even 0% reuse stays within memory; the cap still overwhelms any
    /// 256-entry NIC translation cache).
    pub fn count_for(iters: u32, warmup: u32, reuse_percent: u32) -> usize {
        if reuse_percent >= 100 {
            return 1;
        }
        let fresh = ((iters + warmup) as u64 * (100 - reuse_percent) as u64).div_ceil(100);
        (fresh as usize + 1).min(512)
    }

    /// The buffer for iteration `i`.
    pub fn pick(&mut self, i: u64) -> (u64, MemHandle) {
        let quota = ((i + 1) * (100 - self.reuse_percent) as u64).div_ceil(100);
        if self.fresh_used < quota {
            self.fresh_used += 1;
            self.cursor = (self.cursor + 1) % self.bufs.len();
        }
        self.bufs[self.cursor]
    }
}

/// One endpoint of a prepared pair: the provider, the connected test VI,
/// the optional receive CQ, and the start barrier.
pub struct Endpoint {
    /// The node's provider.
    pub provider: Provider,
    /// The connected VI under test.
    pub vi: Vi,
    /// Receive CQ, when the experiment checks completions through a CQ.
    pub recv_cq: Option<Cq>,
    barrier: SimBarrier,
}

impl Endpoint {
    /// Rendezvous with the peer (call once, right before the measured loop).
    pub fn sync(&self, ctx: &mut ProcessCtx) {
        self.barrier.wait(ctx);
    }

    /// Wait for one receive completion, honoring the experiment's CQ
    /// setting: through the CQ when configured (CQ-notify then collect,
    /// as `VipCQDone`→`VipRecvDone`), else directly on the work queue.
    pub fn recv_one(&self, ctx: &mut ProcessCtx, mode: WaitMode) -> via::Completion {
        match &self.recv_cq {
            Some(cq) => {
                let (_vi, _kind) = cq.wait(ctx, mode);
                self.vi
                    .recv_done(ctx)
                    .expect("CQ signaled a completion that is not there")
            }
            None => self.vi.recv_wait(ctx, mode),
        }
    }

    /// Build a one-segment (or `segments`-way split) descriptor over
    /// `(va, mh)` covering `len` bytes.
    pub fn split_desc(
        &self,
        op_recv: bool,
        va: u64,
        mh: MemHandle,
        len: u64,
        segments: usize,
    ) -> Descriptor {
        let mut d = if op_recv {
            Descriptor::recv()
        } else {
            Descriptor::send()
        };
        if len == 0 {
            return d;
        }
        let segs = segments.max(1) as u64;
        let chunk = len.div_ceil(segs);
        let mut off = 0;
        while off < len {
            let l = chunk.min(len - off);
            d = d.segment(va + off, mh, l as u32);
            off += l;
        }
        d
    }
}

/// Prepared two-node experiment: cluster + closures runner.
pub struct Pair {
    sim: Sim,
    cluster: Cluster,
    attrs: ViAttributes,
    active_vis: usize,
    use_recv_cq: bool,
}

impl Pair {
    /// Build a two-node cluster per `cfg`. The test VIs accept inbound
    /// RDMA reads whenever the profile implements them, so one harness
    /// serves the send/receive, RDMA-write, and get/put benchmarks alike.
    pub fn new(cfg: &DtConfig) -> Self {
        let sim = Sim::new();
        let cluster = match &cfg.topology {
            Some(topo) => {
                assert_eq!(topo.nodes(), 2, "a Pair needs a two-node topology");
                Cluster::new_topo(sim.clone(), cfg.profile.clone(), topo.clone(), cfg.seed)
            }
            None => Cluster::new(sim.clone(), cfg.profile.clone(), 2, cfg.seed),
        };
        let attrs = ViAttributes {
            enable_rdma_read: cfg.profile.supports_rdma_read,
            ..ViAttributes::reliable(cfg.reliability)
        };
        Pair {
            sim,
            cluster,
            attrs,
            active_vis: cfg.active_vis.max(1),
            use_recv_cq: cfg.use_recv_cq,
        }
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Attach a tracer to every layer of this pair's cluster (providers,
    /// fabric, and the engine's event hook). Call before [`Pair::run`].
    pub fn enable_trace(&self, config: trace::TraceConfig) -> trace::Tracer {
        self.cluster.enable_trace(config)
    }

    /// Fabric frame counters (sent / delivered / dropped / bytes).
    pub fn san_stats(&self) -> fabric::SanStats {
        self.cluster.san().stats()
    }

    /// Install a scripted fault plan on the pair's fabric. Call before
    /// [`Pair::run`]; an empty plan leaves the timeline bit-identical to a
    /// fault-free run.
    pub fn install_faults(&self, plan: &fabric::FaultPlan) {
        self.cluster.san().install_faults(plan);
    }

    /// Provider handle for node `node` (0 = client, 1 = server), e.g. to
    /// script a firmware stall before [`Pair::run`].
    pub fn provider(&self, node: usize) -> via::Provider {
        self.cluster.provider(node)
    }

    /// Clone of the fabric handle. Workload closures capture this to
    /// install fault windows timed relative to their own progress (VI
    /// setup and the connection handshake consume sim time, so absolute
    /// pre-run timestamps would land the fault in the wrong phase).
    pub fn san(&self) -> fabric::San {
        self.cluster.san().clone()
    }

    /// Provider counters for node `node` (0 = client, 1 = server).
    pub fn provider_stats(&self, node: usize) -> via::ProviderStats {
        self.cluster.provider(node).stats()
    }

    /// Run `server` on node 1 and `client` on node 0, each handed a
    /// connected [`Endpoint`]. Extra VIs (beyond the test VI) are created
    /// first so the firmware's scan length matches §3.2.4's setup.
    pub fn run<S, C, RS, RC>(&self, server: S, client: C) -> (RS, RC)
    where
        S: FnOnce(&mut ProcessCtx, Endpoint) -> RS + Send + 'static,
        C: FnOnce(&mut ProcessCtx, Endpoint) -> RC + Send + 'static,
        RS: Send + 'static,
        RC: Send + 'static,
    {
        let barrier = SimBarrier::new(2);
        let attrs = self.attrs;
        let extra = self.active_vis - 1;
        let use_cq = self.use_recv_cq;
        let (pa, pb) = (self.cluster.provider(0), self.cluster.provider(1));
        let sh = {
            let pb = pb.clone();
            let barrier = barrier.clone();
            self.sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let recv_cq = if use_cq {
                    Some(pb.create_cq(ctx, 1024).expect("cq"))
                } else {
                    None
                };
                for _ in 0..extra {
                    pb.create_vi(ctx, attrs, None, None).expect("extra vi");
                }
                let vi = pb
                    .create_vi(ctx, attrs, None, recv_cq.as_ref())
                    .expect("vi");
                pb.accept(ctx, &vi, Discriminator(1)).expect("accept");
                let ep = Endpoint {
                    provider: pb,
                    vi,
                    recv_cq,
                    barrier,
                };
                server(ctx, ep)
            })
        };
        let ch = {
            let pa = pa.clone();
            let barrier = barrier.clone();
            self.sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let recv_cq = if use_cq {
                    Some(pa.create_cq(ctx, 1024).expect("cq"))
                } else {
                    None
                };
                for _ in 0..extra {
                    pa.create_vi(ctx, attrs, None, None).expect("extra vi");
                }
                let vi = pa
                    .create_vi(ctx, attrs, None, recv_cq.as_ref())
                    .expect("vi");
                pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                    .expect("connect");
                let ep = Endpoint {
                    provider: pa,
                    vi,
                    recv_cq,
                    barrier,
                };
                client(ctx, ep)
            })
        };
        self.sim.run_to_completion();
        (sh.expect_result(), ch.expect_result())
    }
}

/// The §3.2 ping-pong test under `cfg`: returns one-way latency and both
/// sides' CPU utilization.
pub fn ping_pong(cfg: &DtConfig) -> PingPongResult {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let pool_n = BufferPool::count_for(cfg.iters, cfg.warmup, cfg.reuse_percent);
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (server_util, (lat, client_util)) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let mut pool =
                BufferPool::build(ctx, &ep.provider, pool_n, cfg.msg_size, cfg.reuse_percent);
            // Pre-post the first receive before the rendezvous so the first
            // ping always finds a descriptor (as the paper's tests do).
            let (va, mh) = pool.pick(0);
            ep.vi
                .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, cfg.segments))
                .unwrap();
            ep.sync(ctx);
            let meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
            for i in 0..total {
                let comp = ep.recv_one(ctx, cfg.wait);
                assert!(comp.is_ok(), "server recv {i}: {:?}", comp.status);
                let (va, mh) = pool.pick(i);
                // Post the next receive before sending the pong.
                if i + 1 < total {
                    let (nva, nmh) = pool.pick(i + 1);
                    ep.vi
                        .post_recv(
                            ctx,
                            ep.split_desc(true, nva, nmh, cfg.msg_size, cfg.segments),
                        )
                        .unwrap();
                }
                ep.vi
                    .post_send(
                        ctx,
                        ep.split_desc(false, va, mh, cfg.msg_size, cfg.segments),
                    )
                    .unwrap();
                let comp = ep.vi.send_wait(ctx, cfg.wait);
                assert!(comp.is_ok(), "server send {i}: {:?}", comp.status);
            }
            meter.stop(ctx.sim()).utilization()
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let mut pool =
                BufferPool::build(ctx, &ep.provider, pool_n, cfg.msg_size, cfg.reuse_percent);
            ep.sync(ctx);
            let mut t0 = ctx.now();
            let mut meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
            for i in 0..total {
                if i == cfg.warmup as u64 {
                    t0 = ctx.now();
                    meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
                }
                let (va, mh) = pool.pick(i);
                // Post the reply receive before pinging (paper §3.2.1).
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, cfg.segments))
                    .unwrap();
                ep.vi
                    .post_send(
                        ctx,
                        ep.split_desc(false, va, mh, cfg.msg_size, cfg.segments),
                    )
                    .unwrap();
                let comp = ep.recv_one(ctx, cfg.wait);
                assert!(comp.is_ok(), "client recv {i}: {:?}", comp.status);
                let comp = ep.vi.send_wait(ctx, cfg.wait);
                assert!(comp.is_ok(), "client send {i}: {:?}", comp.status);
            }
            let elapsed = ctx.now() - t0;
            let util = meter.stop(ctx.sim()).utilization();
            let lat = elapsed.as_micros_f64() / (2.0 * cfg.iters as f64);
            (lat, util)
        },
    );
    PingPongResult {
        latency_us: lat,
        client_util,
        server_util,
    }
}

/// The §3.2 bandwidth test under `cfg`: the client streams `iters`
/// messages with at most `queue_depth` locally outstanding, the server
/// returns a 4-byte credit every `burst` messages (application-level flow
/// control, as real VIA bandwidth benchmarks used on unreliable
/// connections — a receiver slower than the sender must be able to slow it
/// down or messages are simply dropped), and a final 4-byte acknowledgment
/// stops the clock, as in the paper.
pub fn bandwidth(cfg: &DtConfig) -> BandwidthResult {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let pool_n = BufferPool::count_for(cfg.iters, cfg.warmup, cfg.reuse_percent);
    // Receive window and credit quantum.
    let window = (cfg.profile.max_queue_depth as u64)
        .saturating_sub(8)
        .clamp(16, 64);
    let burst = window / 2;
    let credits_total = total / burst; // + 1 final ack
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, (mbps, client_util)) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let mut pool =
                BufferPool::build(ctx, &ep.provider, pool_n, cfg.msg_size, cfg.reuse_percent);
            let ack = ep.provider.malloc(16);
            let ack_mh = ep
                .provider
                .register_mem(ctx, ack, 16, MemAttributes::default())
                .unwrap();
            // Pre-post a window of receives.
            let prepost = window.min(total);
            for i in 0..prepost {
                let (va, mh) = pool.pick(i);
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, cfg.segments))
                    .unwrap();
            }
            ep.sync(ctx);
            for i in 0..total {
                let comp = ep.recv_one(ctx, cfg.wait);
                assert!(comp.is_ok(), "bw recv {i}: {:?}", comp.status);
                let next = i + prepost;
                if next < total {
                    let (va, mh) = pool.pick(next);
                    ep.vi
                        .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, cfg.segments))
                        .unwrap();
                }
                if (i + 1) % burst == 0 {
                    // Credit: the sender may advance another burst.
                    ep.vi
                        .post_send(ctx, Descriptor::send().segment(ack, ack_mh, 4))
                        .unwrap();
                    ep.vi.send_wait(ctx, cfg.wait);
                }
            }
            // Final application-level acknowledgment.
            ep.vi
                .post_send(ctx, Descriptor::send().segment(ack, ack_mh, 4))
                .unwrap();
            ep.vi.send_wait(ctx, cfg.wait);
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let mut pool =
                BufferPool::build(ctx, &ep.provider, pool_n, cfg.msg_size, cfg.reuse_percent);
            let ack = ep.provider.malloc(16);
            let ack_mh = ep
                .provider
                .register_mem(ctx, ack, 16, MemAttributes::default())
                .unwrap();
            let credit_desc = || Descriptor::recv().segment(ack, ack_mh, 16);
            let credit_recvs = 8u64.min(credits_total + 1);
            for _ in 0..credit_recvs {
                ep.vi.post_recv(ctx, credit_desc()).unwrap();
            }
            ep.sync(ctx);
            let t0 = ctx.now();
            let meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
            let mut outstanding: u64 = 0;
            // The server grants the first two bursts implicitly (its
            // receive window covers them); further bursts need credits.
            let mut allowance = (2 * burst).min(total.max(1));
            let mut credits_seen = 0u64;
            for i in 0..total {
                // Greedily absorb any credits that already arrived.
                if i % 8 == 0 {
                    while let Some(c) = ep.vi.recv_done(ctx) {
                        assert!(c.is_ok());
                        credits_seen += 1;
                        allowance += burst;
                        ep.vi.post_recv(ctx, credit_desc()).unwrap();
                    }
                }
                if i >= allowance {
                    let c = ep.recv_one(ctx, cfg.wait);
                    assert!(c.is_ok(), "credit wait: {:?}", c.status);
                    credits_seen += 1;
                    allowance += burst;
                    ep.vi.post_recv(ctx, credit_desc()).unwrap();
                }
                let (va, mh) = pool.pick(i);
                ep.vi
                    .post_send(
                        ctx,
                        ep.split_desc(false, va, mh, cfg.msg_size, cfg.segments),
                    )
                    .unwrap();
                outstanding += 1;
                if outstanding >= cfg.queue_depth as u64 {
                    let comp = ep.vi.send_wait(ctx, cfg.wait);
                    assert!(comp.is_ok(), "bw send: {:?}", comp.status);
                    outstanding -= 1;
                }
            }
            while outstanding > 0 {
                ep.vi.send_wait(ctx, cfg.wait);
                outstanding -= 1;
            }
            // Drain the remaining credits; the last message is the final
            // ACK (the fabric is FIFO, so it arrives after everything).
            while credits_seen < credits_total + 1 {
                let c = ep.recv_one(ctx, cfg.wait);
                assert!(c.is_ok(), "final drain: {:?}", c.status);
                credits_seen += 1;
            }
            let elapsed = ctx.now() - t0;
            let util = meter.stop(ctx.sim()).utilization();
            (
                simkit::megabytes_per_second(cfg.msg_size * total, elapsed),
                util,
            )
        },
    );
    BandwidthResult { mbps, client_util }
}

/// The §3.3.1 client-server transaction test: fixed `request` size,
/// varying `reply` size, two distinct buffers; returns transactions per
/// second.
pub fn transactions(cfg: &DtConfig, request: u64, reply: u64) -> f64 {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let warmup = cfg.warmup as u64;
    let iters = cfg.iters as f64;
    let wait = cfg.wait;
    let (_, tps) = pair.run(
        move |ctx, ep| {
            // Server: receive request, send reply.
            let req = ep.provider.malloc(request.max(1));
            let req_mh = ep
                .provider
                .register_mem(ctx, req, request.max(1), MemAttributes::default())
                .unwrap();
            let rep = ep.provider.malloc(reply.max(1));
            let rep_mh = ep
                .provider
                .register_mem(ctx, rep, reply.max(1), MemAttributes::default())
                .unwrap();
            ep.vi
                .post_recv(ctx, Descriptor::recv().segment(req, req_mh, request as u32))
                .unwrap();
            ep.sync(ctx);
            for i in 0..total {
                let comp = ep.recv_one(ctx, wait);
                assert!(comp.is_ok(), "server req {i}: {:?}", comp.status);
                if i + 1 < total {
                    ep.vi
                        .post_recv(ctx, Descriptor::recv().segment(req, req_mh, request as u32))
                        .unwrap();
                }
                ep.vi
                    .post_send(ctx, Descriptor::send().segment(rep, rep_mh, reply as u32))
                    .unwrap();
                ep.vi.send_wait(ctx, wait);
            }
        },
        move |ctx, ep| {
            let req = ep.provider.malloc(request.max(1));
            let req_mh = ep
                .provider
                .register_mem(ctx, req, request.max(1), MemAttributes::default())
                .unwrap();
            let rep = ep.provider.malloc(reply.max(1));
            let rep_mh = ep
                .provider
                .register_mem(ctx, rep, reply.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let mut t0 = ctx.now();
            for i in 0..total {
                if i == warmup {
                    t0 = ctx.now();
                }
                ep.vi
                    .post_recv(ctx, Descriptor::recv().segment(rep, rep_mh, reply as u32))
                    .unwrap();
                ep.vi
                    .post_send(ctx, Descriptor::send().segment(req, req_mh, request as u32))
                    .unwrap();
                let comp = ep.recv_one(ctx, wait);
                assert!(comp.is_ok(), "client reply {i}: {:?}", comp.status);
                ep.vi.send_wait(ctx, wait);
            }
            let elapsed = ctx.now() - t0;
            iters / elapsed.as_secs_f64()
        },
    );
    tps
}

/// RDMA-write one-way latency under `cfg` (used by the §3.2.5 RDMA
/// benchmark): the target publishes a registered region; the initiator
/// RDMA-writes with immediate data so the target still gets a completion
/// to bounce back a zero-byte send.
pub fn rdma_write_ping(cfg: &DtConfig) -> PingPongResult {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None::<(u64, MemHandle)>));
    let s2 = slot.clone();
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (server_util, (lat, client_util)) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            *s2.lock() = Some((buf, mh));
            // Zero-segment receives absorb the RDMA-with-immediate events.
            ep.vi.post_recv(ctx, Descriptor::recv()).unwrap();
            ep.sync(ctx);
            let meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
            for i in 0..total {
                let comp = ep.recv_one(ctx, cfg.wait);
                assert!(comp.is_ok(), "rdma target {i}: {:?}", comp.status);
                if i + 1 < total {
                    ep.vi.post_recv(ctx, Descriptor::recv()).unwrap();
                }
                // Bounce a zero-byte send back as the pong.
                ep.vi.post_send(ctx, Descriptor::send()).unwrap();
                ep.vi.send_wait(ctx, cfg.wait);
            }
            meter.stop(ctx.sim()).utilization()
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let (rva, rmh) = slot.lock().expect("target registered before barrier");
            let mut t0 = ctx.now();
            let mut meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
            for i in 0..total {
                if i == cfg.warmup as u64 {
                    t0 = ctx.now();
                    meter = CpuMeter::start(ctx.sim(), ep.provider.cpu());
                }
                ep.vi.post_recv(ctx, Descriptor::recv()).unwrap();
                let desc = Descriptor::rdma_write(rva, rmh)
                    .segment(buf, mh, cfg.msg_size as u32)
                    .immediate(i as u32);
                ep.vi.post_send(ctx, desc).unwrap();
                let comp = ep.recv_one(ctx, cfg.wait);
                assert!(comp.is_ok(), "rdma pong {i}: {:?}", comp.status);
                ep.vi.send_wait(ctx, cfg.wait);
            }
            let elapsed = ctx.now() - t0;
            let util = meter.stop(ctx.sim()).utilization();
            (elapsed.as_micros_f64() / (2.0 * cfg.iters as f64), util)
        },
    );
    PingPongResult {
        latency_us: lat,
        client_util,
        server_util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuse_pattern_100_percent_is_one_buffer() {
        assert_eq!(BufferPool::count_for(100, 10, 100), 1);
    }

    #[test]
    fn pool_reuse_pattern_0_percent_is_all_fresh() {
        assert_eq!(BufferPool::count_for(100, 10, 0), 111);
        // Capped at 512.
        assert_eq!(BufferPool::count_for(10_000, 0, 0), 512);
    }

    #[test]
    fn pool_pick_fraction_matches_reuse() {
        // Simulate pick decisions without building a real pool.
        let reuse = 75u32;
        let iters = 400u64;
        let mut fresh_used = 0u64;
        let mut fresh_picks = 0u64;
        for i in 0..iters {
            let quota = ((i + 1) * (100 - reuse) as u64).div_ceil(100);
            if fresh_used < quota {
                fresh_used += 1;
                fresh_picks += 1;
            }
        }
        let frac = fresh_picks as f64 / iters as f64;
        assert!((frac - 0.25).abs() < 0.01, "fresh fraction {frac}");
    }

    #[test]
    fn base_ping_pong_runs_and_is_sane() {
        let cfg = DtConfig {
            iters: 10,
            warmup: 2,
            ..DtConfig::base(Profile::clan(), 1024)
        };
        let r = ping_pong(&cfg);
        assert!(r.latency_us > 1.0 && r.latency_us < 1000.0, "{r:?}");
        // Polling: both sides saturate their CPUs.
        assert!(r.client_util > 0.95, "{r:?}");
        assert!(r.server_util > 0.95, "{r:?}");
    }

    #[test]
    fn base_bandwidth_runs_and_is_sane() {
        let cfg = DtConfig {
            iters: 60,
            warmup: 4,
            ..DtConfig::base(Profile::clan(), 16 * 1024)
        };
        let r = bandwidth(&cfg);
        assert!(r.mbps > 10.0 && r.mbps < 200.0, "{r:?}");
    }

    #[test]
    fn transactions_run_and_are_sane() {
        let cfg = DtConfig {
            iters: 20,
            warmup: 4,
            ..DtConfig::base(Profile::clan(), 0)
        };
        let tps = transactions(&cfg, 16, 256);
        assert!(tps > 1_000.0 && tps < 200_000.0, "tps={tps}");
    }

    #[test]
    fn blocking_mode_reduces_utilization() {
        let mk = |wait| DtConfig {
            iters: 10,
            warmup: 2,
            wait,
            ..DtConfig::base(Profile::clan(), 4096)
        };
        let poll = ping_pong(&mk(WaitMode::Poll));
        let block = ping_pong(&mk(WaitMode::Block));
        assert!(block.latency_us > poll.latency_us);
        assert!(block.client_util < poll.client_util);
    }

    #[test]
    fn rdma_ping_runs_on_clan() {
        let cfg = DtConfig {
            iters: 10,
            warmup: 2,
            rdma: true,
            ..DtConfig::base(Profile::clan(), 2048)
        };
        let r = rdma_write_ping(&cfg);
        assert!(r.latency_us > 1.0 && r.latency_us < 1000.0, "{r:?}");
    }
}
