//! Rendering of benchmark results: paper-style text tables and CSV.

use std::fmt::Write as _;

/// One curve of a figure: y = f(x) with a name (e.g. "BVIA").
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// y value at the given x (exact match), if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Final (largest-x) y value, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }
}

/// A bundle of series sharing axes — one paper figure panel.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Panel title (e.g. "Fig 3: base latency, polling").
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a curve.
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Find a series by name.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Absorb another partial figure of the same panel (same title):
    /// points of a same-named series are appended in arrival order, new
    /// series are appended after the existing ones. Used by the parallel
    /// suite runner to reassemble per-job slices; feeding slices in
    /// canonical job order reproduces the serial build byte-for-byte.
    pub fn merge_from(&mut self, src: Figure) {
        debug_assert_eq!(self.title, src.title, "merging mismatched figure panels");
        for s in src.series {
            match self.series.iter_mut().find(|e| e.name == s.name) {
                Some(dst) => dst.points.extend(s.points),
                None => self.series.push(s),
            }
        }
    }

    /// Render as an aligned text table: one x column, one column per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        // Collect the union of x values, keeping order of first appearance.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !xs.iter().any(|e| (e - x).abs() < 1e-9) {
                    xs.push(*x);
                }
            }
        }
        let mut rows: Vec<Vec<String>> = Vec::new();
        for x in &xs {
            let mut row = vec![format_num(*x)];
            for s in &self.series {
                row.push(s.at(*x).map_or_else(|| "-".to_string(), format_num));
            }
            rows.push(row);
        }
        let _ = writeln!(out, "({})", self.y_label);
        render_aligned(&mut out, &headers, &rows);
        out
    }

    /// Render as CSV (header row, then one row per x).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec![self.x_label.clone()];
        headers.extend(self.series.iter().map(|s| s.name.clone()));
        let _ = writeln!(out, "{}", headers.join(","));
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !xs.iter().any(|e| (e - x).abs() < 1e-9) {
                    xs.push(*x);
                }
            }
        }
        for x in xs {
            let mut cells = vec![format!("{x}")];
            for s in &self.series {
                cells.push(s.at(x).map_or_else(String::new, |y| format!("{y}")));
            }
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }
}

/// A labeled-row table (Table 1 shape): row label + one value per column.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers (after the row-label column).
    pub columns: Vec<String>,
    /// Rows: label + cells.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, label: impl Into<String>, cells: Vec<f64>) {
        let label = label.into();
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row '{label}' has wrong arity"
        );
        self.rows.push((label, cells));
    }

    /// Cell lookup by row label and column name.
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        let ci = self.columns.iter().position(|c| c == col)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, cells)| cells[ci])
    }

    /// Absorb another partial table with the same title. Two shapes are
    /// supported, mirroring how experiments decompose:
    ///
    /// * **row merge** — identical columns: `src` rows are appended
    ///   (per-profile rows of a shared-column table, possibly zero rows);
    /// * **column merge** — identical row labels: `src` columns and cells
    ///   are appended to each row (per-profile columns of a fixed-row
    ///   table, like Table 1).
    ///
    /// Anything else is a plan bug and panics.
    pub fn merge_from(&mut self, src: Table) {
        debug_assert_eq!(self.title, src.title, "merging mismatched tables");
        if self.columns == src.columns {
            self.rows.extend(src.rows);
        } else if self.rows.len() == src.rows.len()
            && self
                .rows
                .iter()
                .zip(&src.rows)
                .all(|((a, _), (b, _))| a == b)
        {
            self.columns.extend(src.columns);
            for ((_, dst), (_, cells)) in self.rows.iter_mut().zip(src.rows) {
                dst.extend(cells);
            }
        } else {
            panic!(
                "table '{}': neither columns nor row labels line up for merging",
                self.title
            );
        }
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut headers = vec![String::new()];
        headers.extend(self.columns.clone());
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(label, cells)| {
                let mut row = vec![label.clone()];
                row.extend(cells.iter().map(|c| format_num(*c)));
                row
            })
            .collect();
        render_aligned(&mut out, &headers, &rows);
        out
    }

    /// Render as CSV (header row, then one row per label).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut headers = vec!["row".to_string()];
        headers.extend(self.columns.clone());
        let _ = writeln!(out, "{}", headers.join(","));
        for (label, cells) in &self.rows {
            let mut row = vec![label.replace(',', ";")];
            row.extend(cells.iter().map(|c| format!("{c}")));
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// A rendered experiment output: a figure panel or a table.
#[derive(Clone, Debug)]
pub enum Artifact {
    /// Multi-series figure panel.
    Figure(Figure),
    /// Labeled-row table.
    Table(Table),
}

impl Artifact {
    /// The artifact's title.
    pub fn title(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.title,
            Artifact::Table(t) => &t.title,
        }
    }

    /// Aligned-text rendering.
    pub fn render(&self) -> String {
        match self {
            Artifact::Figure(f) => f.render(),
            Artifact::Table(t) => t.render(),
        }
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_csv(),
            Artifact::Table(t) => t.to_csv(),
        }
    }

    /// JSON rendering (for the paper's planned "repository of VIBe
    /// results": a machine-readable dump other tools can aggregate).
    ///
    /// Emitted by hand so the artifact pipeline has no serialization
    /// dependency; the document shape is externally-tagged on `kind`:
    /// `{"kind": "figure", "title": ..., "series": [{"name", "points"}]}`
    /// or `{"kind": "table", "title": ..., "columns": [...], "rows":
    /// [[label, [cells...]], ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        match self {
            Artifact::Figure(f) => {
                out.push_str("{\n  \"kind\": \"figure\",\n");
                let _ = writeln!(out, "  \"title\": {},", json_str(&f.title));
                let _ = writeln!(out, "  \"x_label\": {},", json_str(&f.x_label));
                let _ = writeln!(out, "  \"y_label\": {},", json_str(&f.y_label));
                out.push_str("  \"series\": [");
                for (i, s) in f.series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n    {{\"name\": {}, \"points\": [",
                        json_str(&s.name)
                    );
                    for (j, (x, y)) in s.points.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{}, {}]", json_num(*x), json_num(*y));
                    }
                    out.push_str("]}");
                }
                out.push_str("\n  ]\n}");
            }
            Artifact::Table(t) => {
                out.push_str("{\n  \"kind\": \"table\",\n");
                let _ = writeln!(out, "  \"title\": {},", json_str(&t.title));
                out.push_str("  \"columns\": [");
                for (i, c) in t.columns.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_str(c));
                }
                out.push_str("],\n  \"rows\": [");
                for (i, (label, cells)) in t.rows.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\n    [{}, [", json_str(label));
                    for (j, c) in cells.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&json_num(*c));
                    }
                    out.push_str("]]");
                }
                out.push_str("\n  ]\n}");
            }
        }
        out
    }
}

/// Escape and quote a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON number. Integral values keep a trailing
/// `.0` so the cell type is unambiguous; non-finite values (which no
/// artifact should produce) degrade to `null`.
fn json_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Reassemble per-job artifact slices into the serial artifact set.
///
/// `parts` must arrive in canonical job order (the order the experiment's
/// plan emitted them). Artifacts are matched by title: the first slice
/// bearing a title establishes the artifact and its position in the output;
/// later slices with the same title are folded in via
/// [`Figure::merge_from`] / [`Table::merge_from`]. Because every builder
/// appends series, points, rows, and columns in sweep order, replaying the
/// slices in plan order reproduces the serial construction exactly.
pub fn merge_artifacts(parts: impl IntoIterator<Item = Vec<Artifact>>) -> Vec<Artifact> {
    let mut out: Vec<Artifact> = Vec::new();
    for part in parts {
        for a in part {
            match out.iter_mut().find(|e| e.title() == a.title()) {
                None => out.push(a),
                Some(Artifact::Figure(dst)) => match a {
                    Artifact::Figure(src) => dst.merge_from(src),
                    Artifact::Table(t) => panic!("'{}': figure/table kind clash", t.title),
                },
                Some(Artifact::Table(dst)) => match a {
                    Artifact::Table(src) => dst.merge_from(src),
                    Artifact::Figure(f) => panic!("'{}': table/figure kind clash", f.title),
                },
            }
        }
    }
    out
}

impl From<Figure> for Artifact {
    fn from(f: Figure) -> Self {
        Artifact::Figure(f)
    }
}

impl From<Table> for Artifact {
    fn from(t: Table) -> Self {
        Artifact::Table(t)
    }
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100_000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

fn render_aligned(out: &mut String, headers: &[String], rows: &[Vec<String>]) {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
        let _ = i;
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
    );
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_lookup() {
        let mut s = Series::new("cLAN");
        s.push(4.0, 8.5);
        s.push(1024.0, 18.0);
        assert_eq!(s.at(4.0), Some(8.5));
        assert_eq!(s.at(5.0), None);
        assert_eq!(s.last_y(), Some(18.0));
    }

    #[test]
    fn figure_renders_union_of_x() {
        let mut f = Figure::new("t", "bytes", "us");
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(2.0, 200.0);
        f.push(a);
        f.push(b);
        let text = f.render();
        assert!(text.contains("A"), "{text}");
        assert!(text.contains('-'), "{text}");
        let csv = f.to_csv();
        assert!(csv.starts_with("bytes,A,B"));
        assert!(csv.contains("2,20,200"));
        assert!(csv.lines().count() == 3);
    }

    #[test]
    fn table_cells() {
        let mut t = Table::new("Table 1", vec!["M-VIA".into(), "BVIA".into()]);
        t.push("Creating VI", vec![93.0, 28.0]);
        assert_eq!(t.cell("Creating VI", "BVIA"), Some(28.0));
        assert_eq!(t.cell("Creating VI", "cLAN"), None);
        assert_eq!(t.cell("Nope", "BVIA"), None);
        let text = t.render();
        assert!(text.contains("93.0") || text.contains("93"), "{text}");
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn table_arity_checked() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push("r", vec![1.0]);
    }

    #[test]
    fn table_csv() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push("r1", vec![1.5, 2.0]);
        let csv = t.to_csv();
        assert_eq!(csv, "row,a,b\nr1,1.5,2\n");
    }

    #[test]
    fn artifact_dispatch() {
        let t = Table::new("tab", vec!["a".into()]);
        let a: Artifact = t.into();
        assert_eq!(a.title(), "tab");
        assert!(a.to_csv().starts_with("row,a"));
        let f = Figure::new("fig", "x", "y");
        let a: Artifact = f.into();
        assert_eq!(a.title(), "fig");
    }

    #[test]
    fn artifact_json_roundtrips_structure() {
        let mut t = Table::new("tab", vec!["a".into()]);
        t.push("r", vec![2.5]);
        let a: Artifact = t.into();
        let json = a.to_json();
        assert!(json.contains("\"kind\": \"table\""), "{json}");
        assert!(json.contains("2.5"), "{json}");
        assert!(json.contains("\"title\": \"tab\""), "{json}");
        assert!(json.contains("[\"r\", [2.5]]"), "{json}");
        // Structurally sane: brackets and braces balance.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{json}"
            );
        }
    }

    #[test]
    fn figure_json_shape() {
        let mut f = Figure::new("fig \"q\"", "x", "y");
        let mut s = Series::new("A");
        s.push(1.0, 2.5);
        f.push(s);
        let a: Artifact = f.into();
        let json = a.to_json();
        assert!(json.contains("\"kind\": \"figure\""), "{json}");
        assert!(json.contains("\"title\": \"fig \\\"q\\\"\""), "{json}");
        assert!(json.contains("[1.0, 2.5]"), "{json}");
    }

    fn fig(title: &str, series: &[(&str, &[(f64, f64)])]) -> Figure {
        let mut f = Figure::new(title, "x", "y");
        for (name, pts) in series {
            let mut s = Series::new(*name);
            for (x, y) in *pts {
                s.push(*x, *y);
            }
            f.push(s);
        }
        f
    }

    #[test]
    fn figure_merge_appends_points_and_series() {
        let mut dst = fig("p", &[("A", &[(1.0, 10.0)])]);
        dst.merge_from(fig("p", &[("A", &[(2.0, 20.0)]), ("B", &[(1.0, 5.0)])]));
        assert_eq!(dst.series.len(), 2);
        assert_eq!(
            dst.series("A").unwrap().points,
            vec![(1.0, 10.0), (2.0, 20.0)]
        );
        assert_eq!(dst.series("B").unwrap().points, vec![(1.0, 5.0)]);
    }

    #[test]
    fn table_row_and_column_merge() {
        // Row merge: same columns.
        let mut t = Table::new("t", vec!["a".into()]);
        t.push("r1", vec![1.0]);
        let mut more = Table::new("t", vec!["a".into()]);
        more.push("r2", vec![2.0]);
        t.merge_from(more);
        assert_eq!(t.rows.len(), 2);
        // Column merge: same row labels, new columns (Table 1 shape).
        let mut right = Table::new("t", vec!["b".into()]);
        right.push("r1", vec![10.0]);
        right.push("r2", vec![20.0]);
        t.merge_from(right);
        assert_eq!(t.columns, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(t.cell("r2", "b"), Some(20.0));
        // Zero-row slice with matching columns is a no-op row merge
        // (a plan job whose profile contributes nothing).
        t.merge_from(Table::new("t", vec!["a".into(), "b".into()]));
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "line up")]
    fn table_merge_rejects_disjoint_shapes() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push("r1", vec![1.0]);
        let mut bad = Table::new("t", vec!["b".into()]);
        bad.push("r9", vec![9.0]);
        t.merge_from(bad);
    }

    #[test]
    fn merge_artifacts_reproduces_serial_build() {
        // Serial: one figure with two 2-point series, built series-major.
        let serial = fig(
            "p",
            &[
                ("A", &[(1.0, 10.0), (2.0, 20.0)]),
                ("B", &[(1.0, 5.0), (2.0, 6.0)]),
            ],
        );
        // Jobs: one slice per (series, x) point, in canonical sweep order.
        let parts: Vec<Vec<Artifact>> = vec![
            vec![fig("p", &[("A", &[(1.0, 10.0)])]).into()],
            vec![fig("p", &[("A", &[(2.0, 20.0)])]).into()],
            vec![fig("p", &[("B", &[(1.0, 5.0)])]).into()],
            vec![fig("p", &[("B", &[(2.0, 6.0)])]).into()],
        ];
        let merged = merge_artifacts(parts);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].to_json(), Artifact::from(serial).to_json());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(0.123456), "0.123");
        assert_eq!(format_num(8.5), "8.50");
        assert_eq!(format_num(123.456), "123.5");
        assert_eq!(format_num(123456.0), "123456");
    }
}
