//! The §3.2.5 data-transfer micro-benchmarks, published in full only in
//! the companion technical report (OSU-CISRC-10/00-TR20): multiple data
//! segments (MDS), asynchronous message handling (ASY), RDMA operations,
//! sender pipeline length (PIP), maximum transfer unit (MTU), and
//! reliability levels (REL). The paper describes their design; we
//! reproduce the benchmarks and report our own numbers.

use simkit::WaitMode;
use via::{Profile, Reliability};

use crate::harness::{bandwidth, ping_pong, rdma_write_ping, BufferPool, DtConfig, Pair};
use crate::report::{Figure, Series, Table};

// ---------------------------------------------------------------------
// MDS: multiple data segments.
// ---------------------------------------------------------------------

/// Segment counts the MDS benchmark sweeps.
pub fn segment_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// Latency vs. number of data segments at a fixed total size, per profile.
pub fn mds_figure(profiles: &[Profile], msg_size: u64) -> Figure {
    let mut fig = Figure::new(
        format!("MDS: latency vs data segments ({msg_size} B total)"),
        "data segments",
        "one-way latency (us)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &n in &segment_counts() {
            let cfg = DtConfig {
                iters: 30,
                segments: n,
                ..DtConfig::base(p.clone(), msg_size)
            };
            s.push(n as f64, ping_pong(&cfg).latency_us);
        }
        fig.push(s);
    }
    fig
}

// ---------------------------------------------------------------------
// ASY: asynchronous message handling — bursts of k pings answered by k
// pongs; per-message latency vs. burst size.
// ---------------------------------------------------------------------

/// Burst sizes the ASY benchmark sweeps.
pub fn burst_sizes() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Per-message time (us) of a k-deep asynchronous burst exchange.
pub fn asy_burst_latency(cfg: &DtConfig, burst: usize) -> f64 {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let burst = burst as u64;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, per_msg) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let mut pool = BufferPool::build(ctx, &ep.provider, 1, cfg.msg_size, 100);
            let (va, mh) = pool.pick(0);
            for _ in 0..burst {
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, 1))
                    .unwrap();
            }
            ep.sync(ctx);
            for _round in 0..total {
                // Collect the whole burst, re-arming receives as we go.
                for _ in 0..burst {
                    let c = ep.recv_one(ctx, cfg.wait);
                    assert!(c.is_ok());
                    ep.vi
                        .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, 1))
                        .unwrap();
                }
                // Echo the burst back.
                for _ in 0..burst {
                    ep.vi
                        .post_send(ctx, ep.split_desc(false, va, mh, cfg.msg_size, 1))
                        .unwrap();
                }
                for _ in 0..burst {
                    assert!(ep.vi.send_wait(ctx, cfg.wait).is_ok());
                }
            }
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let mut pool = BufferPool::build(ctx, &ep.provider, 1, cfg.msg_size, 100);
            let (va, mh) = pool.pick(0);
            ep.sync(ctx);
            let mut t0 = ctx.now();
            for round in 0..total {
                if round == cfg.warmup as u64 {
                    t0 = ctx.now();
                }
                for _ in 0..burst {
                    ep.vi
                        .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, 1))
                        .unwrap();
                }
                for _ in 0..burst {
                    ep.vi
                        .post_send(ctx, ep.split_desc(false, va, mh, cfg.msg_size, 1))
                        .unwrap();
                }
                for _ in 0..burst {
                    let c = ep.recv_one(ctx, cfg.wait);
                    assert!(c.is_ok());
                }
                for _ in 0..burst {
                    assert!(ep.vi.send_wait(ctx, cfg.wait).is_ok());
                }
            }
            let elapsed = ctx.now() - t0;
            elapsed.as_micros_f64() / (2.0 * cfg.iters as f64 * burst as f64)
        },
    );
    per_msg
}

/// Per-message latency vs. burst size, per profile.
pub fn asy_figure(profiles: &[Profile], msg_size: u64) -> Figure {
    let mut fig = Figure::new(
        format!("ASY: per-message time vs burst size ({msg_size} B)"),
        "burst size",
        "per-message time (us)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &k in &burst_sizes() {
            let cfg = DtConfig {
                iters: 20,
                ..DtConfig::base(p.clone(), msg_size)
            };
            s.push(k as f64, asy_burst_latency(&cfg, k));
        }
        fig.push(s);
    }
    fig
}

// ---------------------------------------------------------------------
// RDMA: RDMA write vs send/receive.
// ---------------------------------------------------------------------

/// Latency of send/receive vs. RDMA write over message sizes, for the
/// profiles that implement RDMA write (M-VIA and cLAN in the paper).
pub fn rdma_figure(profiles: &[Profile], sizes: &[u64]) -> Figure {
    let mut fig = Figure::new(
        "RDMA: send/receive vs RDMA-write latency",
        "bytes",
        "one-way latency (us)",
    );
    for p in profiles {
        if !p.supports_rdma_write {
            continue;
        }
        let mut s_send = Series::new(format!("{} send", p.name));
        let mut s_rdma = Series::new(format!("{} rdma", p.name));
        for &size in sizes {
            let cfg = DtConfig {
                iters: 30,
                ..DtConfig::base(p.clone(), size)
            };
            s_send.push(size as f64, ping_pong(&cfg).latency_us);
            s_rdma.push(size as f64, rdma_write_ping(&cfg).latency_us);
        }
        fig.push(s_send);
        fig.push(s_rdma);
    }
    fig
}

// ---------------------------------------------------------------------
// PIP: sender pipeline length.
// ---------------------------------------------------------------------

/// Pipeline depths the PIP benchmark sweeps.
pub fn pipeline_depths() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32, 64]
}

/// Bandwidth vs. number of outstanding sends, per profile. Runs at the
/// strongest reliability level the profile supports: under Reliable
/// Delivery a send only completes on the remote NIC's ACK, so the pipeline
/// depth directly bounds the in-flight window — which is the effect this
/// benchmark isolates. (On Unreliable connections a send completes at
/// local wire hand-off and the curve is nearly flat.)
pub fn pip_figure(profiles: &[Profile], msg_size: u64) -> Figure {
    let mut fig = Figure::new(
        format!("PIP: bandwidth vs sender pipeline length ({msg_size} B)"),
        "outstanding sends",
        "bandwidth (MB/s)",
    );
    for p in profiles {
        let level = if p.supports_reliability(Reliability::ReliableDelivery) {
            Reliability::ReliableDelivery
        } else {
            Reliability::Unreliable
        };
        let mut s = Series::new(format!(
            "{} ({})",
            p.name,
            match level {
                Reliability::Unreliable => "UD",
                Reliability::ReliableDelivery => "RD",
                Reliability::ReliableReception => "RR",
            }
        ));
        for &d in &pipeline_depths() {
            let cfg = DtConfig {
                iters: 256,
                queue_depth: d,
                reliability: level,
                ..DtConfig::base(p.clone(), msg_size)
            };
            s.push(d as f64, bandwidth(&cfg).mbps);
        }
        fig.push(s);
    }
    fig
}

// ---------------------------------------------------------------------
// MTU: maximum transfer unit.
// ---------------------------------------------------------------------

/// Fragment sizes the MTU benchmark sweeps (bounded by the fabric MTU).
pub fn mtu_values(p: &Profile) -> Vec<u32> {
    [512u32, 1024, 2048, 4096, 8192, 16384]
        .into_iter()
        .filter(|&m| m <= p.net.link.mtu)
        .collect()
}

/// Latency and bandwidth at a fixed message size while sweeping the
/// provider's wire fragmentation unit.
pub fn mtu_figures(profile: Profile, msg_size: u64) -> (Figure, Figure) {
    let mut lat = Figure::new(
        format!(
            "{}: latency vs wire MTU ({msg_size} B message)",
            profile.name
        ),
        "wire MTU (bytes)",
        "one-way latency (us)",
    );
    let mut bw = Figure::new(
        format!(
            "{}: bandwidth vs wire MTU ({msg_size} B message)",
            profile.name
        ),
        "wire MTU (bytes)",
        "bandwidth (MB/s)",
    );
    let mut s_lat = Series::new(profile.name);
    let mut s_bw = Series::new(profile.name);
    for mtu in mtu_values(&profile) {
        let mut p = profile.clone();
        p.wire_mtu = mtu;
        let cfg = DtConfig {
            iters: 30,
            ..DtConfig::base(p.clone(), msg_size)
        };
        s_lat.push(mtu as f64, ping_pong(&cfg).latency_us);
        let cfg = DtConfig {
            iters: 192,
            ..DtConfig::base(p, msg_size)
        };
        s_bw.push(mtu as f64, bandwidth(&cfg).mbps);
    }
    lat.push(s_lat);
    bw.push(s_bw);
    (lat, bw)
}

// ---------------------------------------------------------------------
// REL: reliability levels.
// ---------------------------------------------------------------------

/// Latency/bandwidth across the reliability levels a profile supports
/// (cLAN implements all three).
pub fn rel_table(profile: Profile, msg_size: u64) -> Table {
    let mut t = Table::new(
        format!("{}: reliability levels at {msg_size} B", profile.name),
        vec!["latency (us)".to_string(), "bandwidth (MB/s)".to_string()],
    );
    for (level, name) in [
        (Reliability::Unreliable, "Unreliable Delivery"),
        (Reliability::ReliableDelivery, "Reliable Delivery"),
        (Reliability::ReliableReception, "Reliable Reception"),
    ] {
        if !profile.supports_reliability(level) {
            continue;
        }
        let lat = ping_pong(&DtConfig {
            iters: 30,
            reliability: level,
            ..DtConfig::base(profile.clone(), msg_size)
        })
        .latency_us;
        let bw = bandwidth(&DtConfig {
            iters: 192,
            reliability: level,
            ..DtConfig::base(profile.clone(), msg_size)
        })
        .mbps;
        t.push(name, vec![lat, bw]);
    }
    t
}

/// Reliable delivery under injected frame loss: delivered-message goodput
/// and retransmission counts per loss rate (the failure-injection side of
/// the REL benchmark). Rows with independent (Bernoulli) loss plus one
/// Gilbert–Elliott burst row at a matched mean rate, because burst errors
/// hit windowed recovery much harder than the mean suggests.
pub fn rel_loss_table(profile: Profile, msg_size: u64, loss_rates: &[f64]) -> Table {
    let mut t = Table::new(
        format!(
            "{}: Reliable Delivery under frame loss ({msg_size} B)",
            profile.name
        ),
        vec![
            "bandwidth (MB/s)".to_string(),
            "retransmissions".to_string(),
            "frames dropped".to_string(),
        ],
    );
    let mut one = |label: String, net: fabric::NetParams| {
        let mut p = profile.clone();
        p.net = net;
        let cfg = DtConfig {
            iters: 128,
            reliability: Reliability::ReliableDelivery,
            // Bound the in-flight window so a lost ACK cannot overrun the
            // receive window during recovery.
            queue_depth: 16,
            ..DtConfig::base(p, msg_size)
        };
        let pair = Pair::new(&cfg);
        let (retx, mbps) = run_lossy_bw(&pair, &cfg);
        // The fabric's own drop counter closes the loop on the injection:
        // every recovery the sender pays for traces back to a frame the
        // SAN actually discarded.
        let dropped = pair.san_stats().frames_dropped;
        t.push(label, vec![mbps, retx as f64, dropped as f64]);
    };
    for &loss in loss_rates {
        one(
            format!("loss {:.0}%", loss * 100.0),
            profile.net.with_loss(loss),
        );
    }
    if let Some(&max) = loss_rates.last() {
        if max > 0.0 {
            // Bursty loss with (approximately) the same long-run mean as
            // the worst Bernoulli row: mean = p_g2b/(p_g2b+p_b2g)*loss_bad.
            let burst = profile
                .net
                .with_burst_loss(max * 0.25 / 0.95, 0.25, 0.0, 0.95);
            one(
                format!("burst (mean {:.1}%)", burst.loss.mean_loss() * 100.0),
                burst,
            );
        }
    }
    t
}

fn run_lossy_bw(pair: &Pair, cfg: &DtConfig) -> (u64, f64) {
    // A plain bandwidth run, but we also read back the sender's
    // retransmission counter.
    use via::{Descriptor, MemAttributes};
    let total = (cfg.warmup + cfg.iters) as u64;
    let window: u64 = 64;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, (mbps, retx)) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let mut pool = BufferPool::build(ctx, &ep.provider, 1, cfg.msg_size, 100);
            let (va, mh) = pool.pick(0);
            let ack = ep.provider.malloc(16);
            let ack_mh = ep
                .provider
                .register_mem(ctx, ack, 16, MemAttributes::default())
                .unwrap();
            for _ in 0..window.min(total) {
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, 1))
                    .unwrap();
            }
            ep.sync(ctx);
            for i in 0..total {
                let c = ep.recv_one(ctx, cfg.wait);
                assert!(c.is_ok(), "lossy bw recv {i}: {:?}", c.status);
                if i + window < total {
                    ep.vi
                        .post_recv(ctx, ep.split_desc(true, va, mh, cfg.msg_size, 1))
                        .unwrap();
                }
            }
            ep.vi
                .post_send(ctx, Descriptor::send().segment(ack, ack_mh, 4))
                .unwrap();
            ep.vi.send_wait(ctx, cfg.wait);
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let mut pool = BufferPool::build(ctx, &ep.provider, 1, cfg.msg_size, 100);
            let (va, mh) = pool.pick(0);
            let ack = ep.provider.malloc(16);
            let ack_mh = ep
                .provider
                .register_mem(ctx, ack, 16, MemAttributes::default())
                .unwrap();
            ep.vi
                .post_recv(ctx, Descriptor::recv().segment(ack, ack_mh, 16))
                .unwrap();
            ep.sync(ctx);
            let t0 = ctx.now();
            let mut outstanding = 0u64;
            for _ in 0..total {
                ep.vi
                    .post_send(ctx, ep.split_desc(false, va, mh, cfg.msg_size, 1))
                    .unwrap();
                outstanding += 1;
                if outstanding >= cfg.queue_depth as u64 {
                    let c = ep.vi.send_wait(ctx, cfg.wait);
                    assert!(c.is_ok(), "lossy bw send: {:?}", c.status);
                    outstanding -= 1;
                }
            }
            while outstanding > 0 {
                assert!(ep.vi.send_wait(ctx, cfg.wait).is_ok());
                outstanding -= 1;
            }
            let c = ep.recv_one(ctx, cfg.wait);
            assert!(c.is_ok());
            let elapsed = ctx.now() - t0;
            let mbps = simkit::megabytes_per_second(cfg.msg_size * total, elapsed);
            (mbps, ep.provider.stats().retransmissions)
        },
    );
    (retx, mbps)
}

/// Tail latency of Reliable Delivery under frame loss: a deterministic
/// ping-pong has zero jitter, so *any* spread in the round-trip
/// distribution is loss recovery at work — retransmission timeouts
/// surface directly in the p99.
pub fn rel_tail_table(profile: Profile, msg_size: u64, loss_rates: &[f64]) -> Table {
    let mut t = Table::new(
        format!(
            "{}: RD one-way latency distribution under loss ({msg_size} B, us)",
            profile.name
        ),
        vec![
            "p50".to_string(),
            "p99".to_string(),
            "max".to_string(),
            "mean".to_string(),
            "retransmissions".to_string(),
            "frames dropped".to_string(),
            "conn failures".to_string(),
        ],
    );
    for &loss in loss_rates {
        let mut p = profile.clone();
        p.net = p.net.with_loss(loss);
        // A short retransmit timer keeps the tail measurable in one run.
        p.data.retransmit_timeout = simkit::SimDuration::from_micros(400);
        p.data.max_retries = 400;
        let cfg = DtConfig {
            iters: 300,
            warmup: 10,
            reliability: Reliability::ReliableDelivery,
            ..DtConfig::base(p, msg_size)
        };
        let (samples, retx, dropped, conn_failures) = ping_pong_samples(&cfg);
        t.push(
            format!("loss {:.0}%", loss * 100.0),
            vec![
                samples.percentile(50.0),
                samples.percentile(99.0),
                samples.percentile(100.0),
                samples.mean(),
                retx as f64,
                dropped as f64,
                // The generous retry budget must ride out every loss rate
                // in the sweep without tripping the VI error state.
                conn_failures as f64,
            ],
        );
    }
    t
}

/// A ping-pong that keeps every one-way sample (half of each round trip),
/// plus the run's total retransmissions and connection failures (both
/// providers) and the fabric's dropped-frame count.
fn ping_pong_samples(cfg: &DtConfig) -> (simkit::Samples, u64, u64, u64) {
    use simkit::Samples;
    use via::{Descriptor, MemAttributes};
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, samples) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.vi
                .post_recv(
                    ctx,
                    Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                )
                .unwrap();
            ep.sync(ctx);
            for i in 0..total {
                let c = ep.recv_one(ctx, cfg.wait);
                assert!(c.is_ok(), "{:?}", c.status);
                if i + 1 < total {
                    ep.vi
                        .post_recv(
                            ctx,
                            Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                        )
                        .unwrap();
                }
                ep.vi
                    .post_send(
                        ctx,
                        Descriptor::send().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
                assert!(ep.vi.send_wait(ctx, cfg.wait).is_ok());
            }
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let mut samples = Samples::new();
            for i in 0..total {
                let t0 = ctx.now();
                ep.vi
                    .post_recv(
                        ctx,
                        Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
                ep.vi
                    .post_send(
                        ctx,
                        Descriptor::send().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
                let c = ep.recv_one(ctx, cfg.wait);
                assert!(c.is_ok(), "{:?}", c.status);
                assert!(ep.vi.send_wait(ctx, cfg.wait).is_ok());
                if i >= cfg.warmup as u64 {
                    samples.push((ctx.now() - t0).as_micros_f64() / 2.0);
                }
            }
            samples
        },
    );
    let retx = pair.provider_stats(0).retransmissions + pair.provider_stats(1).retransmissions;
    let conn_failures = pair.provider_stats(0).conn_failures + pair.provider_stats(1).conn_failures;
    (
        samples,
        retx,
        pair.san_stats().frames_dropped,
        conn_failures,
    )
}

/// CPU utilization of a blocking large-transfer send across reliability
/// levels (completion semantics move the wait, not the work).
pub fn rel_cpu_row(profile: Profile, msg_size: u64) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for (level, name) in [
        (Reliability::Unreliable, "UD"),
        (Reliability::ReliableDelivery, "RD"),
        (Reliability::ReliableReception, "RR"),
    ] {
        if !profile.supports_reliability(level) {
            continue;
        }
        let cfg = DtConfig {
            iters: 20,
            wait: WaitMode::Block,
            reliability: level,
            ..DtConfig::base(profile.clone(), msg_size)
        };
        let r = ping_pong(&cfg);
        rows.push((name.to_string(), r.client_util * 100.0));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mds_latency_grows_with_segments_on_nic_offload() {
        let fig = mds_figure(&[Profile::bvia()], 8192);
        let s = fig.series("BVIA").unwrap();
        let l1 = s.at(1.0).unwrap();
        let l16 = s.at(16.0).unwrap();
        assert!(l16 > l1, "16 segs {l16} !> 1 seg {l1}");
    }

    #[test]
    fn asy_bursts_amortize_per_message_time() {
        let cfg = DtConfig {
            iters: 12,
            ..DtConfig::base(Profile::clan(), 256)
        };
        let k1 = asy_burst_latency(&cfg, 1);
        let k16 = asy_burst_latency(&cfg, 16);
        assert!(
            k16 < k1 * 0.8,
            "burst of 16 ({k16}) must amortize vs single ({k1})"
        );
    }

    #[test]
    fn rdma_write_beats_send_for_small_messages_on_clan() {
        // No receive-descriptor matching on the fast path.
        let fig = rdma_figure(&[Profile::clan()], &[4096]);
        let send = fig.series("cLAN send").unwrap().at(4096.0).unwrap();
        let rdma = fig.series("cLAN rdma").unwrap().at(4096.0).unwrap();
        // They are close; RDMA write avoids nothing dramatic in latency
        // terms here but must be in the same ballpark and not slower by
        // much (the TR reports them comparable).
        assert!(rdma < send * 1.2, "rdma {rdma} vs send {send}");
    }

    #[test]
    fn pipeline_depth_saturates_bandwidth() {
        let fig = pip_figure(&[Profile::clan()], 4096);
        let s = fig.series("cLAN (RD)").unwrap();
        let d1 = s.at(1.0).unwrap();
        let d16 = s.at(16.0).unwrap();
        let d64 = s.at(64.0).unwrap();
        assert!(d16 > d1 * 1.5, "pipelining must help: d1={d1} d16={d16}");
        // Diminishing returns by 64.
        assert!(d64 <= d16 * 1.25, "d64={d64} d16={d16}");
    }

    #[test]
    fn pipeline_depth_is_flat_on_unreliable_connections() {
        // BVIA only offers UD, where send completion is local: the sender
        // never stalls on the receiver, so depth barely matters.
        let fig = pip_figure(&[Profile::bvia()], 4096);
        let s = fig.series("BVIA (UD)").unwrap();
        let d1 = s.at(1.0).unwrap();
        let d64 = s.at(64.0).unwrap();
        assert!(
            d64 < d1 * 1.3,
            "UD curve should be nearly flat: {d1} vs {d64}"
        );
    }

    #[test]
    fn mtu_trades_pipelining_against_overhead() {
        let (lat, bw) = mtu_figures(Profile::clan(), 28672);
        let s = lat.series("cLAN").unwrap();
        // Large fragments kill intra-message pipelining: latency grows.
        assert!(
            s.at(16384.0).unwrap() > s.at(2048.0).unwrap(),
            "16 KiB-MTU latency must exceed 2 KiB-MTU latency: {:?}",
            s.points
        );
        // Tiny fragments pay per-fragment overhead: bandwidth drops.
        let sb = bw.series("cLAN").unwrap();
        assert!(
            sb.at(512.0).unwrap() < sb.at(8192.0).unwrap(),
            "512 B-MTU bandwidth must trail 8 KiB-MTU: {:?}",
            sb.points
        );
    }

    #[test]
    fn reliability_costs_order_correctly() {
        let t = rel_table(Profile::clan(), 4096);
        let ud = t.cell("Unreliable Delivery", "latency (us)").unwrap();
        let rd = t.cell("Reliable Delivery", "latency (us)").unwrap();
        let rr = t.cell("Reliable Reception", "latency (us)").unwrap();
        // One-way *data* latency is unchanged by acks (they ride the
        // reverse path), so ping-pong latencies stay close...
        assert!(rd >= ud * 0.95, "{rd} vs {ud}");
        assert!(rr >= ud * 0.95, "{rr} vs {ud}");
        // ...while bandwidth pays for the ack stream.
        let bw_ud = t.cell("Unreliable Delivery", "bandwidth (MB/s)").unwrap();
        let bw_rr = t.cell("Reliable Reception", "bandwidth (MB/s)").unwrap();
        assert!(bw_rr <= bw_ud * 1.02, "RR bw {bw_rr} vs UD bw {bw_ud}");
    }

    #[test]
    fn loss_shows_up_in_the_tail_not_the_median() {
        let t = rel_tail_table(Profile::clan(), 1024, &[0.0, 0.03]);
        let p50_clean = t.cell("loss 0%", "p50").unwrap();
        let p50_lossy = t.cell("loss 3%", "p50").unwrap();
        let p99_clean = t.cell("loss 0%", "p99").unwrap();
        let p99_lossy = t.cell("loss 3%", "p99").unwrap();
        // The median barely moves (most exchanges see no loss)...
        assert!(
            p50_lossy < p50_clean * 1.5,
            "median must stay close: {p50_clean} vs {p50_lossy}"
        );
        // ...but the p99 absorbs at least one retransmission timeout.
        assert!(
            p99_lossy > p99_clean + 150.0,
            "p99 must show the 400 us retransmit timer: clean {p99_clean}, lossy {p99_lossy}"
        );
        // A clean deterministic run has a degenerate distribution.
        assert!((p99_clean - p50_clean).abs() < 1.0);
    }

    #[test]
    fn lossy_reliable_delivery_degrades_gracefully() {
        let t = rel_loss_table(Profile::clan(), 4096, &[0.0, 0.05]);
        let clean = t.cell("loss 0%", "bandwidth (MB/s)").unwrap();
        let lossy = t.cell("loss 5%", "bandwidth (MB/s)").unwrap();
        assert!(
            lossy < clean,
            "loss must cost bandwidth: {lossy} vs {clean}"
        );
        assert!(t.cell("loss 0%", "retransmissions").unwrap() == 0.0);
        assert!(t.cell("loss 5%", "retransmissions").unwrap() > 0.0);
        // The fabric's drop counter must corroborate: zero drops on the
        // clean run, and every retransmission answers at least one drop.
        assert!(t.cell("loss 0%", "frames dropped").unwrap() == 0.0);
        let dropped = t.cell("loss 5%", "frames dropped").unwrap();
        assert!(dropped > 0.0, "lossy run must record fabric drops");
    }
}
