//! Programming-model micro-benchmark: the get/put model (the paper's §5
//! names this as planned future work — "similar micro-benchmarks for
//! distributed memory programming model (MPI), distributed shared-memory,
//! and get/put" — so this module extends the suite in the direction the
//! authors announced).
//!
//! One-sided communication layers (ARMCI, SHMEM, later MPI-2 RMA) map
//! `put` to RDMA Write and `get` to RDMA Read where hardware allows,
//! falling back to send/receive emulation otherwise. The benchmark
//! measures both mappings, which tells a get/put-layer implementor exactly
//! what the fallback costs on a given VIA implementation.

use via::{Descriptor, MemAttributes, MemHandle, Profile};

use crate::harness::{DtConfig, Pair};
use crate::report::{Figure, Series};

/// How the one-sided operation is realized on the VIA.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PutMapping {
    /// `put` = RDMA Write (needs provider support).
    RdmaWrite,
    /// `put` = send + pre-posted receive at the target ("active-message"
    /// emulation, the portable fallback).
    SendRecv,
}

/// Mean time (us) for one `put` of `size` bytes, including the initiator's
/// completion (so both mappings are compared at equal semantics).
pub fn put_latency(cfg: &DtConfig, mapping: PutMapping) -> f64 {
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None::<(u64, MemHandle)>));
    let s2 = slot.clone();
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, per_op) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            *s2.lock() = Some((buf, mh));
            match mapping {
                PutMapping::RdmaWrite => {
                    // True one-sided: the target does nothing per put. It
                    // just stays alive long enough (every put is acked at
                    // the data level only in reliable modes; here the
                    // initiator self-times with a trailing flush message,
                    // for which we post receives).
                    for _ in 0..total {
                        ep.vi.post_recv(ctx, Descriptor::recv()).unwrap();
                    }
                    ep.sync(ctx);
                    for _ in 0..total {
                        let c = ep.recv_one(ctx, cfg.wait);
                        assert!(c.is_ok());
                    }
                }
                PutMapping::SendRecv => {
                    // Emulation: a receive must be posted per put.
                    for _ in 0..(total.min(64)) {
                        ep.vi
                            .post_recv(
                                ctx,
                                Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                            )
                            .unwrap();
                    }
                    ep.sync(ctx);
                    for i in 0..total {
                        let c = ep.recv_one(ctx, cfg.wait);
                        assert!(c.is_ok());
                        if i + 64 < total {
                            ep.vi
                                .post_recv(
                                    ctx,
                                    Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                                )
                                .unwrap();
                        }
                    }
                }
            }
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let (rva, rmh) = slot.lock().expect("target published before barrier");
            let mut t0 = ctx.now();
            for i in 0..total {
                if i == cfg.warmup as u64 {
                    t0 = ctx.now();
                }
                let desc = match mapping {
                    PutMapping::RdmaWrite => Descriptor::rdma_write(rva, rmh)
                        .segment(buf, mh, cfg.msg_size as u32)
                        .immediate(i as u32),
                    PutMapping::SendRecv => {
                        Descriptor::send().segment(buf, mh, cfg.msg_size as u32)
                    }
                };
                ep.vi.post_send(ctx, desc).unwrap();
                let c = ep.vi.send_wait(ctx, cfg.wait);
                assert!(c.is_ok(), "{:?}", c.status);
            }
            (ctx.now() - t0).as_micros_f64() / cfg.iters as f64
        },
    );
    per_op
}

/// `get` latency (us) via RDMA Read (requires a profile with
/// `supports_rdma_read`), including the data's arrival in local memory.
pub fn get_latency(cfg: &DtConfig) -> f64 {
    assert!(
        cfg.profile.supports_rdma_read,
        "get/RDMA-read needs a profile with supports_rdma_read"
    );
    let pair = Pair::new(cfg);
    let total = (cfg.warmup + cfg.iters) as u64;
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None::<(u64, MemHandle)>));
    let s2 = slot.clone();
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, per_op) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(
                    ctx,
                    buf,
                    cfg.msg_size.max(1),
                    MemAttributes {
                        enable_rdma_write: false,
                        enable_rdma_read: true,
                    },
                )
                .unwrap();
            *s2.lock() = Some((buf, mh));
            ep.sync(ctx);
            // One-sided: the target's process is passive. Keep it parked
            // until the initiator finishes (a zero-byte send says "done").
            ep.vi.post_recv(ctx, Descriptor::recv()).unwrap();
            let c = ep.recv_one(ctx, cfg.wait);
            assert!(c.is_ok());
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let (rva, rmh) = slot.lock().expect("published");
            let mut t0 = ctx.now();
            for i in 0..total {
                if i == cfg.warmup as u64 {
                    t0 = ctx.now();
                }
                let desc = Descriptor::rdma_read(rva, rmh).segment(buf, mh, cfg.msg_size as u32);
                ep.vi.post_send(ctx, desc).unwrap();
                let c = ep.vi.send_wait(ctx, cfg.wait);
                assert!(c.is_ok(), "{:?}", c.status);
            }
            let per = (ctx.now() - t0).as_micros_f64() / cfg.iters as f64;
            ep.vi.post_send(ctx, Descriptor::send()).unwrap();
            ep.vi.send_wait(ctx, cfg.wait);
            per
        },
    );
    per_op
}

/// Put latency vs. size for both mappings (and `get` where supported).
pub fn getput_figure(profiles: &[Profile], sizes: &[u64]) -> Figure {
    let mut fig = Figure::new(
        "Get/Put model: one-sided operation latency",
        "bytes",
        "per-op latency (us)",
    );
    for p in profiles {
        if p.supports_rdma_write {
            let mut s = Series::new(format!("{} put/rdma", p.name));
            for &size in sizes {
                let cfg = DtConfig {
                    iters: 30,
                    ..DtConfig::base(p.clone(), size)
                };
                s.push(size as f64, put_latency(&cfg, PutMapping::RdmaWrite));
            }
            fig.push(s);
        }
        let mut s = Series::new(format!("{} put/sendrecv", p.name));
        for &size in sizes {
            let cfg = DtConfig {
                iters: 30,
                ..DtConfig::base(p.clone(), size)
            };
            s.push(size as f64, put_latency(&cfg, PutMapping::SendRecv));
        }
        fig.push(s);
        if p.supports_rdma_read {
            let mut s = Series::new(format!("{} get/rdma", p.name));
            for &size in sizes {
                let cfg = DtConfig {
                    iters: 30,
                    ..DtConfig::base(p.clone(), size)
                };
                s.push(size as f64, get_latency(&cfg));
            }
            fig.push(s);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_put_completes_locally_faster_than_emulation_waits() {
        // On an unreliable cLAN, an RDMA put's initiator-side completion is
        // local (wire hand-off) — same as a send — but the *target* does no
        // descriptor management. Rates should be close; the emulation must
        // not be faster.
        let cfg = DtConfig {
            iters: 20,
            ..DtConfig::base(Profile::clan(), 4096)
        };
        let rdma = put_latency(&cfg, PutMapping::RdmaWrite);
        let emul = put_latency(&cfg, PutMapping::SendRecv);
        assert!(rdma < emul * 1.3, "rdma {rdma} vs emulated {emul}");
    }

    #[test]
    fn get_round_trips_and_scales_with_size() {
        let mut p = Profile::custom();
        p.supports_rdma_read = true;
        let lat = |size| {
            let mut attrs_cfg = DtConfig {
                iters: 15,
                ..DtConfig::base(p.clone(), size)
            };
            attrs_cfg.profile = {
                let mut q = p.clone();
                q.supports_rdma_read = true;
                q
            };
            get_latency(&attrs_cfg)
        };
        let small = lat(64);
        let large = lat(16384);
        // A get is a request/response round trip: it must cost at least a
        // one-way latency more than nothing and grow with the payload.
        assert!(small > 10.0, "get 64B = {small}");
        assert!(large > small * 2.0, "get 16K = {large} vs 64B = {small}");
    }

    #[test]
    fn getput_figure_has_expected_series() {
        let fig = getput_figure(&[Profile::clan()], &[256]);
        assert!(fig.series("cLAN put/rdma").is_some());
        assert!(fig.series("cLAN put/sendrecv").is_some());
        assert!(
            fig.series("cLAN get/rdma").is_none(),
            "cLAN has no RDMA read"
        );
    }
}
