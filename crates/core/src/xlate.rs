//! Impact of virtual-to-physical address translation (§3.2.2): the base
//! tests with the buffer-reuse percentage swept. On an implementation
//! whose NIC translates out of host-resident tables through a software
//! cache (Berkeley VIA), lower reuse means more translation-cache misses
//! per message — and more so for large messages, which span several pages.
//! Reproduces Fig. 5.

use via::Profile;

use crate::harness::{bandwidth, paper_sizes, ping_pong, DtConfig};
use crate::report::{Figure, Series};

/// The reuse percentages Fig. 5 sweeps.
pub fn reuse_levels() -> Vec<u32> {
    vec![100, 75, 50, 25, 0]
}

/// Latency vs. message size, one series per reuse level.
pub fn reuse_latency_figure(profile: Profile, levels: &[u32]) -> Figure {
    let mut fig = Figure::new(
        format!("{}: latency vs buffer reuse (Fig 5)", profile.name),
        "bytes",
        "one-way latency (us)",
    );
    for &r in levels {
        let mut s = Series::new(format!("{r}% reuse"));
        for &size in &paper_sizes() {
            let cfg = DtConfig {
                iters: 60,
                warmup: 0, // warmup would prime the translation cache
                reuse_percent: r,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).latency_us);
        }
        fig.push(s);
    }
    fig
}

/// Bandwidth vs. message size, one series per reuse level.
pub fn reuse_bandwidth_figure(profile: Profile, levels: &[u32]) -> Figure {
    let mut fig = Figure::new(
        format!("{}: bandwidth vs buffer reuse (Fig 5)", profile.name),
        "bytes",
        "bandwidth (MB/s)",
    );
    for &r in levels {
        let mut s = Series::new(format!("{r}% reuse"));
        for &size in &paper_sizes() {
            let cfg = DtConfig {
                iters: 256,
                warmup: 0,
                reuse_percent: r,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, bandwidth(&cfg).mbps);
        }
        fig.push(s);
    }
    fig
}

/// Receiver CPU utilization (%) vs. message size per reuse level, with
/// blocking waits (the TR companion panel; with polling every point is
/// 100%). More translation misses mean longer NIC phases, so the host
/// spends a *smaller* fraction of each transfer busy.
pub fn reuse_cpu_figure(profile: Profile, levels: &[u32]) -> Figure {
    let mut fig = Figure::new(
        format!("{}: CPU utilization vs buffer reuse (TR)", profile.name),
        "bytes",
        "CPU utilization (%)",
    );
    for &r in levels {
        let mut s = Series::new(format!("{r}% reuse"));
        for &size in &paper_sizes() {
            let cfg = DtConfig {
                iters: 30,
                warmup: 0,
                reuse_percent: r,
                wait: simkit::WaitMode::Block,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).client_util * 100.0);
        }
        fig.push(s);
    }
    fig
}

/// §4.3.2's sensitivity numbers at `size` bytes: the added one-way latency
/// (us) and the ratio between 0% and 100% reuse.
pub fn reuse_sensitivity(profile: Profile, size: u64) -> (f64, f64) {
    let lat = |r| {
        let cfg = DtConfig {
            iters: 60,
            warmup: 0,
            reuse_percent: r,
            ..DtConfig::base(profile.clone(), size)
        };
        ping_pong(&cfg).latency_us
    };
    let (l0, l100) = (lat(0), lat(100));
    (l0 - l100, l0 / l100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bvia_latency_degrades_as_reuse_drops() {
        // §4.3.2: "changing the send and receive buffers has a significant
        // effect on the latency of messages for BVIA."
        let fig = reuse_latency_figure(Profile::bvia(), &[100, 50, 0]);
        let full = fig.series("100% reuse").unwrap();
        let half = fig.series("50% reuse").unwrap();
        let none = fig.series("0% reuse").unwrap();
        for &size in &[4096.0, 28672.0] {
            let (f, h, n) = (
                full.at(size).unwrap(),
                half.at(size).unwrap(),
                none.at(size).unwrap(),
            );
            assert!(n > h && h > f, "at {size}: 0%={n} 50%={h} 100%={f}");
        }
    }

    #[test]
    fn bvia_effect_grows_with_message_size() {
        // §4.3.2: "The impact of address translation is more severe for
        // large messages because each message gets mapped to several pages"
        // — i.e. the *added microseconds* grow with the page count.
        let (small_us, small_ratio) = reuse_sensitivity(Profile::bvia(), 64);
        let (large_us, _) = reuse_sensitivity(Profile::bvia(), 28672);
        assert!(
            large_us > small_us * 3.0,
            "added latency must grow with size: small {small_us} us, large {large_us} us"
        );
        assert!(
            small_ratio > 1.10,
            "even 1-page messages must feel it: {small_ratio}"
        );
        assert!(
            large_us > 30.0,
            "7-page messages must lose tens of us: {large_us}"
        );
    }

    #[test]
    fn mvia_and_clan_are_reuse_insensitive() {
        // §4.3.2: "the results for M-VIA and cLAN do not change
        // significantly with the percentage of buffer reuse."
        for p in [Profile::mvia(), Profile::clan()] {
            let (_, ratio) = reuse_sensitivity(p.clone(), 28672);
            assert!(
                (0.98..1.02).contains(&ratio),
                "{} sensitivity {ratio} should be ~1.0",
                p.name
            );
        }
    }

    #[test]
    fn cpu_utilization_drops_with_fresh_buffers_when_blocking() {
        // Misses stretch the NIC phase of each transfer; the blocked host
        // idles through it, so utilization at 0% reuse is lower.
        let fig = reuse_cpu_figure(Profile::bvia(), &[100, 0]);
        let u100 = fig.series("100% reuse").unwrap().at(28672.0).unwrap();
        let u0 = fig.series("0% reuse").unwrap().at(28672.0).unwrap();
        assert!(u0 < u100, "0% reuse util {u0} !< 100% reuse util {u100}");
    }

    #[test]
    fn bvia_bandwidth_also_degrades() {
        // §4.3.2: "the percentage of buffer reuse also has a significant
        // effect on the bandwidth."
        let fig = reuse_bandwidth_figure(Profile::bvia(), &[100, 0]);
        let full = fig.series("100% reuse").unwrap().at(28672.0).unwrap();
        let none = fig.series("0% reuse").unwrap().at(28672.0).unwrap();
        assert!(none < full, "0% reuse bw {none} !< 100% reuse bw {full}");
    }
}
