//! Base data-transfer micro-benchmarks (§3.2.1): latency, bandwidth, and
//! CPU utilization under the base setup — 100% buffer reuse, one data
//! segment, no CQ, one VI connection — in polling and blocking variants.
//! Reproduces Figs. 3 and 4.

use simkit::WaitMode;
use via::Profile;

use crate::harness::{bandwidth, paper_sizes, ping_pong, DtConfig};
use crate::report::{Figure, Series};

/// Iteration count for a latency point (deterministic sim: modest counts).
pub const LAT_ITERS: u32 = 30;
/// Message count for a bandwidth point at message size `size`.
pub fn bw_iters(size: u64) -> u32 {
    // Enough bytes to amortize the trailing application-level ACK
    // (the paper keeps "the time for transmission of the acknowledgment
    // … negligible in comparison with the total time").
    ((4 << 20) / size.max(1)).clamp(64, 2048) as u32
}

/// Base one-way latency (us) vs. message size, per profile.
pub fn latency_figure(profiles: &[Profile], mode: WaitMode) -> Figure {
    latency_figure_sized(profiles, mode, &paper_sizes())
}

/// [`latency_figure`] over an explicit size list — the per-sweep-point
/// unit the parallel suite planner fans out (a `&[p]`/`&[size]` call
/// yields one single-point series slice).
pub fn latency_figure_sized(profiles: &[Profile], mode: WaitMode, sizes: &[u64]) -> Figure {
    let label = match mode {
        WaitMode::Poll => "polling",
        WaitMode::Block => "blocking",
    };
    let mut fig = Figure::new(
        format!(
            "Base latency with {label} (Fig {})",
            if mode == WaitMode::Poll { 3 } else { 4 }
        ),
        "bytes",
        "one-way latency (us)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &size in sizes {
            let cfg = DtConfig {
                iters: LAT_ITERS,
                wait: mode,
                ..DtConfig::base(p.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).latency_us);
        }
        fig.push(s);
    }
    fig
}

/// Base bandwidth (MB/s) vs. message size, per profile.
pub fn bandwidth_figure(profiles: &[Profile], mode: WaitMode) -> Figure {
    bandwidth_figure_sized(profiles, mode, &paper_sizes())
}

/// [`bandwidth_figure`] over an explicit size list (see
/// [`latency_figure_sized`]).
pub fn bandwidth_figure_sized(profiles: &[Profile], mode: WaitMode, sizes: &[u64]) -> Figure {
    let label = match mode {
        WaitMode::Poll => "polling",
        WaitMode::Block => "blocking",
    };
    let mut fig = Figure::new(
        format!("Base bandwidth with {label} (Fig 3)"),
        "bytes",
        "bandwidth (MB/s)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &size in sizes {
            let cfg = DtConfig {
                iters: bw_iters(size),
                wait: mode,
                ..DtConfig::base(p.clone(), size)
            };
            s.push(size as f64, bandwidth(&cfg).mbps);
        }
        fig.push(s);
    }
    fig
}

/// Receiver-side CPU utilization (%) vs. message size, per profile
/// (Fig 4's right panel; with polling every profile pegs at 100%).
pub fn cpu_figure(profiles: &[Profile], mode: WaitMode) -> Figure {
    cpu_figure_sized(profiles, mode, &paper_sizes())
}

/// [`cpu_figure`] over an explicit size list (see
/// [`latency_figure_sized`]).
pub fn cpu_figure_sized(profiles: &[Profile], mode: WaitMode, sizes: &[u64]) -> Figure {
    let label = match mode {
        WaitMode::Poll => "polling",
        WaitMode::Block => "blocking",
    };
    let mut fig = Figure::new(
        format!("Base CPU utilization with {label} (Fig 4)"),
        "bytes",
        "CPU utilization (%)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &size in sizes {
            let cfg = DtConfig {
                iters: LAT_ITERS,
                wait: mode,
                ..DtConfig::base(p.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).client_util * 100.0);
        }
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(profile: Profile, size: u64, mode: WaitMode) -> f64 {
        let cfg = DtConfig {
            iters: 20,
            wait: mode,
            ..DtConfig::base(profile, size)
        };
        ping_pong(&cfg).latency_us
    }

    fn bw(profile: Profile, size: u64) -> f64 {
        let cfg = DtConfig {
            iters: bw_iters(size).min(256),
            ..DtConfig::base(profile, size)
        };
        bandwidth(&cfg).mbps
    }

    #[test]
    fn clan_has_lowest_small_message_latency() {
        // §4.3.1: "cLAN provides the lowest latency."
        let c = lat(Profile::clan(), 4, WaitMode::Poll);
        let m = lat(Profile::mvia(), 4, WaitMode::Poll);
        let b = lat(Profile::bvia(), 4, WaitMode::Poll);
        assert!(c < m, "cLAN {c} !< M-VIA {m}");
        assert!(c < b, "cLAN {c} !< BVIA {b}");
    }

    #[test]
    fn mvia_beats_bvia_short_bvia_beats_mvia_long() {
        // §4.3.1: "M-VIA has a lower latency for short messages. BVIA
        // outperforms M-VIA for longer messages."
        let m4 = lat(Profile::mvia(), 4, WaitMode::Poll);
        let b4 = lat(Profile::bvia(), 4, WaitMode::Poll);
        assert!(m4 < b4, "short: M-VIA {m4} !< BVIA {b4}");
        let m28 = lat(Profile::mvia(), 28672, WaitMode::Poll);
        let b28 = lat(Profile::bvia(), 28672, WaitMode::Poll);
        assert!(b28 < m28, "long: BVIA {b28} !< M-VIA {m28}");
    }

    #[test]
    fn bandwidth_shape_matches_fig3() {
        // §4.3.1: cLAN superior over a large range; BVIA best for large.
        let (c1, m1, b1) = (
            bw(Profile::clan(), 1024),
            bw(Profile::mvia(), 1024),
            bw(Profile::bvia(), 1024),
        );
        assert!(
            c1 > m1 && c1 > b1,
            "mid-size: cLAN {c1} vs M-VIA {m1}, BVIA {b1}"
        );
        let (c28, m28, b28) = (
            bw(Profile::clan(), 28672),
            bw(Profile::mvia(), 28672),
            bw(Profile::bvia(), 28672),
        );
        assert!(b28 > c28, "large: BVIA {b28} !> cLAN {c28}");
        assert!(
            b28 > m28 && c28 > m28,
            "M-VIA must trail for large messages"
        );
    }

    #[test]
    fn blocking_latency_exceeds_polling_everywhere() {
        for p in Profile::paper_trio() {
            let poll = lat(p.clone(), 256, WaitMode::Poll);
            let block = lat(p, 256, WaitMode::Block);
            assert!(
                block > poll + 5.0,
                "blocking {block} must clearly exceed polling {poll}"
            );
        }
    }

    #[test]
    fn blocking_cpu_utilization_below_polling() {
        let mk = |mode| DtConfig {
            iters: 16,
            wait: mode,
            ..DtConfig::base(Profile::bvia(), 4096)
        };
        let poll = ping_pong(&mk(WaitMode::Poll));
        let block = ping_pong(&mk(WaitMode::Block));
        assert!(poll.client_util > 0.99, "polling pegs the CPU");
        assert!(block.client_util < 0.9, "blocking must idle the CPU");
    }

    #[test]
    fn mvia_blocking_cpu_higher_for_small_messages() {
        // §4.3.1: "Since M-VIA emulates VIA in the host operating system,
        // it has a higher CPU utilization for small messages."
        let mk = |p| DtConfig {
            iters: 16,
            wait: WaitMode::Block,
            ..DtConfig::base(p, 16)
        };
        let m = ping_pong(&mk(Profile::mvia()));
        let c = ping_pong(&mk(Profile::clan()));
        assert!(
            m.client_util > c.client_util,
            "M-VIA {} !> cLAN {}",
            m.client_util,
            c.client_util
        );
    }
}
