//! Distributed-shared-memory benchmark (the paper's §5 names the DSM
//! model; its authors' own reference \[7\] — TreadMarks over VIA on Myrinet
//! and Gigabit Ethernet — is precisely this study): what does a page
//! fault cost on each VIA implementation, and how fast can ownership of a
//! hot page bounce between two ranks?

use dsm::{run_world, Dsm, DsmConfig, PAGE_SIZE};
use simkit::Sim;
use via::Profile;

use crate::report::{Figure, Series, Table};

/// Mean time (us) for one page-ownership round trip: two ranks alternately
/// write the same page, so every access migrates it (the DSM analogue of
/// the latency ping-pong).
pub fn page_pingpong_us(profile: Profile, rounds: u64, seed: u64) -> f64 {
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        profile,
        2,
        DsmConfig::default(),
        seed,
        move |ctx, dsm| {
            // Strict alternation through a turn word on the hot page:
            // rank r writes when counter % 2 == r.
            let me = dsm.rank() as u64;
            loop {
                let mut advanced = false;
                let mut done = false;
                dsm.update(ctx, 0, 8, |bytes| {
                    let v = u64::from_le_bytes(bytes.try_into().unwrap());
                    if v >= 2 * rounds {
                        done = true;
                    } else if v % 2 == me {
                        bytes.copy_from_slice(&(v + 1).to_le_bytes());
                        advanced = true;
                    }
                });
                if done {
                    break;
                }
                if !advanced {
                    // Not our turn yet: the page will bounce back.
                    ctx.sleep(simkit::SimDuration::from_micros(5));
                }
            }
            (ctx.now(), dsm.stats())
        },
    );
    run_world(&sim);
    let (end0, s0) = handles[0].expect_result();
    let (_, s1) = handles[1].expect_result();
    let total_migrations = s0.pages_shipped + s1.pages_shipped;
    // Time per migration over the whole run (start-up amortized away by
    // the round count).
    end0.as_micros_f64() / total_migrations.max(1) as f64
}

/// Page-migration cost per profile.
pub fn migration_table(profiles: &[Profile]) -> Table {
    let mut t = Table::new(
        "DSM: hot-page migration cost (us per ownership transfer)",
        vec!["us/migration".to_string()],
    );
    for p in profiles {
        t.push(p.name, vec![page_pingpong_us(p.clone(), 40, 7)]);
    }
    t
}

/// False sharing: two ranks write *disjoint words* that share one page vs.
/// words on separate pages — the page-granularity penalty every DSM paper
/// warns about, measured on the simulated stack.
pub fn false_sharing_figure(profile: Profile) -> Figure {
    let mut fig = Figure::new(
        format!("DSM: false sharing on {} (50 writes/rank)", profile.name),
        "layout (0 = same page, 1 = separate pages)",
        "elapsed (us)",
    );
    let mut s = Series::new(profile.name);
    for (x, separate) in [(0.0, false), (1.0, true)] {
        let sim = Sim::new();
        let handles = Dsm::spawn_world(
            &sim,
            profile.clone(),
            2,
            DsmConfig::default(),
            9,
            move |ctx, dsm| {
                let addr = if separate {
                    dsm.rank() as u64 * PAGE_SIZE
                } else {
                    dsm.rank() as u64 * 64 // both words on page 0
                };
                let t0 = ctx.now();
                for i in 0..50u64 {
                    dsm.write(ctx, addr, &i.to_le_bytes());
                    // A little think time between writes so the two ranks
                    // genuinely interleave (same pause in both layouts).
                    ctx.sleep(simkit::SimDuration::from_micros(10));
                }
                (ctx.now() - t0).as_micros_f64()
            },
        );
        run_world(&sim);
        let worst = handles
            .into_iter()
            .map(|h| h.expect_result())
            .fold(0.0f64, f64::max);
        s.push(x, worst);
    }
    fig.push(s);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_cost_orders_like_base_latency() {
        // A page migration is a request + a 4 KiB page transfer: the
        // profiles must order the same way the base benchmarks do.
        let t = migration_table(&Profile::paper_trio());
        let m = t.cell("M-VIA", "us/migration").unwrap();
        let b = t.cell("BVIA", "us/migration").unwrap();
        let c = t.cell("cLAN", "us/migration").unwrap();
        assert!(c < b && c < m, "cLAN must migrate fastest: {c} vs {b}/{m}");
        for v in [m, b, c] {
            assert!((50.0..5_000.0).contains(&v), "implausible cost {v}");
        }
    }

    #[test]
    fn false_sharing_costs_orders_of_magnitude() {
        let fig = false_sharing_figure(Profile::clan());
        let s = &fig.series[0];
        let same = s.at(0.0).unwrap();
        let separate = s.at(1.0).unwrap();
        assert!(
            same > separate * 3.0,
            "false sharing must dominate: same-page {same} vs separate {separate}"
        );
    }
}
