//! Scheduler event profile (extension X-SCHED): the simulator's own
//! per-class event ledger, surfaced as suite artifacts. Where every other
//! experiment reports what the modeled hardware did, this one reports what
//! the *scheduler* did to make it happen — how many events of each
//! [`EventClass`] fired, how many timers were cancelled before firing, and
//! how many cancelled entries the lazy reaper drained from the heap.
//!
//! The interesting invariant is the retransmission-timer ledger: on a
//! loss-free Reliable Delivery stream every timer the transport arms must
//! be *cancelled* by its ACK, never fired, so the "fired" column is an
//! alarm that goes off if dead timers ever leak back into the queue.

use simkit::{EventClass, SchedStats};
use via::{Profile, Reliability};

use crate::harness::{DtConfig, Pair};
use crate::report::Table;

/// Stream `msgs` reliable messages across a two-node pair and return the
/// scheduler ledger plus the client provider's stats.
fn run_stream(mut profile: Profile, loss: f64, msgs: u32) -> (SchedStats, via::ProviderStats) {
    profile.net = profile.net.with_loss(loss);
    if loss > 0.0 {
        // Enough retry budget that the stream always completes.
        profile.data.max_retries = 400;
    }
    let mut cfg = DtConfig::base(profile, 1024);
    cfg.reliability = Reliability::ReliableDelivery;
    let pair = Pair::new(&cfg);
    let sim = pair.sim().clone();
    let (_, stats) = pair.run(
        move |ctx, ep| {
            let buf = ep.provider.malloc(2048);
            let mh = ep
                .provider
                .register_mem(ctx, buf, 2048, Default::default())
                .unwrap();
            for _ in 0..msgs {
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, buf, mh, 1024, 1))
                    .unwrap();
            }
            ep.sync(ctx);
            for _ in 0..msgs {
                let c = ep.vi.recv_wait(ctx, simkit::WaitMode::Block);
                assert!(c.is_ok(), "{:?}", c.status);
            }
        },
        move |ctx, ep| {
            let buf = ep.provider.malloc(2048);
            let mh = ep
                .provider
                .register_mem(ctx, buf, 2048, Default::default())
                .unwrap();
            ep.sync(ctx);
            for _ in 0..msgs {
                ep.vi
                    .post_send(ctx, ep.split_desc(false, buf, mh, 1024, 1))
                    .unwrap();
                let c = ep.vi.send_wait(ctx, simkit::WaitMode::Block);
                assert!(c.is_ok(), "{:?}", c.status);
            }
            ep.provider.stats()
        },
    );
    (sim.sched_stats(), stats)
}

/// Per-[`EventClass`] fired / cancelled / dead-popped counts for a
/// loss-free `msgs`-message reliable stream on `profile`.
pub fn class_table(profile: Profile, msgs: u32) -> Table {
    let name = profile.name;
    let (sched, _) = run_stream(profile, 0.0, msgs);
    let mut t = Table::new(
        format!("Scheduler event classes: {msgs}-msg reliable stream, {name}, zero loss"),
        vec![
            "fired".to_string(),
            "cancelled".to_string(),
            "dead popped".to_string(),
        ],
    );
    for class in EventClass::ALL {
        let tally = sched.class(class);
        t.push(
            class.name(),
            vec![
                tally.fired as f64,
                tally.cancelled as f64,
                tally.dead_popped as f64,
            ],
        );
    }
    t.push(
        "total",
        vec![
            sched.fired as f64,
            sched.cancelled as f64,
            sched.dead_popped as f64,
        ],
    );
    t
}

/// Retransmission-timer ledger per profile and loss rate: timers armed,
/// timers cancelled by their ACK, timers that expired (armed − cancelled,
/// each one a retransmission trigger). At zero loss the fired column must
/// be all zeros. Profiles that do not implement Reliable Delivery (BVIA)
/// are skipped, as in the paper's X-REL treatment.
pub fn retx_timer_table(profiles: &[Profile], losses: &[f64], msgs: u32) -> Table {
    let mut t = Table::new(
        format!("Retransmit timers: {msgs}-msg reliable stream"),
        vec![
            "armed".to_string(),
            "cancelled".to_string(),
            "fired".to_string(),
        ],
    );
    for p in profiles {
        if !p.supports_reliability(Reliability::ReliableDelivery) {
            continue;
        }
        for &loss in losses {
            let (_, stats) = run_stream(p.clone(), loss, msgs);
            t.push(
                format!("{} loss={:.0}%", p.name, loss * 100.0),
                vec![
                    stats.retx_timers_armed as f64,
                    stats.retx_timers_cancelled as f64,
                    (stats.retx_timers_armed - stats.retx_timers_cancelled) as f64,
                ],
            );
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_cancels_all_retx_timers() {
        let t = retx_timer_table(&[Profile::clan()], &[0.0], 32);
        let row = "cLAN loss=0%";
        assert_eq!(t.cell(row, "armed"), Some(32.0));
        assert_eq!(t.cell(row, "fired"), Some(0.0));
        assert_eq!(t.cell(row, "cancelled"), Some(32.0));
    }

    #[test]
    fn loss_makes_some_timers_fire() {
        let t = retx_timer_table(&[Profile::clan()], &[0.10], 32);
        let fired = t.cell("cLAN loss=10%", "fired").unwrap();
        assert!(fired > 0.0, "10% loss must expire some retransmit timers");
    }

    #[test]
    fn class_table_is_consistent() {
        let t = class_table(Profile::clan(), 32);
        // The per-class rows must sum to the total row.
        for col in ["fired", "cancelled", "dead popped"] {
            let total = t.cell("total", col).unwrap();
            let sum: f64 = EventClass::ALL
                .iter()
                .map(|c| t.cell(c.name(), col).unwrap())
                .sum();
            assert_eq!(sum, total, "column {col}");
        }
        // A reliable stream exercises every part of the stack.
        assert!(t.cell("retransmit", "cancelled").unwrap() > 0.0);
        assert!(t.cell("firmware", "fired").unwrap() > 0.0);
        assert!(t.cell("completion", "fired").unwrap() > 0.0);
    }
}
