//! Scalability micro-benchmark (extension): the paper's introduction names
//! "scalability studies" as a reason higher-layer developers need VIBe —
//! how many VI connections can one node serve, and what happens to
//! per-connection performance as the fan-in grows? This module measures an
//! N-client fan-in into one server: aggregate delivered bandwidth,
//! per-client fairness, and the server CPU cost per message.

use fabric::NodeId;
use simkit::{CpuMeter, Sim, SimBarrier, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, QueueKind, ViAttributes};

use crate::report::{Figure, Series};

/// Result of one fan-in run.
#[derive(Clone, Debug)]
pub struct FanInResult {
    /// Number of clients.
    pub clients: usize,
    /// Aggregate delivered bandwidth at the server, MB/s.
    pub aggregate_mbps: f64,
    /// min/max per-client bandwidth ratio in `[0,1]` (1 = perfectly fair).
    pub fairness: f64,
    /// Server CPU busy time per delivered message, microseconds.
    pub server_us_per_msg: f64,
}

/// Run `clients` senders, each streaming `msgs` messages of `size` bytes
/// into one server that drains every connection through a single CQ.
pub fn fan_in(profile: Profile, clients: usize, size: u64, msgs: u64, seed: u64) -> FanInResult {
    assert!(clients >= 1);
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile, clients + 1, seed);
    let server = cluster.provider(0);
    let start = SimBarrier::new(clients + 1);
    let window: u64 = 16; // receive window per connection
    let burst = window / 2; // credit quantum (application flow control)

    let server_task = {
        let server = server.clone();
        let start = start.clone();
        sim.spawn("server", Some(server.cpu()), move |ctx| {
            let cq = server.create_cq(ctx, 4096).expect("cq");
            let mut conns = Vec::new();
            for c in 0..clients {
                let vi = server
                    .create_vi(ctx, ViAttributes::default(), None, Some(&cq))
                    .unwrap();
                let buf = server.malloc(size.max(1));
                let mh = server
                    .register_mem(ctx, buf, size.max(1), MemAttributes::default())
                    .unwrap();
                let ack = server.malloc(16);
                let ack_mh = server
                    .register_mem(ctx, ack, 16, MemAttributes::default())
                    .unwrap();
                for _ in 0..window.min(msgs) {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, size as u32))
                        .unwrap();
                }
                server.accept(ctx, &vi, Discriminator(c as u64)).unwrap();
                conns.push((vi, buf, mh, ack, ack_mh, 0u64));
            }
            start.wait(ctx);
            let t0 = ctx.now();
            let meter = CpuMeter::start(ctx.sim(), server.cpu());
            let total = clients as u64 * msgs;
            let mut done = 0u64;
            while done < total {
                let (vi_id, kind) = cq.wait(ctx, WaitMode::Poll);
                if kind != QueueKind::Recv {
                    continue; // completions of our credit sends
                }
                let slot = conns
                    .iter_mut()
                    .find(|(vi, ..)| vi.id() == vi_id)
                    .expect("known VI");
                let (vi, buf, mh, ack, ack_mh, received) = slot;
                let comp = vi.recv_done(ctx).expect("cq signaled");
                assert!(comp.is_ok());
                *received += 1;
                done += 1;
                let next = *received + window;
                if next <= msgs {
                    vi.post_recv(ctx, Descriptor::recv().segment(*buf, *mh, size as u32))
                        .unwrap();
                }
                if *received % burst == 0 || *received == msgs {
                    // Credit / final ack for this connection.
                    vi.post_send(ctx, Descriptor::send().segment(*ack, *ack_mh, 4))
                        .unwrap();
                }
            }
            let elapsed = ctx.now() - t0;
            let usage = meter.stop(ctx.sim());
            // CQ overflow is attributed to the owning VI; the shared-CQ
            // fan-in is the densest CQ consumer in the suite, so pin the
            // per-VI ledger against the provider aggregate here.
            let per_vi: u64 = conns.iter().map(|(vi, ..)| vi.cq_overflows()).sum();
            assert_eq!(
                per_vi,
                server.stats().cq_overflows,
                "per-VI CQ overflow attribution must sum to the provider total"
            );
            (
                simkit::megabytes_per_second(size * total, elapsed),
                usage.busy.as_micros_f64() / total as f64,
            )
        })
    };

    let mut client_tasks = Vec::new();
    for c in 0..clients {
        let p = cluster.provider(c + 1);
        let start = start.clone();
        client_tasks.push(sim.spawn(format!("client{c}"), Some(p.cpu()), move |ctx| {
            let vi = p
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = p.malloc(size.max(1));
            let mh = p
                .register_mem(ctx, buf, size.max(1), MemAttributes::default())
                .unwrap();
            let ack = p.malloc(16);
            let ack_mh = p
                .register_mem(ctx, ack, 16, MemAttributes::default())
                .unwrap();
            p.connect(ctx, &vi, NodeId(0), Discriminator(c as u64), None)
                .unwrap();
            for _ in 0..4u64.min(msgs / burst + 1) {
                vi.post_recv(ctx, Descriptor::recv().segment(ack, ack_mh, 16))
                    .unwrap();
            }
            start.wait(ctx);
            let t0 = ctx.now();
            let mut allowance = 2 * burst.min(msgs.max(1));
            let mut credits = 0u64;
            let credits_total = msgs.div_ceil(burst);
            for i in 0..msgs {
                if i % 4 == 0 {
                    while let Some(cmp) = vi.recv_done(ctx) {
                        assert!(cmp.is_ok());
                        credits += 1;
                        allowance += burst;
                        vi.post_recv(ctx, Descriptor::recv().segment(ack, ack_mh, 16))
                            .unwrap();
                    }
                }
                if i >= allowance {
                    let cmp = vi.recv_wait(ctx, WaitMode::Poll);
                    assert!(cmp.is_ok());
                    credits += 1;
                    allowance += burst;
                    vi.post_recv(ctx, Descriptor::recv().segment(ack, ack_mh, 16))
                        .unwrap();
                }
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                    .unwrap();
                let cmp = vi.send_wait(ctx, WaitMode::Poll);
                assert!(cmp.is_ok());
            }
            // Drain the remaining credits (the last is the final ack).
            while credits < credits_total {
                let cmp = vi.recv_wait(ctx, WaitMode::Poll);
                assert!(cmp.is_ok());
                credits += 1;
            }
            let elapsed = ctx.now() - t0;
            simkit::megabytes_per_second(size * msgs, elapsed)
        }));
    }

    sim.run_to_completion();
    let (aggregate_mbps, server_us_per_msg) = server_task.expect_result();
    let per_client: Vec<f64> = client_tasks
        .into_iter()
        .map(|t| t.expect_result())
        .collect();
    let (min, max) = per_client
        .iter()
        .fold((f64::MAX, 0.0f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    FanInResult {
        clients,
        aggregate_mbps,
        fairness: if max > 0.0 { min / max } else { 0.0 },
        server_us_per_msg,
    }
}

/// Aggregate fan-in bandwidth vs. client count, per profile.
pub fn fan_in_figure(profiles: &[Profile], counts: &[usize], size: u64) -> Figure {
    let mut fig = Figure::new(
        format!("Scalability: fan-in aggregate bandwidth ({size} B messages)"),
        "clients",
        "aggregate bandwidth (MB/s)",
    );
    for p in profiles {
        let mut s = Series::new(p.name);
        for &n in counts {
            let r = fan_in(p.clone(), n, size, 150, 0xFA + n as u64);
            s.push(n as f64, r.aggregate_mbps);
        }
        fig.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_aggregate_exceeds_single_client() {
        let one = fan_in(Profile::clan(), 1, 4096, 120, 1);
        let four = fan_in(Profile::clan(), 4, 4096, 120, 1);
        assert!(
            four.aggregate_mbps > one.aggregate_mbps * 0.9,
            "4-client aggregate {} should not collapse below 1-client {}",
            four.aggregate_mbps,
            one.aggregate_mbps
        );
        // The server's downlink/CPU is shared: per-client rate must drop.
        assert!(four.aggregate_mbps < one.aggregate_mbps * 4.0);
    }

    #[test]
    fn fan_in_is_fair() {
        let r = fan_in(Profile::clan(), 4, 4096, 120, 2);
        assert!(
            r.fairness > 0.7,
            "clients should share within ~30%: fairness {}",
            r.fairness
        );
    }

    #[test]
    fn server_cost_per_message_is_stable() {
        let a = fan_in(Profile::clan(), 2, 1024, 120, 3);
        let b = fan_in(Profile::clan(), 8, 1024, 120, 3);
        // Per-message server work must not blow up with fan-in (the CQ is
        // exactly the mechanism that keeps it O(1) per message).
        assert!(
            b.server_us_per_msg < a.server_us_per_msg * 2.0,
            "2 clients: {} us/msg, 8 clients: {} us/msg",
            a.server_us_per_msg,
            b.server_us_per_msg
        );
    }

    #[test]
    fn bvia_firmware_scan_hurts_fanin_on_the_server_side() {
        // The server's NIC sends credits; with more VIs open its firmware
        // scans more per dispatch. BVIA aggregate should grow less than
        // cLAN's when going 1 -> 8 clients at small sizes.
        let b1 = fan_in(Profile::bvia(), 1, 256, 100, 4);
        let b8 = fan_in(Profile::bvia(), 8, 256, 100, 4);
        let c1 = fan_in(Profile::clan(), 1, 256, 100, 4);
        let c8 = fan_in(Profile::clan(), 8, 256, 100, 4);
        let bvia_scaling = b8.aggregate_mbps / b1.aggregate_mbps;
        let clan_scaling = c8.aggregate_mbps / c1.aggregate_mbps;
        assert!(
            clan_scaling > bvia_scaling,
            "cLAN x{clan_scaling:.2} should out-scale BVIA x{bvia_scaling:.2}"
        );
    }
}
