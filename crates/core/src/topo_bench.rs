//! Multi-switch scale-out benchmarks (extension X-TOPO).
//!
//! Drives 64-node clusters over `fabric::topo` shapes — the 2-level
//! fat-tree is the headline — through three workloads:
//!
//! * **Connection storm**: 32 concurrent cross-fabric client/server
//!   pairs connect and stream, once over the degenerate star (the legacy
//!   single-switch fabric) and once over the fat-tree. The star row is
//!   the control: same workload, no trunks, no switch buffers.
//! * **16-to-1 incast**: sixteen pipelined senders spread over seven
//!   edge switches converge on one receiver whose host port has tight
//!   buffer limits, so the run exercises pause queues, head-of-line
//!   blocking, and honest port drops (Reliable Delivery retransmits
//!   recover every drop). A victim flow crossing the congested
//!   spine→edge trunks and an intra-edge probe flow measure collateral
//!   damage vs. an unaffected baseline.
//! * **All-to-all**: every node sends one message to every other node
//!   (64 × 63 ordered pairs), aggregated per edge switch to show
//!   fabric-wide balance.
//!
//! Every artifact cell is virtual-time-derived or a deterministic port
//! counter, so the tables are byte-identical at any `VIBE_SHARDS` /
//! `VIBE_JOBS` value — CI's golden matrix pins that. Each run ends with
//! the conservation oracles: frames sent = delivered + per-port
//! attributed drops (+ loss/fault/corruption buckets, all zero here),
//! Σ per-port `drops` = the fabric's `frames_port_dropped`, and
//! [`via::Provider::audit`] clean on every node (credits conserved per
//! VI). Shard-balance telemetry flows into X-PAR via
//! [`crate::runner::record_shard_run`] under `topo-*` labels.

use fabric::{LinkParams, NodeId, PortLimits, PortSnapshot, PortTarget, SanStats, Topology};
use simkit::{ShardedSim, Sim, SimDuration, SimTime, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, Reliability, ViAttributes};

use crate::report::Table;
use crate::runner::{default_shards, record_shard_run, ShardRunRecord};

/// Edge switches in the fat-tree.
pub const EDGES: usize = 8;
/// Hosts per edge switch (EDGES * HOSTS_PER_EDGE = 64 nodes).
pub const HOSTS_PER_EDGE: usize = 8;
/// Spine switches (each edge uplinks to every spine).
pub const SPINES: usize = 4;
/// Base seed for the X-TOPO runs.
pub const TOPO_SEED: u64 = 0x70B0;

/// The trunk link between switch tiers: 4x the host line rate, a longer
/// cable run. MTU matches the access links (the fabric forwards frames
/// whole, never re-fragments).
fn trunk() -> LinkParams {
    LinkParams {
        bandwidth_bps: 440_000_000,
        propagation: SimDuration::from_nanos(600),
        frame_overhead_bytes: 8,
        mtu: 64 * 1024,
    }
}

/// The 64-node, 2-level fat-tree every X-TOPO workload runs over.
pub fn fat_tree64(limits: PortLimits) -> Topology {
    Topology::fat_tree(EDGES, HOSTS_PER_EDGE, SPINES, trunk(), limits)
}

/// Reliable Delivery VI attributes — retransmission recovers any frame a
/// full switch port drops, so every workload runs to completion and the
/// conservation oracles can demand zero stranded descriptors.
fn rd() -> ViAttributes {
    ViAttributes {
        reliability: Reliability::ReliableDelivery,
        ..ViAttributes::default()
    }
}

/// Engine scaffolding shared by the workloads: a serial [`Sim`] at one
/// shard, a [`ShardedSim`] on the topology's own shard map and
/// per-link-pair lookahead otherwise.
pub(crate) struct Rig {
    pub(crate) cluster: Cluster,
    engine: Option<ShardedSim>,
    serial: Option<Sim>,
    label: String,
}

impl Rig {
    pub(crate) fn new(topo: Topology, seed: u64, shards: usize, label: impl Into<String>) -> Rig {
        Rig::new_with_profile(topo, Profile::clan(), seed, shards, label)
    }

    /// Like [`Rig::new`] but with an explicit profile — X-CRASH runs the
    /// cLAN profile with the heartbeat watchdog enabled.
    pub(crate) fn new_with_profile(
        topo: Topology,
        profile: Profile,
        seed: u64,
        shards: usize,
        label: impl Into<String>,
    ) -> Rig {
        if shards > 1 {
            let engine = ShardedSim::new_with_map(
                topo.shard_map(shards),
                topo.shard_lookahead(&profile.net),
            );
            let cluster = Cluster::new_sharded_topo(&engine, profile, topo, seed);
            Rig {
                cluster,
                engine: Some(engine),
                serial: None,
                label: label.into(),
            }
        } else {
            let sim = Sim::new();
            let cluster = Cluster::new_topo(sim.clone(), profile, topo, seed);
            Rig {
                cluster,
                engine: None,
                serial: Some(sim),
                label: label.into(),
            }
        }
    }

    /// Run to completion, record the shard-balance row, check the
    /// conservation oracles.
    pub(crate) fn run(&self) {
        match (&self.engine, &self.serial) {
            (Some(eng), _) => {
                let rep = eng.run_to_completion();
                record_shard_run(ShardRunRecord {
                    label: self.label.clone(),
                    shards: eng.shards(),
                    rounds: rep.rounds,
                    per_shard: rep.per_shard,
                });
            }
            (None, Some(sim)) => {
                let rep = sim.run_to_completion();
                record_shard_run(ShardRunRecord {
                    label: self.label.clone(),
                    shards: 1,
                    rounds: 0,
                    per_shard: vec![simkit::ShardStats {
                        events: rep.events,
                        ..Default::default()
                    }],
                });
            }
            (None, None) => unreachable!("one engine flavor is always built"),
        }
        check_oracles(&self.cluster, &self.label);
    }
}

/// The X-TOPO conservation oracles (see the module docs). Panics on any
/// violation — the suite must not render tables over broken accounting.
pub(crate) fn check_oracles(cluster: &Cluster, tag: &str) {
    let san = cluster.san().stats();
    let ports = cluster.san().port_stats();
    let port_drops: u64 = ports
        .iter()
        .map(|p| p.stats.drops + p.stats.storm_dropped)
        .sum();
    assert_eq!(
        san.frames_port_dropped, port_drops,
        "{tag}: every fabric-level port drop must be attributed to a port"
    );
    // Trunk-refusal fault drops are port-attributed; switch-wide kills
    // and no-route drops have no single port, so this is an inequality.
    let port_faulted: u64 = ports.iter().map(|p| p.stats.fault_dropped).sum();
    assert!(
        port_faulted <= san.frames_fault_dropped,
        "{tag}: port fault attribution exceeds the fabric total: {san:?}"
    );
    assert_eq!(
        san.frames_sent,
        san.frames_delivered
            + san.frames_dropped
            + san.frames_faulted
            + san.frames_corrupted
            + san.frames_port_dropped
            + san.frames_fault_dropped,
        "{tag}: frame conservation: {san:?}"
    );
    for i in 0..cluster.nodes() {
        let audit = cluster.provider(i).audit();
        assert!(
            audit.is_clean(),
            "{tag}: node {i} audit: {:?}",
            audit.violations
        );
    }
    crate::runner::record_fabric_health(
        ports.iter().map(|p| p.stats.storm_trips).sum(),
        san.frames_fault_dropped,
    );
}

// ---------------------------------------------------------------------
// Connection storm
// ---------------------------------------------------------------------

/// Nodes in the storm (32 client/server pairs).
pub const STORM_NODES: usize = 64;
/// Messages each storm client streams after connecting.
pub const STORM_MSGS: u64 = 6;

/// Which shape the storm runs over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StormShape {
    /// The degenerate single-switch star — the legacy fabric, as control.
    Star,
    /// The 64-node 2-level fat-tree.
    FatTree,
}

impl StormShape {
    fn topo(self) -> Topology {
        match self {
            StormShape::Star => Topology::star(STORM_NODES),
            StormShape::FatTree => fat_tree64(PortLimits::default()),
        }
    }

    fn label(self) -> &'static str {
        match self {
            StormShape::Star => "star-64",
            StormShape::FatTree => "fat-tree-64",
        }
    }
}

/// Outcome of one storm run.
#[derive(Clone, Debug)]
pub struct StormOutcome {
    /// Messages delivered across all pairs.
    pub delivered: u64,
    /// Payload bytes delivered across all pairs.
    pub bytes: u64,
    /// Time of the last delivery.
    pub makespan: SimDuration,
    /// Fabric counters for the run.
    pub san: SanStats,
    /// Sum of per-port pauses (0 on the star: no switch ports exist).
    pub pauses: u64,
    /// Sum of per-port drops.
    pub port_drops: u64,
}

/// Run the connection storm: client `i` (0..32) connects across the
/// fabric to server `32 + i` and streams [`STORM_MSGS`] messages of a
/// pair-distinct size. On the fat-tree every pair crosses the spine
/// tier (nodes `i` and `i + 32` are always four edge switches apart).
pub fn storm(shape: StormShape, seed: u64, shards: usize) -> StormOutcome {
    let rig = Rig::new(
        shape.topo(),
        seed,
        shards,
        format!("topo-{}-storm", shape.label()),
    );
    let cluster = &rig.cluster;
    let pairs = STORM_NODES / 2;

    let mut servers = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let srv = pairs + i;
        let size = 2048 + 32 * i as u64;
        let p = cluster.provider(srv);
        let sim = cluster.node_sim(srv).clone();
        servers.push(
            sim.spawn(format!("storm-srv{srv}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                for _ in 0..STORM_MSGS {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, size as u32))
                        .expect("post_recv");
                }
                p.accept(ctx, &vi, Discriminator(i as u64)).expect("accept");
                let mut bytes = 0u64;
                let mut last = SimTime::ZERO;
                for _ in 0..STORM_MSGS {
                    let comp = vi.recv_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "storm delivery failed: {:?}", comp.status);
                    bytes += comp.length;
                    last = last.max(ctx.now());
                }
                (bytes, last)
            }),
        );
    }

    let mut clients = Vec::with_capacity(pairs);
    for i in 0..pairs {
        let srv = pairs + i;
        let size = 2048 + 32 * i as u64;
        let p = cluster.provider(i);
        let sim = cluster.node_sim(i).clone();
        clients.push(
            sim.spawn(format!("storm-cli{i}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                p.connect(ctx, &vi, NodeId(srv as u32), Discriminator(i as u64), None)
                    .expect("connect");
                ctx.sleep(SimDuration::from_nanos(3_000 + 1_237 * i as u64));
                for _ in 0..STORM_MSGS {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                        .expect("post_send");
                    let comp = vi.send_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "storm send failed: {:?}", comp.status);
                }
            }),
        );
    }

    rig.run();
    for c in clients {
        c.expect_result();
    }
    let mut delivered = 0u64;
    let mut bytes = 0u64;
    let mut last = SimTime::ZERO;
    for s in servers {
        let (b, l) = s.expect_result();
        delivered += STORM_MSGS;
        bytes += b;
        last = last.max(l);
    }
    let ports = cluster.san().port_stats();
    StormOutcome {
        delivered,
        bytes,
        makespan: last.duration_since(SimTime::ZERO),
        san: cluster.san().stats(),
        pauses: ports.iter().map(|p| p.stats.pauses).sum(),
        port_drops: ports.iter().map(|p| p.stats.drops).sum(),
    }
}

/// The storm comparison table: one row per shape (the star control row,
/// then the fat-tree). Runs on [`default_shards`] engine shards.
pub fn storm_table(shapes: &[StormShape]) -> Table {
    let mut t = Table::new(
        format!(
            "X-TOPO: {STORM_NODES}-node connection storm, {} pairs x {STORM_MSGS} msgs",
            STORM_NODES / 2
        ),
        vec![
            "msgs".to_string(),
            "KB".to_string(),
            "makespan (us)".to_string(),
            "goodput (MB/s)".to_string(),
            "pauses".to_string(),
            "port drops".to_string(),
        ],
    );
    for &shape in shapes {
        let o = storm(shape, TOPO_SEED, default_shards());
        t.push(
            shape.label(),
            vec![
                o.delivered as f64,
                o.bytes as f64 / 1024.0,
                o.makespan.as_micros_f64(),
                simkit::megabytes_per_second(o.bytes, o.makespan),
                o.pauses as f64,
                o.port_drops as f64,
            ],
        );
    }
    t
}

// ---------------------------------------------------------------------
// 16-to-1 incast
// ---------------------------------------------------------------------

/// Concurrent senders converging on node 0.
pub const INCAST_SENDERS: usize = 16;
/// Messages each incast sender posts back to back (pipelined).
pub const INCAST_MSGS: usize = 12;
/// Messages of the victim and probe flows.
pub const INCAST_PROBE_MSGS: usize = 8;

/// Tight port limits for the incast fat-tree: small enough that the
/// receiver's host port pauses and then drops under the burst.
fn incast_limits() -> PortLimits {
    PortLimits {
        capacity: 4,
        pause_depth: 8,
        max_pause: None,
    }
}

/// Sender `s`'s node: round-robin over edge switches 1..=7, so the burst
/// converges through every spine→edge-0 trunk. Node 0 (the receiver),
/// the victim source (58), and the probe pair (4, 5) are never senders.
fn incast_sender_node(s: usize) -> usize {
    HOSTS_PER_EDGE * (1 + (s % (EDGES - 1))) + s / (EDGES - 1)
}

/// Per-flow receive telemetry for the incast.
#[derive(Clone, Debug)]
pub struct IncastFlow {
    /// Row label ("s03", "victim 58->1", …).
    pub label: String,
    /// Messages delivered.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// First delivery completion time.
    pub first_rx: SimTime,
    /// Last delivery completion time.
    pub last_rx: SimTime,
}

impl IncastFlow {
    /// Goodput over the flow's own first-to-last delivery span.
    pub fn goodput(&self) -> f64 {
        let span = self.last_rx.saturating_duration_since(self.first_rx);
        if span.is_zero() {
            0.0
        } else {
            simkit::megabytes_per_second(self.bytes, span)
        }
    }
}

/// Outcome of the incast run.
#[derive(Clone, Debug)]
pub struct IncastOutcome {
    /// The 16 sender flows, then the victim, then the probe.
    pub flows: Vec<IncastFlow>,
    /// Fabric counters.
    pub san: SanStats,
    /// Per-port counters (every switch port in the fat-tree).
    pub ports: Vec<PortSnapshot>,
}

/// One receiving flow: create a VI, pre-post `msgs` receives, accept
/// `disc`, drain, report. Shared by the incast receiver (16 flows on
/// node 0) and the victim/probe servers.
fn rx_flow(
    cluster: &Cluster,
    node: usize,
    disc: u64,
    msgs: usize,
    max_size: u64,
    label: String,
) -> simkit::ProcessHandle<IncastFlow> {
    let p = cluster.provider(node);
    let sim = cluster.node_sim(node).clone();
    sim.spawn(format!("incast-rx-{label}"), Some(p.cpu()), move |ctx| {
        let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
        let buf = p.malloc(max_size);
        let mh = p
            .register_mem(ctx, buf, max_size, MemAttributes::default())
            .expect("register");
        for _ in 0..msgs {
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, max_size as u32))
                .expect("post_recv");
        }
        p.accept(ctx, &vi, Discriminator(disc)).expect("accept");
        let mut bytes = 0u64;
        let mut first = SimTime::MAX;
        let mut last = SimTime::ZERO;
        for _ in 0..msgs {
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok(), "incast delivery failed: {:?}", comp.status);
            bytes += comp.length;
            first = first.min(ctx.now());
            last = last.max(ctx.now());
        }
        IncastFlow {
            label,
            delivered: msgs as u64,
            bytes,
            first_rx: first,
            last_rx: last,
        }
    })
}

/// One sending flow toward `(dst, disc)`: after a `connect_at` stagger
/// (control frames are not retransmitted, so connects must not collide
/// hard enough to overflow a port), connect, wait out the `start`
/// offset, then keep a window of `depth` sends outstanding until `msgs`
/// complete. Depth 1 is a self-paced flow; depth 2 is the incast burst —
/// enough standing pressure to pause and drop at the tight receiver
/// port, while staying inside the retransmission budget that recovers
/// every drop.
#[allow(clippy::too_many_arguments)]
fn tx_flow(
    cluster: &Cluster,
    node: usize,
    dst: usize,
    disc: u64,
    msgs: usize,
    size: u64,
    connect_at: u64,
    start: u64,
    depth: usize,
) -> simkit::ProcessHandle<()> {
    let p = cluster.provider(node);
    let sim = cluster.node_sim(node).clone();
    sim.spawn(format!("incast-tx-n{node}"), Some(p.cpu()), move |ctx| {
        let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
        let buf = p.malloc(size);
        let mh = p
            .register_mem(ctx, buf, size, MemAttributes::default())
            .expect("register");
        ctx.sleep(SimDuration::from_nanos(connect_at));
        p.connect(ctx, &vi, NodeId(dst as u32), Discriminator(disc), None)
            .expect("connect");
        ctx.sleep(SimDuration::from_nanos(start));
        let mut posted = 0usize;
        while posted < msgs.min(depth.max(1)) {
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                .expect("post_send");
            posted += 1;
        }
        for _ in 0..msgs {
            let comp = vi.send_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok(), "incast send failed: {:?}", comp.status);
            if posted < msgs {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                    .expect("post_send");
                posted += 1;
            }
        }
    })
}

/// Run the 16-to-1 incast with the victim and probe flows alongside.
pub fn incast(seed: u64, shards: usize) -> IncastOutcome {
    let rig = Rig::new(
        fat_tree64(incast_limits()),
        seed,
        shards,
        "topo-fat-tree-incast".to_string(),
    );
    let cluster = &rig.cluster;

    let mut rx = Vec::new();
    for s in 0..INCAST_SENDERS {
        let size = 8192 + 128 * s as u64;
        rx.push(rx_flow(
            cluster,
            0,
            100 + s as u64,
            INCAST_MSGS,
            size,
            format!("s{s:02}"),
        ));
    }
    // Victim: crosses the congested spine->edge-0 trunks into node 1.
    rx.push(rx_flow(
        cluster,
        1,
        200,
        INCAST_PROBE_MSGS,
        4096,
        "victim 58->1".to_string(),
    ));
    // Probe: stays inside edge switch 0, touching no trunk.
    rx.push(rx_flow(
        cluster,
        5,
        300,
        INCAST_PROBE_MSGS,
        4096,
        "probe 4->5".to_string(),
    ));

    let mut tx = Vec::new();
    for s in 0..INCAST_SENDERS {
        let size = 8192 + 128 * s as u64;
        tx.push(tx_flow(
            cluster,
            incast_sender_node(s),
            0,
            100 + s as u64,
            INCAST_MSGS,
            size,
            1_069 * s as u64,
            30_000 + 977 * s as u64,
            2,
        ));
    }
    tx.push(tx_flow(
        cluster,
        58,
        1,
        200,
        INCAST_PROBE_MSGS,
        4096,
        18_401,
        24_000,
        1,
    ));
    tx.push(tx_flow(
        cluster,
        4,
        5,
        300,
        INCAST_PROBE_MSGS,
        4096,
        18_731,
        24_000,
        1,
    ));

    rig.run();
    for t in tx {
        t.expect_result();
    }
    let flows: Vec<IncastFlow> = rx.into_iter().map(|h| h.expect_result()).collect();
    IncastOutcome {
        flows,
        san: cluster.san().stats(),
        ports: cluster.san().port_stats(),
    }
}

/// Classify a fat-tree port into its tier for the aggregate table.
fn port_tier(snap: &PortSnapshot) -> &'static str {
    if (snap.switch as usize) < EDGES {
        match snap.target {
            PortTarget::Node(_) => "edge->host",
            PortTarget::Switch(_) => "edge->spine",
        }
    } else {
        "spine->edge"
    }
}

/// The two X-TOPO incast tables: per-flow delivery/goodput (senders,
/// victim, probe) and the per-tier port occupancy/pause/drop aggregate.
pub fn incast_tables() -> (Table, Table) {
    let o = incast(TOPO_SEED, default_shards());

    let mut flows = Table::new(
        format!(
            "X-TOPO: {INCAST_SENDERS}-to-1 incast on the fat-tree \
             ({INCAST_MSGS} pipelined msgs/sender, victim + probe flows)"
        ),
        vec![
            "msgs".to_string(),
            "KB".to_string(),
            "first rx (us)".to_string(),
            "last rx (us)".to_string(),
            "goodput (MB/s)".to_string(),
        ],
    );
    for f in &o.flows {
        flows.push(
            f.label.clone(),
            vec![
                f.delivered as f64,
                f.bytes as f64 / 1024.0,
                f.first_rx.as_micros_f64(),
                f.last_rx.as_micros_f64(),
                f.goodput(),
            ],
        );
    }
    flows.push(
        "fabric frames (sent/delivered/port-dropped)",
        vec![
            o.san.frames_sent as f64,
            o.san.frames_delivered as f64,
            0.0,
            0.0,
            o.san.frames_port_dropped as f64,
        ],
    );

    let mut ports = Table::new(
        "X-TOPO: incast per-tier port counters (fat-tree, tight limits)",
        vec![
            "ports".to_string(),
            "admitted".to_string(),
            "pauses".to_string(),
            "drops".to_string(),
            "hol blocked".to_string(),
            "max queued".to_string(),
            "max paused".to_string(),
        ],
    );
    for tier in ["edge->host", "edge->spine", "spine->edge"] {
        let sel: Vec<&PortSnapshot> = o.ports.iter().filter(|p| port_tier(p) == tier).collect();
        ports.push(
            tier,
            vec![
                sel.len() as f64,
                sel.iter().map(|p| p.stats.admitted).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.pauses).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.drops).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.hol_blocked).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.highwater).max().unwrap_or(0) as f64,
                sel.iter()
                    .map(|p| p.stats.pause_highwater)
                    .max()
                    .unwrap_or(0) as f64,
            ],
        );
    }
    ports.push(
        "total",
        vec![
            o.ports.len() as f64,
            o.ports.iter().map(|p| p.stats.admitted).sum::<u64>() as f64,
            o.ports.iter().map(|p| p.stats.pauses).sum::<u64>() as f64,
            o.ports.iter().map(|p| p.stats.drops).sum::<u64>() as f64,
            o.ports.iter().map(|p| p.stats.hol_blocked).sum::<u64>() as f64,
            o.ports.iter().map(|p| p.stats.highwater).max().unwrap_or(0) as f64,
            o.ports
                .iter()
                .map(|p| p.stats.pause_highwater)
                .max()
                .unwrap_or(0) as f64,
        ],
    );
    (flows, ports)
}

// ---------------------------------------------------------------------
// All-to-all
// ---------------------------------------------------------------------

/// Nodes in the all-to-all exchange.
pub const A2A_NODES: usize = 64;

/// Payload size of the `src -> dst` all-to-all message: pair-distinct so
/// serialization times (and thus arrival instants) stay tie-free.
fn a2a_size(src: usize, dst: usize) -> u64 {
    320 + 8 * ((src * 67 + dst * 29) % 41) as u64
}

/// Per-edge aggregate of the all-to-all receive telemetry.
#[derive(Clone, Debug)]
pub struct A2aEdge {
    /// Messages delivered into the edge's hosts.
    pub delivered: u64,
    /// Payload bytes delivered into the edge's hosts.
    pub bytes: u64,
    /// Earliest delivery into the edge.
    pub first_rx: SimTime,
    /// Latest delivery into the edge.
    pub last_rx: SimTime,
}

/// Outcome of the all-to-all run.
#[derive(Clone, Debug)]
pub struct A2aOutcome {
    /// Per-edge-switch aggregates, indexed by edge.
    pub per_edge: Vec<A2aEdge>,
    /// Latest delivery fabric-wide.
    pub makespan: SimDuration,
    /// Fabric counters.
    pub san: SanStats,
}

/// Run the all-to-all: every node sends one message to every other node
/// over a dedicated Reliable Delivery VI pair (64 x 63 ordered pairs).
/// Clients connect and send in ascending peer order; servers accept in
/// ascending peer order — the staircase rendezvous schedule, which is
/// deadlock-free because each node's client and server run concurrently.
pub fn all_to_all(seed: u64, shards: usize) -> A2aOutcome {
    let n = A2A_NODES;
    let rig = Rig::new(
        fat_tree64(PortLimits::default()),
        seed,
        shards,
        "topo-fat-tree-all-to-all".to_string(),
    );
    let cluster = &rig.cluster;
    let disc = move |src: usize, dst: usize| (src * n + dst) as u64;

    let mut servers = Vec::with_capacity(n);
    for i in 0..n {
        let p = cluster.provider(i);
        let sim = cluster.node_sim(i).clone();
        servers.push(sim.spawn(format!("a2a-srv{i}"), Some(p.cpu()), move |ctx| {
            let max = (0..n)
                .filter(|&j| j != i)
                .map(|j| a2a_size(j, i))
                .max()
                .unwrap();
            let buf = p.malloc(max);
            let mh = p
                .register_mem(ctx, buf, max, MemAttributes::default())
                .expect("register");
            let mut vis = Vec::with_capacity(n - 1);
            for j in (0..n).filter(|&j| j != i) {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, max as u32))
                    .expect("post_recv");
                p.accept(ctx, &vi, Discriminator(disc(j, i)))
                    .expect("accept");
                vis.push(vi);
            }
            let mut bytes = 0u64;
            let mut first = SimTime::MAX;
            let mut last = SimTime::ZERO;
            for vi in &vis {
                let comp = vi.recv_wait(ctx, WaitMode::Poll);
                assert!(comp.is_ok(), "a2a delivery failed: {:?}", comp.status);
                bytes += comp.length;
                first = first.min(ctx.now());
                last = last.max(ctx.now());
            }
            ((n - 1) as u64, bytes, first, last)
        }));
    }

    let mut clients = Vec::with_capacity(n);
    for i in 0..n {
        let p = cluster.provider(i);
        let sim = cluster.node_sim(i).clone();
        clients.push(sim.spawn(format!("a2a-cli{i}"), Some(p.cpu()), move |ctx| {
            ctx.sleep(SimDuration::from_nanos(2_000 + 937 * i as u64));
            for j in (0..n).filter(|&j| j != i) {
                let size = a2a_size(i, j);
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                p.connect(ctx, &vi, NodeId(j as u32), Discriminator(disc(i, j)), None)
                    .expect("connect");
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                    .expect("post_send");
                let comp = vi.send_wait(ctx, WaitMode::Poll);
                assert!(comp.is_ok(), "a2a send failed: {:?}", comp.status);
            }
        }));
    }

    rig.run();
    for c in clients {
        c.expect_result();
    }
    let mut per_edge: Vec<A2aEdge> = (0..EDGES)
        .map(|_| A2aEdge {
            delivered: 0,
            bytes: 0,
            first_rx: SimTime::MAX,
            last_rx: SimTime::ZERO,
        })
        .collect();
    for (i, s) in servers.into_iter().enumerate() {
        let (delivered, bytes, first, last) = s.expect_result();
        let e = &mut per_edge[i / HOSTS_PER_EDGE];
        e.delivered += delivered;
        e.bytes += bytes;
        e.first_rx = e.first_rx.min(first);
        e.last_rx = e.last_rx.max(last);
    }
    let makespan = per_edge
        .iter()
        .map(|e| e.last_rx)
        .max()
        .expect("nonempty fat-tree")
        .duration_since(SimTime::ZERO);
    A2aOutcome {
        per_edge,
        makespan,
        san: cluster.san().stats(),
    }
}

/// The all-to-all table: one aggregate row per edge switch, then totals.
pub fn all_to_all_table() -> Table {
    let o = all_to_all(TOPO_SEED, default_shards());
    let mut t = Table::new(
        format!(
            "X-TOPO: {A2A_NODES}-node all-to-all over the fat-tree \
             ({EDGES} edges x {HOSTS_PER_EDGE} hosts, {SPINES} spines)"
        ),
        vec![
            "msgs".to_string(),
            "KB".to_string(),
            "first rx (us)".to_string(),
            "last rx (us)".to_string(),
            "goodput (MB/s)".to_string(),
        ],
    );
    for (i, e) in o.per_edge.iter().enumerate() {
        let span = e.last_rx.saturating_duration_since(e.first_rx);
        let goodput = if span.is_zero() {
            0.0
        } else {
            simkit::megabytes_per_second(e.bytes, span)
        };
        t.push(
            format!("edge{i}"),
            vec![
                e.delivered as f64,
                e.bytes as f64 / 1024.0,
                e.first_rx.as_micros_f64(),
                e.last_rx.as_micros_f64(),
                goodput,
            ],
        );
    }
    let total_msgs: u64 = o.per_edge.iter().map(|e| e.delivered).sum();
    let total_bytes: u64 = o.per_edge.iter().map(|e| e.bytes).sum();
    t.push(
        "total",
        vec![
            total_msgs as f64,
            total_bytes as f64 / 1024.0,
            0.0,
            o.makespan.as_micros_f64(),
            simkit::megabytes_per_second(total_bytes, o.makespan),
        ],
    );
    t.push(
        "fabric frames (sent/delivered)",
        vec![
            o.san.frames_sent as f64,
            o.san.frames_delivered as f64,
            0.0,
            0.0,
            0.0,
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incast_sender_nodes_are_distinct_and_off_edge0() {
        let nodes: Vec<usize> = (0..INCAST_SENDERS).map(incast_sender_node).collect();
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), INCAST_SENDERS);
        for &n in &nodes {
            assert!(n >= HOSTS_PER_EDGE, "sender {n} shares the receiver's edge");
            assert!(
                ![0, 1, 4, 5, 58].contains(&n),
                "sender {n} collides with a fixed role"
            );
        }
    }

    #[test]
    fn storm_delivers_everything_on_both_shapes() {
        for shape in [StormShape::Star, StormShape::FatTree] {
            let o = storm(shape, 7, 1);
            assert_eq!(o.delivered, (STORM_NODES as u64 / 2) * STORM_MSGS);
            assert!(o.makespan > SimDuration::ZERO);
            assert_eq!(o.san.frames_dropped, 0);
            if shape == StormShape::Star {
                assert_eq!(o.pauses, 0);
                assert_eq!(o.port_drops, 0);
            }
        }
    }

    #[test]
    fn fat_tree_storm_is_shard_count_invariant() {
        let serial = storm(StormShape::FatTree, 7, 1);
        for shards in [2usize, 4] {
            let sharded = storm(StormShape::FatTree, 7, shards);
            assert_eq!(sharded.san, serial.san, "shards={shards}");
            assert_eq!(sharded.makespan, serial.makespan, "shards={shards}");
            assert_eq!(sharded.pauses, serial.pauses, "shards={shards}");
            assert_eq!(sharded.port_drops, serial.port_drops, "shards={shards}");
        }
    }

    #[test]
    fn incast_backpressure_engages_and_probe_outruns_victim() {
        let o = incast(TOPO_SEED, 1);
        let pauses: u64 = o.ports.iter().map(|p| p.stats.pauses).sum();
        assert!(pauses > 0, "tight incast limits must engage backpressure");
        let victim = o
            .flows
            .iter()
            .find(|f| f.label.starts_with("victim"))
            .unwrap();
        let probe = o
            .flows
            .iter()
            .find(|f| f.label.starts_with("probe"))
            .unwrap();
        assert_eq!(victim.delivered, INCAST_PROBE_MSGS as u64);
        assert_eq!(probe.delivered, INCAST_PROBE_MSGS as u64);
        assert!(
            probe.goodput() > victim.goodput(),
            "intra-edge probe ({:.1} MB/s) must outrun the trunk-crossing victim ({:.1} MB/s)",
            probe.goodput(),
            victim.goodput()
        );
    }

    #[test]
    fn incast_is_shard_count_invariant() {
        let serial = incast(TOPO_SEED, 1);
        let sharded = incast(TOPO_SEED, 4);
        assert_eq!(sharded.san, serial.san);
        let key = |o: &IncastOutcome| -> Vec<(String, u64, u64, u64, u64)> {
            o.flows
                .iter()
                .map(|f| {
                    (
                        f.label.clone(),
                        f.delivered,
                        f.bytes,
                        f.first_rx.as_nanos(),
                        f.last_rx.as_nanos(),
                    )
                })
                .collect()
        };
        assert_eq!(key(&sharded), key(&serial));
        assert_eq!(
            sharded.ports.iter().map(|p| p.stats).collect::<Vec<_>>(),
            serial.ports.iter().map(|p| p.stats).collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_to_all_delivers_everything() {
        let o = all_to_all(TOPO_SEED, 1);
        let total: u64 = o.per_edge.iter().map(|e| e.delivered).sum();
        assert_eq!(total, (A2A_NODES * (A2A_NODES - 1)) as u64);
        for e in &o.per_edge {
            assert_eq!(e.delivered, (HOSTS_PER_EDGE * (A2A_NODES - 1)) as u64);
        }
    }
}
