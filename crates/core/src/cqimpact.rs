//! Impact of completion queues (§3.2.3): the base tests with receive
//! completions checked through a CQ instead of the work queue. The paper
//! (§4.3.3) reports the overhead as negligible for M-VIA and cLAN and
//! 2–5 us for Berkeley VIA.

use via::Profile;

use crate::harness::{ping_pong, DtConfig};
use crate::report::Table;

/// Latency with and without a CQ at `size` bytes, per profile.
pub fn cq_overhead_table(profiles: &[Profile], size: u64) -> Table {
    let mut t = Table::new(
        format!("CQ overhead at {size} B (us, polling)"),
        vec![
            "direct".to_string(),
            "via CQ".to_string(),
            "overhead".to_string(),
        ],
    );
    for p in profiles {
        let direct = ping_pong(&DtConfig {
            iters: 30,
            ..DtConfig::base(p.clone(), size)
        })
        .latency_us;
        let via_cq = ping_pong(&DtConfig {
            iters: 30,
            use_recv_cq: true,
            ..DtConfig::base(p.clone(), size)
        })
        .latency_us;
        t.push(p.name, vec![direct, via_cq, via_cq - direct]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cq_overheads_match_section_4_3_3() {
        let t = cq_overhead_table(&Profile::paper_trio(), 64);
        let bvia = t.cell("BVIA", "overhead").unwrap();
        let mvia = t.cell("M-VIA", "overhead").unwrap();
        let clan = t.cell("cLAN", "overhead").unwrap();
        // "For BVIA, 2-5 microsec overhead was observed."
        assert!((2.0..=5.0).contains(&bvia), "BVIA CQ overhead {bvia}");
        // "The impact ... in M-VIA and cLAN was found to be negligible."
        assert!((0.0..1.0).contains(&mvia), "M-VIA CQ overhead {mvia}");
        assert!((0.0..1.0).contains(&clan), "cLAN CQ overhead {clan}");
    }
}
