//! X-FAULT: fault injection, VI error states, and recovery.
//!
//! The robustness extension of the suite: scripted fault windows
//! ([`fabric::FaultPlan`]) and firmware stalls are injected into otherwise
//! standard streams, and the tables report how each provider profile rides
//! them out — adaptive-RTO backoff across a link flap, goodput through a
//! degradation burst, doorbell-service stalls, and the full VIA error-state
//! arc: retry exhaustion → VI Error → descriptor flush → disconnect →
//! reconnect → resume.
//!
//! Everything is discrete-event deterministic: the same seed produces the
//! same fault realization, byte for byte, at any worker count.

use fabric::NodeId;
use simkit::{SimDuration, SimTime};
use via::{Discriminator, MemAttributes, Profile, Reliability, ViAttributes};

use crate::harness::{DtConfig, Endpoint, Pair};
use crate::report::Table;

const MSG_SIZE: u64 = 4096;

/// Stream config shared by the fault scenarios: Reliable Delivery where the
/// profile has it (so recovery is observable), plain Unreliable otherwise.
fn stream_cfg(profile: Profile, total: u32) -> DtConfig {
    let reliability = if profile.supports_reliability(Reliability::ReliableDelivery) {
        Reliability::ReliableDelivery
    } else {
        Reliability::Unreliable
    };
    DtConfig {
        iters: total,
        warmup: 0,
        reliability,
        queue_depth: 8,
        ..DtConfig::base(profile, MSG_SIZE)
    }
}

/// Fault onset relative to the stream's first send. VI setup and the
/// connection handshake consume a profile-dependent stretch of sim time,
/// so fault windows are scheduled from inside the workload — this offset
/// past the post-handshake barrier — rather than at absolute timestamps.
const FAULT_OFFSET: SimDuration = SimDuration::from_micros(200);

/// One client→server stream with a passive receiver: the server pre-posts
/// a descriptor per message and returns, so nothing on the receive side
/// gates the sender and delivery is read back from the provider counters.
/// `script` runs on the client right after the start barrier (it installs
/// the scenario's faults, timed off the stream start it receives) and
/// returns the instant to watch for recovery. Returns (elapsed, first
/// completion at-or-after the watch point, the watch point).
fn passive_stream<F>(
    pair: &Pair,
    cfg: &DtConfig,
    script: F,
) -> (SimDuration, Option<SimTime>, SimTime)
where
    F: FnOnce(&Endpoint, SimTime) -> SimTime + Send + 'static,
{
    let total = cfg.iters as u64;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (_, out) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size);
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size, MemAttributes::default())
                .unwrap();
            for _ in 0..total {
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, buf, mh, cfg.msg_size, 1))
                    .unwrap();
            }
            ep.sync(ctx);
            // Passive: completions accumulate unobserved; delivery is read
            // from the provider counters after the run.
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size);
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size, MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let t0 = ctx.now();
            let watch = script(&ep, t0);
            let mut first_after: Option<SimTime> = None;
            let mut outstanding = 0u64;
            let note = |now: SimTime, first: &mut Option<SimTime>| {
                if first.is_none() && now >= watch {
                    *first = Some(now);
                }
            };
            for _ in 0..total {
                ep.vi
                    .post_send(ctx, ep.split_desc(false, buf, mh, cfg.msg_size, 1))
                    .unwrap();
                outstanding += 1;
                if outstanding >= cfg.queue_depth as u64 {
                    let c = ep.vi.send_wait(ctx, cfg.wait);
                    assert!(c.is_ok(), "fault stream send: {:?}", c.status);
                    outstanding -= 1;
                    note(ctx.now(), &mut first_after);
                }
            }
            while outstanding > 0 {
                let c = ep.vi.send_wait(ctx, cfg.wait);
                assert!(c.is_ok(), "fault stream drain: {:?}", c.status);
                outstanding -= 1;
                note(ctx.now(), &mut first_after);
            }
            (ctx.now() - t0, first_after, watch)
        },
    );
    out
}

/// Recovery from a link flap: the server's link goes down mid-stream for
/// `flap` microseconds; in-flight messages retransmit with exponential
/// backoff and the stream resumes once the link returns. Reported recovery
/// latency is the gap between the link coming back and the first send
/// completion after it — i.e. how long the backed-off retry timers leave
/// the link idle after repair.
pub fn recovery_table(profiles: &[Profile], flaps_us: &[u64]) -> Table {
    let mut t = Table::new(
        format!("X-FAULT: link-flap recovery ({MSG_SIZE} B stream)"),
        vec![
            "recovery latency (us)".to_string(),
            "elapsed (us)".to_string(),
            "retransmissions".to_string(),
        ],
    );
    for profile in profiles {
        if !profile.supports_reliability(Reliability::ReliableDelivery) {
            // Nothing retransmits on an unreliable-only provider; a flap
            // just drops the frames, which the burst table already shows.
            continue;
        }
        for &flap in flaps_us {
            let cfg = stream_cfg(profile.clone(), 64);
            let pair = Pair::new(&cfg);
            let san = pair.san();
            let (elapsed, first_after, flap_end) = passive_stream(&pair, &cfg, move |_ep, t0| {
                if flap == 0 {
                    return SimTime::ZERO;
                }
                let at = t0 + FAULT_OFFSET;
                let d = SimDuration::from_micros(flap);
                san.install_faults(&fabric::FaultPlan::new().link_flap(NodeId(1), at, d));
                at + d
            });
            let recovery = match (flap, first_after) {
                (0, _) => 0.0,
                (_, Some(at)) => at.saturating_duration_since(flap_end).as_micros_f64(),
                (_, None) => f64::NAN,
            };
            t.push(
                format!("{} flap {flap}us", profile.name),
                vec![
                    recovery,
                    elapsed.as_micros_f64(),
                    pair.provider_stats(0).retransmissions as f64,
                ],
            );
        }
    }
    t
}

/// Goodput through a degradation burst: for 3 ms mid-stream the server's
/// link drops 30% of frames and adds 5 us per traversal. Reliable profiles
/// retransmit through it; unreliable ones simply lose the messages, which
/// the delivered column makes visible.
pub fn burst_goodput_table(profiles: &[Profile]) -> Table {
    let mut t = Table::new(
        format!("X-FAULT: degradation burst ({MSG_SIZE} B stream)"),
        vec![
            "goodput (MB/s)".to_string(),
            "retransmissions".to_string(),
            "delivered (%)".to_string(),
        ],
    );
    for profile in profiles {
        let total = 96u32;
        let cfg = stream_cfg(profile.clone(), total);
        let pair = Pair::new(&cfg);
        let san = pair.san();
        let (elapsed, _, _) = passive_stream(&pair, &cfg, move |_ep, t0| {
            san.install_faults(&fabric::FaultPlan::new().degrade(
                NodeId(1),
                t0 + FAULT_OFFSET,
                SimDuration::from_micros(3_000),
                SimDuration::from_micros(5),
                0.3,
            ));
            SimTime::ZERO
        });
        let delivered = pair.provider_stats(1).msgs_delivered;
        t.push(
            format!("{} ({})", profile.name, rel_short(cfg.reliability)),
            vec![
                simkit::megabytes_per_second(MSG_SIZE * delivered, elapsed),
                pair.provider_stats(0).retransmissions as f64,
                delivered as f64 * 100.0 / total as f64,
            ],
        );
    }
    t
}

/// Firmware stall: the sender NIC's descriptor scheduler services nothing
/// for 2 ms mid-stream. Doorbell-driven providers (FIFO and polling
/// firmware alike) stall for the window — long enough that retransmit
/// timers fire into the stalled NIC — while the host-emulated path, which
/// has no device-side scheduler, is immune.
pub fn stall_table(profiles: &[Profile]) -> Table {
    let mut t = Table::new(
        format!("X-FAULT: 2 ms firmware stall ({MSG_SIZE} B stream)"),
        vec![
            "elapsed (us)".to_string(),
            "baseline (us)".to_string(),
            "retransmissions".to_string(),
        ],
    );
    for profile in profiles {
        let run = |stalled: bool| {
            let cfg = stream_cfg(profile.clone(), 64);
            let pair = Pair::new(&cfg);
            let (elapsed, _, _) = passive_stream(&pair, &cfg, move |ep, t0| {
                if stalled {
                    ep.provider
                        .stall_firmware(t0 + FAULT_OFFSET, SimDuration::from_micros(2_000));
                }
                SimTime::ZERO
            });
            (elapsed, pair.provider_stats(0).retransmissions)
        };
        let (base, _) = run(false);
        let (elapsed, retx) = run(true);
        t.push(
            profile.name.to_string(),
            vec![elapsed.as_micros_f64(), base.as_micros_f64(), retx as f64],
        );
    }
    t
}

/// What the error-state arc of [`error_reconnect_run`] observed.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectReport {
    /// Sends the client posted before the VI failed.
    pub posted_before: u64,
    /// Of those, completed successfully before the failure.
    pub completed_before: u64,
    /// Of those, flushed to the CQ with `ConnectionLost` by the VI error
    /// state machine. Every posted send is in exactly one of these bins.
    pub flushed: u64,
    /// Messages re-sent (all successfully) over the re-established
    /// connection.
    pub resent: u64,
    /// The client provider's connection-failure counter.
    pub conn_failures: u64,
    /// Messages the server placed in memory, across both connections. At
    /// least the stream total; higher when a message delivered just before
    /// the outage lost its ACK to it and was re-sent.
    pub server_received: u64,
    /// Link repair to first resumed completion, in microseconds.
    pub recovery_us: f64,
}

const RECONNECT_TOTAL: u64 = 48;
const RECONNECT_FLAP: SimDuration = SimDuration::from_micros(20_000);

/// The full VIA error-state arc, end to end: a 20 ms outage of the
/// client's link exhausts the (deliberately short) retry budget, the VI
/// enters the Error state and flushes every outstanding descriptor with
/// `ConnectionLost`, the application disconnects — the only exit the VIA
/// spec allows — waits out the outage, reconnects to a second
/// discriminator the server listens on, and re-sends everything that never
/// completed.
pub fn error_reconnect_run(profile: Profile) -> ReconnectReport {
    let mut p = profile;
    assert!(
        p.supports_reliability(Reliability::ReliableDelivery),
        "the error arc needs a reliable mode"
    );
    // A short retry budget keeps exhaustion well inside the outage.
    p.data.retransmit_timeout = SimDuration::from_micros(400);
    p.data.max_rto = SimDuration::from_micros(4_000);
    p.data.max_retries = 3;
    let cfg = DtConfig {
        iters: RECONNECT_TOTAL as u32,
        warmup: 0,
        reliability: Reliability::ReliableDelivery,
        queue_depth: 8,
        ..DtConfig::base(p, MSG_SIZE)
    };
    let pair = Pair::new(&cfg);
    let san = pair.san();
    let ccfg = cfg.clone();
    let attrs = ViAttributes::reliable(cfg.reliability);
    let (_, mut report) = pair.run(
        move |ctx, ep| {
            // A second VI listening on discriminator 2 is the reconnect
            // target; receives may be pre-posted while it is still Idle.
            let vi2 = ep.provider.create_vi(ctx, attrs, None, None).unwrap();
            let buf = ep.provider.malloc(MSG_SIZE);
            let mh = ep
                .provider
                .register_mem(ctx, buf, MSG_SIZE, MemAttributes::default())
                .unwrap();
            for _ in 0..RECONNECT_TOTAL {
                ep.vi
                    .post_recv(ctx, ep.split_desc(true, buf, mh, MSG_SIZE, 1))
                    .unwrap();
                vi2.post_recv(ctx, ep.split_desc(true, buf, mh, MSG_SIZE, 1))
                    .unwrap();
            }
            ep.sync(ctx);
            // Blocks here through the outage; returns once the client's
            // reconnect handshake lands. Deliveries on either VI complete
            // into their work queues unobserved.
            ep.provider
                .accept(ctx, &vi2, Discriminator(2))
                .expect("reconnect accept");
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(MSG_SIZE);
            let mh = ep
                .provider
                .register_mem(ctx, buf, MSG_SIZE, MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            // Cut the client's own link shortly into the stream, long
            // enough that the shortened retry budget exhausts mid-outage.
            let flap_at = ctx.now() + SimDuration::from_micros(50);
            san.install_faults(&fabric::FaultPlan::new().link_flap(
                NodeId(0),
                flap_at,
                RECONNECT_FLAP,
            ));
            let flap_end = flap_at + RECONNECT_FLAP;
            let mut posted = 0u64;
            let mut ok = 0u64;
            let mut flushed = 0u64;
            let mut outstanding = 0u64;
            let mut failed = false;
            let take = |c: &via::Completion, ok: &mut u64, flushed: &mut u64| {
                if c.is_ok() {
                    *ok += 1;
                } else {
                    assert_eq!(c.status, Err(via::ViaError::ConnectionLost));
                    *flushed += 1;
                }
            };
            for _ in 0..RECONNECT_TOTAL {
                match ep
                    .vi
                    .post_send(ctx, ep.split_desc(false, buf, mh, MSG_SIZE, 1))
                {
                    Ok(()) => {
                        posted += 1;
                        outstanding += 1;
                    }
                    // The VI went into Error between completions: new work
                    // is refused until disconnect + reconnect.
                    Err(via::ViaError::InvalidState) => {
                        failed = true;
                        break;
                    }
                    Err(e) => panic!("post_send: {e:?}"),
                }
                if outstanding >= cfg.queue_depth as u64 {
                    let c = ep.vi.send_wait(ctx, cfg.wait);
                    outstanding -= 1;
                    take(&c, &mut ok, &mut flushed);
                    if !c.is_ok() {
                        failed = true;
                        break;
                    }
                }
            }
            // The error flush completes every outstanding descriptor.
            while outstanding > 0 {
                let c = ep.vi.send_wait(ctx, cfg.wait);
                outstanding -= 1;
                take(&c, &mut ok, &mut flushed);
            }
            assert!(failed, "the outage should have failed the connection");
            // The spec's only exit from the Error state.
            ep.provider.disconnect(ctx, &ep.vi).expect("disconnect");
            // The connect handshake has no retransmission of its own, so
            // sit out the rest of the scheduled outage before redialing.
            let resume_at = flap_end + SimDuration::from_micros(100);
            let wait = resume_at.saturating_duration_since(ctx.now());
            if wait > SimDuration::ZERO {
                ctx.busy(wait);
            }
            ep.provider
                .connect(ctx, &ep.vi, NodeId(1), Discriminator(2), None)
                .expect("reconnect");
            // Re-send everything that never completed.
            let resent = RECONNECT_TOTAL - ok;
            let mut recovered: Option<SimTime> = None;
            for _ in 0..resent {
                ep.vi
                    .post_send(ctx, ep.split_desc(false, buf, mh, MSG_SIZE, 1))
                    .unwrap();
                outstanding += 1;
                if outstanding >= cfg.queue_depth as u64 {
                    let c = ep.vi.send_wait(ctx, cfg.wait);
                    assert!(c.is_ok(), "resumed send: {:?}", c.status);
                    outstanding -= 1;
                    recovered.get_or_insert(ctx.now());
                }
            }
            while outstanding > 0 {
                let c = ep.vi.send_wait(ctx, cfg.wait);
                assert!(c.is_ok(), "resumed drain: {:?}", c.status);
                outstanding -= 1;
                recovered.get_or_insert(ctx.now());
            }
            ReconnectReport {
                posted_before: posted,
                completed_before: ok,
                flushed,
                resent,
                conn_failures: 0, // filled in from the provider below
                server_received: 0,
                recovery_us: recovered
                    .expect("something was resent")
                    .saturating_duration_since(flap_end)
                    .as_micros_f64(),
            }
        },
    );
    report.conn_failures = pair.provider_stats(0).conn_failures;
    report.server_received = pair.provider_stats(1).msgs_delivered;
    report
}

/// The error-reconnect arc as a table row.
pub fn reconnect_table(profile: Profile) -> Table {
    let name = profile.name;
    let mut t = Table::new(
        format!("X-FAULT: retry exhaustion, VI error state & reconnect ({MSG_SIZE} B)"),
        vec![
            "completed pre-fault".to_string(),
            "flushed (ConnectionLost)".to_string(),
            "resent".to_string(),
            "conn failures".to_string(),
            "server received".to_string(),
            "recovery (us)".to_string(),
        ],
    );
    let r = error_reconnect_run(profile);
    t.push(
        format!("{name} flap 20ms"),
        vec![
            r.completed_before as f64,
            r.flushed as f64,
            r.resent as f64,
            r.conn_failures as f64,
            r.server_received as f64,
            r.recovery_us,
        ],
    );
    t
}

fn rel_short(r: Reliability) -> &'static str {
    match r {
        Reliability::Unreliable => "UD",
        Reliability::ReliableDelivery => "RD",
        Reliability::ReliableReception => "RR",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_flap_inflates_elapsed_and_forces_retransmissions() {
        let t = recovery_table(&[Profile::clan()], &[0, 2_000]);
        let base = t.cell("cLAN flap 0us", "elapsed (us)").unwrap();
        let flapped = t.cell("cLAN flap 2000us", "elapsed (us)").unwrap();
        assert!(flapped > base, "flap must cost time: {flapped} !> {base}");
        assert!(t.cell("cLAN flap 2000us", "retransmissions").unwrap() > 0.0);
        assert_eq!(t.cell("cLAN flap 0us", "retransmissions").unwrap(), 0.0);
    }

    #[test]
    fn degradation_burst_loses_unreliable_messages_but_not_reliable_ones() {
        let t = burst_goodput_table(&[Profile::bvia(), Profile::clan()]);
        let ud = t.cell("BVIA (UD)", "delivered (%)").unwrap();
        let rd = t.cell("cLAN (RD)", "delivered (%)").unwrap();
        assert_eq!(rd, 100.0, "reliable delivery must recover every loss");
        assert!(ud < 100.0, "a 30% burst must cost an unreliable stream");
    }

    #[test]
    fn firmware_stall_spares_only_the_host_emulated_path() {
        let t = stall_table(&[Profile::mvia(), Profile::clan()]);
        let mvia_base = t.cell("M-VIA", "baseline (us)").unwrap();
        let mvia_stall = t.cell("M-VIA", "elapsed (us)").unwrap();
        assert_eq!(
            mvia_base, mvia_stall,
            "no device-side scheduler, nothing to stall"
        );
        let clan_base = t.cell("cLAN", "baseline (us)").unwrap();
        let clan_stall = t.cell("cLAN", "elapsed (us)").unwrap();
        assert!(
            clan_stall - clan_base >= 1_500.0,
            "a 2 ms stall must surface: {clan_stall} vs {clan_base}"
        );
    }

    #[test]
    fn error_arc_accounts_for_every_descriptor() {
        let r = error_reconnect_run(Profile::clan());
        // Every posted send is either completed or flushed as an error —
        // none vanish.
        assert_eq!(r.completed_before + r.flushed, r.posted_before);
        assert!(r.flushed > 0, "the outage must flush in-flight sends");
        assert_eq!(r.conn_failures, 1);
        assert_eq!(r.resent, RECONNECT_TOTAL - r.completed_before);
        assert!(r.server_received >= RECONNECT_TOTAL);
        assert!(r.recovery_us > 0.0);
    }
}
