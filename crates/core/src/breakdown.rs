//! Component breakdown of a single transfer (§3's promise: the benchmarks
//! "identify how much time is spent in each of the components in the
//! implementation, and pinpoint the bottlenecks").
//!
//! Uses the `via` data-path probe to record every stage transition of one
//! message and reports where the microseconds went, per implementation —
//! the table a VIA implementor would read before deciding what to
//! optimize.

use via::{ProbeEvent, Profile, ViId};

use crate::harness::{ping_pong, DtConfig, Pair};
use crate::report::Table;

/// Stage names in pipeline order (tx side then rx side).
pub const STAGES: &[&str] = &[
    "posted",
    "dev_queued",
    "fw_scanned",
    "desc_fetched",
    "translated",
    "first_frag_wire",
    "last_frag_wire",
    "first_frag_arrived",
    "last_frag_arrived",
    "last_frag_landed",
    "recv_completed",
];

/// The recorded one-way timeline of a single message: absolute stage
/// timestamps in microseconds, relative to `posted`.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// `(stage, microseconds after posting)` in stage order; stages an
    /// architecture skips (e.g. `fw_scanned` on M-VIA) are absent.
    pub marks: Vec<(&'static str, f64)>,
}

impl Timeline {
    /// Time between two recorded stages, if both are present.
    pub fn between(&self, from: &str, to: &str) -> Option<f64> {
        let f = self.marks.iter().find(|(s, _)| *s == from)?.1;
        let t = self.marks.iter().find(|(s, _)| *s == to)?.1;
        Some(t - f)
    }

    /// Total recorded span (posting to the last mark).
    pub fn total(&self) -> f64 {
        self.marks.last().map(|(_, t)| *t).unwrap_or(0.0)
    }
}

fn collect(
    tx_events: &[ProbeEvent],
    rx_events: &[ProbeEvent],
    vi_tx: ViId,
    vi_rx: ViId,
    seq: u64,
) -> Timeline {
    let mut marks = Vec::new();
    let mut t0 = None;
    for stage in STAGES {
        let hit = tx_events
            .iter()
            .find(|e| e.vi == vi_tx && e.seq == seq && e.stage == *stage)
            .or_else(|| {
                rx_events
                    .iter()
                    .find(|e| e.vi == vi_rx && e.seq == seq && e.stage == *stage)
            });
        if let Some(e) = hit {
            let at = e.at.as_micros_f64();
            let base = *t0.get_or_insert(at);
            marks.push((*stage, at - base));
        }
    }
    Timeline { marks }
}

/// Record the stage timeline of the `probe_seq`-th message of a one-way
/// stream of `size`-byte messages on `profile`.
pub fn message_timeline(profile: Profile, size: u64, probe_seq: u64) -> Timeline {
    use simkit::{SimDuration, WaitMode};
    use via::{Descriptor, MemAttributes};
    let cfg = DtConfig {
        iters: 4,
        warmup: 0,
        ..DtConfig::base(profile, size)
    };
    let pair = Pair::new(&cfg);
    let total = probe_seq + 1;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    let (rx, tx) = pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            ep.provider.enable_probe();
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            for _ in 0..total {
                ep.vi
                    .post_recv(
                        ctx,
                        Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
            }
            ep.sync(ctx);
            for _ in 0..total {
                let c = ep.vi.recv_wait(ctx, WaitMode::Poll);
                assert!(c.is_ok());
            }
            (ep.provider.take_probe_events(), ep.vi.id())
        },
        move |ctx, ep| {
            let cfg = ccfg;
            ep.provider.enable_probe();
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            for _ in 0..total {
                ep.vi
                    .post_send(
                        ctx,
                        Descriptor::send().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
                let c = ep.vi.send_wait(ctx, WaitMode::Poll);
                assert!(c.is_ok());
                // Space messages so timelines never overlap.
                ctx.sleep(SimDuration::from_millis(2));
            }
            (ep.provider.take_probe_events(), ep.vi.id())
        },
    );
    let (rx_events, vi_rx) = rx;
    let (tx_events, vi_tx) = tx;
    collect(&tx_events, &rx_events, vi_tx, vi_rx, probe_seq)
}

/// Per-component breakdown table of one warm `size`-byte transfer across
/// profiles: each row is the time spent between consecutive recorded
/// stages.
pub fn breakdown_table(profiles: &[Profile], size: u64) -> Table {
    let rows: &[(&str, &str, &str)] = &[
        ("host post + doorbell", "posted", "dev_queued"),
        ("firmware scheduling", "dev_queued", "fw_scanned"),
        ("descriptor fetch", "fw_scanned", "desc_fetched"),
        ("address translation", "desc_fetched", "translated"),
        ("data DMA (first frag)", "translated", "first_frag_wire"),
        ("tx streaming (rest)", "first_frag_wire", "last_frag_wire"),
        (
            "wire + rx to arrival",
            "last_frag_wire",
            "last_frag_arrived",
        ),
        (
            "rx placement (DMA)",
            "last_frag_arrived",
            "last_frag_landed",
        ),
        ("completion delivery", "last_frag_landed", "recv_completed"),
    ];
    let mut t = Table::new(
        format!("Component breakdown of one warm {size} B transfer (us)"),
        profiles.iter().map(|p| p.name.to_string()).collect(),
    );
    // Probe message 2 (0-indexed): caches warm, queues quiet.
    let timelines: Vec<Timeline> = profiles
        .iter()
        .map(|p| message_timeline(p.clone(), size, 2))
        .collect();
    for (label, from, to) in rows {
        let cells: Vec<f64> = timelines
            .iter()
            .map(|tl| tl.between(from, to).unwrap_or(0.0))
            .collect();
        if cells.iter().any(|c| *c != 0.0) {
            t.push(*label, cells);
        }
    }
    t.push(
        "TOTAL (post -> recv completion)",
        timelines.iter().map(Timeline::total).collect(),
    );
    t
}

/// A sanity companion: the probe's end-to-end total must agree with the
/// ping-pong measurement (half RTT) to within the per-iteration framing
/// costs.
pub fn probe_vs_pingpong(profile: Profile, size: u64) -> (f64, f64) {
    let probed = message_timeline(profile.clone(), size, 2).total();
    let pp = ping_pong(&DtConfig {
        iters: 20,
        ..DtConfig::base(profile, size)
    })
    .latency_us;
    (probed, pp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_stages_are_monotone_and_complete_for_offload() {
        let tl = message_timeline(Profile::bvia(), 4096, 2);
        let stages: Vec<&str> = tl.marks.iter().map(|(s, _)| *s).collect();
        for s in [
            "posted",
            "dev_queued",
            "fw_scanned",
            "desc_fetched",
            "translated",
            "first_frag_wire",
            "last_frag_wire",
            "last_frag_arrived",
            "last_frag_landed",
            "recv_completed",
        ] {
            assert!(stages.contains(&s), "missing stage {s}: {stages:?}");
        }
        let times: Vec<f64> = tl.marks.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{tl:?}");
        assert_eq!(tl.marks[0].1, 0.0);
    }

    #[test]
    fn host_emulated_skips_device_stages() {
        let tl = message_timeline(Profile::mvia(), 1024, 2);
        let stages: Vec<&str> = tl.marks.iter().map(|(s, _)| *s).collect();
        // M-VIA has no firmware scan or NIC descriptor fetch/translation
        // stages between dev_queued and the first fragment... the probe
        // records dev_queued (the kernel's software queue) but no
        // fw_scanned/desc_fetched/translated marks.
        assert!(!stages.contains(&"fw_scanned"), "{stages:?}");
        assert!(!stages.contains(&"desc_fetched"), "{stages:?}");
        assert!(!stages.contains(&"translated"), "{stages:?}");
        assert!(stages.contains(&"recv_completed"), "{stages:?}");
    }

    #[test]
    fn breakdown_total_tracks_pingpong_latency() {
        for p in [Profile::bvia(), Profile::clan()] {
            let (probed, pp) = probe_vs_pingpong(p.clone(), 4096);
            // The probe total excludes the receiver's completion check and
            // the next post; allow 20% slack.
            let ratio = probed / pp;
            assert!(
                (0.7..=1.2).contains(&ratio),
                "{}: probe {probed} vs ping-pong {pp}",
                p.name
            );
        }
    }

    #[test]
    fn bvia_bottleneck_is_where_the_paper_says() {
        // For a 4 KiB transfer on BVIA, per-fragment NIC processing + DMA
        // dominates; firmware scheduling is small at 1 VI but visible.
        let t = breakdown_table(&[Profile::bvia()], 4096);
        let fw = t.cell("firmware scheduling", "BVIA").unwrap();
        assert!((1.0..5.0).contains(&fw), "fw {fw}");
        let dma = t.cell("data DMA (first frag)", "BVIA").unwrap();
        assert!(dma > 30.0, "4 KiB over 33 MHz PCI must dominate: {dma}");
    }
}
