//! Programming-model micro-benchmark: the client-server transaction test
//! (§3.3.1). A client sends a fixed-size request and waits for the whole
//! reply before issuing the next request; two distinct buffers are used.
//! The transactions/second figure relates to the RPC/method-call rate a
//! single VI connection can sustain. Reproduces Fig. 7.

use via::Profile;

use crate::harness::{transactions, DtConfig};
use crate::report::{Figure, Series};

/// The request sizes Fig. 7 plots.
pub fn request_sizes() -> Vec<u64> {
    vec![16, 256]
}

/// The reply sizes Fig. 7 sweeps.
pub fn reply_sizes() -> Vec<u64> {
    vec![4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672]
}

/// Transactions/second vs. reply size; one series per (profile, request
/// size), named like the paper's legend ("clan 16", "bvia 256", …).
pub fn transaction_figure(profiles: &[Profile], requests: &[u64], replies: &[u64]) -> Figure {
    let mut fig = Figure::new(
        "Client/server transactions per second (Fig 7)",
        "response bytes",
        "transactions/s",
    );
    for p in profiles {
        for &req in requests {
            let mut s = Series::new(format!("{} {}", p.name.to_lowercase(), req));
            for &rep in replies {
                let cfg = DtConfig {
                    iters: 40,
                    ..DtConfig::base(p.clone(), rep)
                };
                s.push(rep as f64, transactions(&cfg, req, rep));
            }
            fig.push(s);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tps(p: Profile, req: u64, rep: u64) -> f64 {
        let cfg = DtConfig {
            iters: 25,
            ..DtConfig::base(p, rep)
        };
        transactions(&cfg, req, rep)
    }

    #[test]
    fn clan_outperforms_everywhere() {
        // §4.4: "cLAN implementation outperforms BVIA and M-VIA."
        for rep in [4u64, 1024, 28672] {
            let c = tps(Profile::clan(), 16, rep);
            let m = tps(Profile::mvia(), 16, rep);
            let b = tps(Profile::bvia(), 16, rep);
            assert!(
                c > m && c > b,
                "reply {rep}: cLAN {c} vs M-VIA {m}, BVIA {b}"
            );
        }
    }

    #[test]
    fn mvia_vs_bvia_crossover_pattern() {
        // §4.4: "M-VIA outperforms BVIA for short ... messages but is
        // outperformed by BVIA for mid-size messages."
        let m_short = tps(Profile::mvia(), 16, 4);
        let b_short = tps(Profile::bvia(), 16, 4);
        assert!(
            m_short > b_short,
            "short replies: M-VIA {m_short} !> BVIA {b_short}"
        );
        let m_mid = tps(Profile::mvia(), 16, 12288);
        let b_mid = tps(Profile::bvia(), 16, 12288);
        assert!(b_mid > m_mid, "mid replies: BVIA {b_mid} !> M-VIA {m_mid}");
    }

    #[test]
    fn mvia_and_bvia_converge_for_long_replies() {
        // §4.4: "For long reply messages, both M-VIA and BVIA deliver
        // similar performance."
        let m = tps(Profile::mvia(), 16, 28672);
        let b = tps(Profile::bvia(), 16, 28672);
        let ratio = if m > b { m / b } else { b / m };
        // "Similar" in the paper's plot reads as same-order-of-magnitude
        // curves that close the gap seen at mid sizes; our gap at 12 KiB is
        // ~1.35x in BVIA's favor and must not widen further out.
        let m_mid = tps(Profile::mvia(), 16, 12288);
        let b_mid = tps(Profile::bvia(), 16, 12288);
        assert!(
            ratio < 1.8,
            "long replies: M-VIA {m} vs BVIA {b} (ratio {ratio})"
        );
        let _ = (m_mid, b_mid);
    }

    #[test]
    fn larger_requests_cost_throughput() {
        let small = tps(Profile::clan(), 16, 1024);
        let big = tps(Profile::clan(), 256, 1024);
        assert!(big < small, "256 B requests {big} !< 16 B requests {small}");
    }

    #[test]
    fn clan_small_transaction_rate_is_tens_of_thousands() {
        // Fig 7's y-axis peaks around 50-60k transactions/s for cLAN/16 B.
        let c = tps(Profile::clan(), 16, 4);
        assert!((20_000.0..90_000.0).contains(&c), "cLAN 16/4 tps {c}");
    }
}
