//! Programming-model layer benchmark (extension in the paper's §5
//! direction — "micro-benchmarks ... for distributed memory programming
//! model (MPI)"): what does a message-passing layer cost over raw VIA, and
//! where should its eager/rendezvous threshold sit on each implementation?
//!
//! This is the question the paper says VIBe exists to answer for
//! "developers of programming model layers"; here the layer under test is
//! the workspace's own `mpl` crate, built on the same `via` API.

use mpl::{Mpl, MplConfig};
use simkit::Sim;
use via::Profile;

use crate::harness::{paper_sizes, ping_pong, DtConfig};
use crate::report::{Figure, Series};

/// One-way latency (us) of an `mpl` ping-pong of `size` bytes.
pub fn layer_latency(profile: Profile, cfg: MplConfig, size: u64, iters: u32) -> f64 {
    let sim = Sim::new();
    let handles = Mpl::spawn_world(&sim, profile, 2, cfg, 0xBEEF, move |ctx, mut mpl| {
        let cap = size.max(1) + 64;
        let buf = mpl.malloc(cap);
        let mh = mpl.register(ctx, buf, cap);
        let peer = 1 - mpl.rank();
        mpl.barrier(ctx);
        let t0 = ctx.now();
        for _ in 0..iters {
            if mpl.rank() == 0 {
                mpl.send(ctx, peer, 5, buf, mh, size);
                mpl.recv(ctx, peer, 5, buf, mh, cap);
            } else {
                mpl.recv(ctx, peer, 5, buf, mh, cap);
                mpl.send(ctx, peer, 5, buf, mh, size);
            }
        }
        (ctx.now() - t0).as_micros_f64() / (2.0 * iters as f64)
    });
    sim.run_to_completion();
    handles[0].expect_result()
}

/// Layer vs. raw-VIA latency across message sizes, per profile: the
/// "what does your abstraction cost" figure.
pub fn overhead_figure(profiles: &[Profile]) -> Figure {
    let mut fig = Figure::new(
        "MPL: message-passing layer vs raw VIA latency",
        "bytes",
        "one-way latency (us)",
    );
    for p in profiles {
        let mut raw = Series::new(format!("{} raw", p.name));
        let mut layered = Series::new(format!("{} mpl", p.name));
        for &size in &paper_sizes() {
            let r = ping_pong(&DtConfig {
                iters: 20,
                ..DtConfig::base(p.clone(), size)
            });
            raw.push(size as f64, r.latency_us);
            layered.push(
                size as f64,
                layer_latency(p.clone(), MplConfig::default(), size, 20),
            );
        }
        fig.push(raw);
        fig.push(layered);
    }
    fig
}

/// Latency at a fixed size while sweeping the eager threshold across it:
/// the knob a layer implementor tunes with VIBe data.
pub fn threshold_figure(profile: Profile, size: u64) -> Figure {
    let mut fig = Figure::new(
        format!(
            "MPL: eager-threshold sweep around a {size} B message ({})",
            profile.name
        ),
        "eager threshold (bytes)",
        "one-way latency (us)",
    );
    let mut s = Series::new(profile.name);
    for &thr in &[1024u32, 2048, 4096, 8192, 16384, 32768] {
        let cfg = MplConfig {
            eager_threshold: thr,
            ..Default::default()
        };
        s.push(thr as f64, layer_latency(profile.clone(), cfg, size, 20));
    }
    fig.push(s);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_costs_more_than_raw_for_eager_messages() {
        // The bounce copies and tag matching are not free.
        let raw = ping_pong(&DtConfig {
            iters: 16,
            ..DtConfig::base(Profile::clan(), 1024)
        })
        .latency_us;
        let layered = layer_latency(Profile::clan(), MplConfig::default(), 1024, 16);
        assert!(layered > raw, "layered {layered} !> raw {raw}");
        // ... but the overhead must stay modest (well under 2x).
        assert!(layered < raw * 2.0, "layered {layered} vs raw {raw}");
    }

    #[test]
    fn rendezvous_avoids_copies_for_large_messages() {
        // At 28 KiB the layer's rendezvous path is zero-copy on both
        // sides; its overhead over raw VIA must be a small constant (the
        // RTS/CTS handshake), not proportional to the size.
        let raw = ping_pong(&DtConfig {
            iters: 12,
            ..DtConfig::base(Profile::clan(), 28672)
        })
        .latency_us;
        let layered = layer_latency(Profile::clan(), MplConfig::default(), 28672, 12);
        let overhead = layered - raw;
        assert!(overhead > 0.0, "layered {layered} vs raw {raw}");
        assert!(
            overhead < 40.0,
            "rendezvous overhead should be a handshake, got {overhead} us"
        );
    }

    #[test]
    fn threshold_matters_where_fig5_says() {
        // On BVIA a 16 KiB message sent eagerly pays two copies but keeps
        // translation caches hot; rendezvous is zero-copy but touches
        // fresh user pages. The sweep must show a real difference.
        let fig = threshold_figure(Profile::bvia(), 16384);
        let s = &fig.series[0];
        let eager = s.at(32768.0).unwrap(); // threshold above size: eager
        let rendezvous = s.at(1024.0).unwrap(); // threshold below: rendezvous
        assert!(
            (eager - rendezvous).abs() > 5.0,
            "threshold choice must matter: eager {eager} vs rendezvous {rendezvous}"
        );
    }
}
