//! Non-data-transfer micro-benchmarks (§3.1): the cost of creating and
//! destroying VIs, establishing and tearing down connections, registering
//! and deregistering memory, and creating/destroying completion queues.
//! Reproduces Table 1 and Figs. 1–2.

use fabric::NodeId;
use simkit::{Sim, SimDuration};
use via::{Cluster, Discriminator, MemAttributes, Profile, ViAttributes};

use crate::report::{Series, Table};

/// Per-implementation non-data-transfer costs, in microseconds.
#[derive(Clone, Copy, Debug)]
pub struct NonDataCosts {
    /// `VipCreateVi`.
    pub create_vi_us: f64,
    /// `VipDestroyVi`.
    pub destroy_vi_us: f64,
    /// Client-observed connection establishment.
    pub connect_us: f64,
    /// Initiator-observed teardown.
    pub teardown_us: f64,
    /// `VipCQCreate`.
    pub create_cq_us: f64,
    /// `VipCQDestroy`.
    pub destroy_cq_us: f64,
}

/// Measure the six Table-1 operations for one profile. `iters` repetitions
/// are averaged (the simulation is deterministic, so few are needed).
pub fn measure(profile: Profile, iters: u32) -> NonDataCosts {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile, 2, 0xADD);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    // Server side: accept/teardown peer for connection measurements.
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            for _ in 0..iters {
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                // Wait for the client's disconnect before re-accepting.
                while matches!(vi.conn_state(), via::ConnState::Connected { .. }) {
                    ctx.sleep(SimDuration::from_micros(20));
                }
            }
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let us = |d: SimDuration| d.as_micros_f64();
            let mut create = 0.0;
            let mut destroy = 0.0;
            let mut connect = 0.0;
            let mut teardown = 0.0;
            let mut create_cq = 0.0;
            let mut destroy_cq = 0.0;
            for _ in 0..iters {
                let t = ctx.now();
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                create += us(ctx.now() - t);

                let t = ctx.now();
                pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                    .unwrap();
                connect += us(ctx.now() - t);

                let t = ctx.now();
                pa.disconnect(ctx, &vi).unwrap();
                teardown += us(ctx.now() - t);

                let t = ctx.now();
                pa.destroy_vi(ctx, vi).unwrap();
                destroy += us(ctx.now() - t);

                let t = ctx.now();
                let cq = pa.create_cq(ctx, 64).unwrap();
                create_cq += us(ctx.now() - t);

                let t = ctx.now();
                pa.destroy_cq(ctx, cq).unwrap();
                destroy_cq += us(ctx.now() - t);

                // Give the server time to cycle back into accept.
                ctx.sleep(SimDuration::from_micros(200));
            }
            let n = iters as f64;
            NonDataCosts {
                create_vi_us: create / n,
                destroy_vi_us: destroy / n,
                connect_us: connect / n,
                teardown_us: teardown / n,
                create_cq_us: create_cq / n,
                destroy_cq_us: destroy_cq / n,
            }
        })
    };
    sim.run_to_completion();
    ch.expect_result()
}

/// Regenerate Table 1 over the given profiles.
pub fn table1(profiles: &[Profile], iters: u32) -> Table {
    let mut t = Table::new(
        "Table 1: non-data transfer micro-benchmarks (us)",
        profiles.iter().map(|p| p.name.to_string()).collect(),
    );
    let costs: Vec<NonDataCosts> = profiles.iter().map(|p| measure(p.clone(), iters)).collect();
    t.push(
        "Creating VI",
        costs.iter().map(|c| c.create_vi_us).collect(),
    );
    t.push(
        "Destroying VI",
        costs.iter().map(|c| c.destroy_vi_us).collect(),
    );
    t.push(
        "Establishing Connection",
        costs.iter().map(|c| c.connect_us).collect(),
    );
    t.push(
        "Tearing Down Connection",
        costs.iter().map(|c| c.teardown_us).collect(),
    );
    t.push(
        "Creating CQ",
        costs.iter().map(|c| c.create_cq_us).collect(),
    );
    t.push(
        "Destroying CQ",
        costs.iter().map(|c| c.destroy_cq_us).collect(),
    );
    t
}

/// Buffer lengths swept by Figs. 1–2 (bytes).
pub fn registration_sizes() -> Vec<u64> {
    vec![4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672]
}

/// Measure registration (Fig 1) and deregistration (Fig 2) cost, in
/// microseconds, over `sizes` for one profile.
pub fn registration_costs(profile: Profile, sizes: &[u64]) -> (Series, Series) {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile.clone(), 2, 0xF16);
    let pa = cluster.provider(0);
    let sizes: Vec<u64> = sizes.to_vec();
    let h = {
        let pa = pa.clone();
        sim.spawn("meas", Some(pa.cpu()), move |ctx| {
            let mut reg = Vec::new();
            let mut dereg = Vec::new();
            for &sz in &sizes {
                let va = pa.malloc(sz.max(1));
                let t = ctx.now();
                let mh = pa
                    .register_mem(ctx, va, sz.max(1), MemAttributes::default())
                    .unwrap();
                reg.push((sz as f64, (ctx.now() - t).as_micros_f64()));
                let t = ctx.now();
                pa.deregister_mem(ctx, mh).unwrap();
                dereg.push((sz as f64, (ctx.now() - t).as_micros_f64()));
            }
            (reg, dereg)
        })
    };
    sim.run_to_completion();
    let (reg, dereg) = h.expect_result();
    let mut s_reg = Series::new(profile.name);
    let mut s_dereg = Series::new(profile.name);
    s_reg.points = reg;
    s_dereg.points = dereg;
    (s_reg, s_dereg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_anchors() {
        let t = table1(&Profile::paper_trio(), 3);
        // Calibrated within 10% of the paper's Table 1 for the big costs.
        let near = |got: f64, want: f64, tol: f64| {
            assert!(
                (got - want).abs() <= want * tol,
                "got {got}, want {want} +- {}%",
                tol * 100.0
            );
        };
        near(t.cell("Creating VI", "M-VIA").unwrap(), 93.0, 0.10);
        near(t.cell("Creating VI", "BVIA").unwrap(), 28.0, 0.10);
        near(t.cell("Creating VI", "cLAN").unwrap(), 3.0, 0.10);
        near(
            t.cell("Establishing Connection", "M-VIA").unwrap(),
            6465.0,
            0.10,
        );
        near(
            t.cell("Establishing Connection", "BVIA").unwrap(),
            496.0,
            0.10,
        );
        near(
            t.cell("Establishing Connection", "cLAN").unwrap(),
            2454.0,
            0.10,
        );
        near(t.cell("Creating CQ", "BVIA").unwrap(), 206.0, 0.10);
        near(
            t.cell("Tearing Down Connection", "cLAN").unwrap(),
            155.0,
            0.10,
        );
        near(t.cell("Destroying CQ", "M-VIA").unwrap(), 8.44, 0.15);
    }

    #[test]
    fn registration_shape_matches_fig1() {
        let sizes = registration_sizes();
        let (m, _) = registration_costs(Profile::mvia(), &sizes);
        let (b, _) = registration_costs(Profile::bvia(), &sizes);
        // BVIA costlier below 20 KiB; M-VIA overtakes by 28 KiB (Fig 1).
        assert!(b.at(4096.0).unwrap() > m.at(4096.0).unwrap());
        assert!(b.at(12288.0).unwrap() > m.at(12288.0).unwrap());
        assert!(m.at(28672.0).unwrap() > b.at(28672.0).unwrap());
    }

    #[test]
    fn deregistration_is_cheap_and_flat() {
        let (r, d) = registration_costs(Profile::bvia(), &[4, 28672, 32 * 1024 * 1024]);
        // Fig 2 / §4.2: deregistration stays small even for 32 MB regions.
        assert!(d.at(4.0).unwrap() < 16.0);
        assert!(d.last_y().unwrap() < 50.0);
        // ... and much cheaper than registration at the same size.
        assert!(d.at(28672.0).unwrap() < r.at(28672.0).unwrap());
    }
}
