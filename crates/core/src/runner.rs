//! The deterministic parallel suite runner.
//!
//! Every VIBe experiment is a set of independent discrete-event
//! simulations, so the suite parallelizes embarrassingly well — *if* the
//! artifacts come out byte-identical at any worker count. This module
//! makes that hold by construction:
//!
//! 1. Each experiment declares a **plan**: a list of self-contained
//!    [`Job`]s in canonical order, each a closure over the same leaf
//!    builders the serial path uses, narrowed to one slice of the sweep
//!    (one profile, one sweep point, one table). Each job restates the
//!    base seed its measurements derive from ([`crate::harness::BASE_SEED`]);
//!    since RNG streams are content-keyed (`SimRng::derive(seed, label)`),
//!    no job can observe *when* or *where* another job ran.
//! 2. Workers pull jobs from a shared queue (an atomic cursor — the
//!    degenerate but optimal form of work stealing for independent
//!    one-shot jobs) inside a [`std::thread::scope`], so the pool needs no
//!    `'static` bounds and no lingering threads.
//! 3. Job outputs are reassembled **in canonical job order** via
//!    [`merge_artifacts`], which replays the exact append order of the
//!    serial builders — so the merged artifact set is byte-identical to
//!    the serial one.
//!
//! With `workers <= 1` ([`run_suite`]'s serial fallback, what
//! `VIBE_JOBS=1` selects) no pool is spun up at all: each experiment's
//! `produce` runs directly on the calling thread — the exact pre-parallel
//! code path CI's golden comparison pins.
//!
//! The runner also harvests the per-thread scheduler telemetry simkit
//! maintains ([`thread_events`], [`thread_pool_stats`]) to attribute
//! wall-clock, event throughput, and event-arena churn to each job —
//! surfaced as the X-PAR artifact ([`SuiteRun::xpar_artifacts`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use simkit::{
    thread_events, thread_fuse_stats, thread_pool_stats, DefuseCause, FuseTally, PoolStats,
};

use crate::report::{merge_artifacts, Artifact, Table};
use crate::suite::{render_csv, render_json, render_text, Experiment};

/// One self-contained unit of suite work: a labeled closure producing a
/// slice of an experiment's artifacts.
pub struct Job {
    label: String,
    seed: u64,
    run: Box<dyn FnOnce() -> Vec<Artifact> + Send>,
}

impl Job {
    /// Package a closure as a job. `label` names the slice (for reports);
    /// `seed` is the base seed the job's measurements derive their RNG
    /// streams from (restated here so the seed-per-job discipline is
    /// visible in the plan, not buried in leaf defaults).
    pub fn new(
        label: impl Into<String>,
        seed: u64,
        run: impl FnOnce() -> Vec<Artifact> + Send + 'static,
    ) -> Job {
        Job {
            label: label.into(),
            seed,
            run: Box::new(run),
        }
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The base RNG seed the job's measurements derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Execute the job, consuming it.
    pub fn run(self) -> Vec<Artifact> {
        (self.run)()
    }
}

/// Telemetry for one executed job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Id of the experiment the job belongs to.
    pub experiment: &'static str,
    /// The job's label within the experiment plan.
    pub label: String,
    /// Wall-clock the job took on its worker.
    pub wall: Duration,
    /// Simulation events the job executed.
    pub events: u64,
    /// Event-arena churn attributed to the job.
    pub pool: PoolStats,
    /// Fused-fast-path ledger attributed to the job (attempts, hits,
    /// de-fuse cause breakdown).
    pub fuse: FuseTally,
}

/// One experiment's reassembled output plus its serial-equivalent cost.
pub struct ExperimentRun {
    /// Experiment id ("T1", "F3", …).
    pub id: &'static str,
    /// Experiment title.
    pub title: &'static str,
    /// The merged artifact set — byte-identical to the serial build.
    pub artifacts: Vec<Artifact>,
    /// Sum of the experiment's job wall-clocks (serial-equivalent cost).
    pub wall: Duration,
    /// Simulation events across the experiment's jobs.
    pub events: u64,
}

impl ExperimentRun {
    /// Paper-style text rendering (same code path as [`Experiment::run_text`]).
    pub fn run_text(&self) -> String {
        render_text(&self.artifacts)
    }

    /// JSON rendering (same code path as [`Experiment::run_json`]).
    pub fn run_json(&self) -> String {
        render_json(self.id, self.title, &self.artifacts)
    }

    /// CSV rendering (same code path as [`Experiment::run_csv`]).
    pub fn run_csv(&self) -> Vec<(String, String)> {
        render_csv(self.id, &self.artifacts)
    }
}

/// The outcome of one suite invocation.
pub struct SuiteRun {
    /// Per-experiment merged outputs, in registry order.
    pub experiments: Vec<ExperimentRun>,
    /// Per-job telemetry, in canonical job order.
    pub jobs: Vec<JobReport>,
    /// Worker threads used (1 = serial fallback, no pool).
    pub workers: usize,
    /// End-to-end wall-clock of the whole run.
    pub wall: Duration,
    /// Event-arena churn aggregated over every job.
    pub pool: PoolStats,
    /// Sharded-engine runs recorded by this suite's jobs (empty when every
    /// experiment ran on a serial engine).
    pub shard_runs: Vec<ShardRunRecord>,
    /// Fabric-robustness counters accumulated by this suite's jobs.
    pub fabric_health: FabricHealth,
}

impl SuiteRun {
    /// Total simulation events across all jobs.
    pub fn total_events(&self) -> u64 {
        self.jobs.iter().map(|j| j.events).sum()
    }

    /// Serial-equivalent cost: the sum of all job wall-clocks — what one
    /// worker would have spent executing the same jobs back to back.
    pub fn serial_wall(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Parallel speedup: serial-equivalent cost over actual wall-clock.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.serial_wall().as_secs_f64() / wall
        }
    }

    /// The X-PAR artifact set: per-experiment wall-clock / event
    /// throughput plus a run summary (workers, speedup, arena hit rates).
    ///
    /// Deliberately **not** a golden: every cell is host wall-clock
    /// dependent. It exists to make the suite's performance trajectory
    /// visible per run / per PR.
    pub fn xpar_artifacts(&self) -> Vec<Artifact> {
        let mut per_exp = Table::new(
            "X-PAR: per-experiment wall-clock and event throughput",
            vec![
                "jobs".to_string(),
                "wall (ms)".to_string(),
                "events".to_string(),
                "Mevents/s".to_string(),
            ],
        );
        for e in &self.experiments {
            let njobs = self.jobs.iter().filter(|j| j.experiment == e.id).count();
            let secs = e.wall.as_secs_f64();
            let meps = if secs > 0.0 {
                e.events as f64 / secs / 1e6
            } else {
                0.0
            };
            per_exp.push(e.id, vec![njobs as f64, secs * 1e3, e.events as f64, meps]);
        }
        let mut summary = Table::new("X-PAR: suite summary", vec!["value".to_string()]);
        let wall = self.wall.as_secs_f64();
        let events = self.total_events();
        summary.push("workers", vec![self.workers as f64]);
        summary.push("jobs", vec![self.jobs.len() as f64]);
        summary.push("suite wall (ms)", vec![wall * 1e3]);
        summary.push(
            "serial-equivalent wall (ms)",
            vec![self.serial_wall().as_secs_f64() * 1e3],
        );
        summary.push("speedup", vec![self.speedup()]);
        summary.push("events", vec![events as f64]);
        summary.push(
            "Mevents/s (suite)",
            vec![if wall > 0.0 {
                events as f64 / wall / 1e6
            } else {
                0.0
            }],
        );
        summary.push("events pooled", vec![self.pool.pooled() as f64]);
        summary.push("events boxed", vec![self.pool.boxed as f64]);
        summary.push("pool hit rate (%)", vec![self.pool.pool_hit_rate() * 100.0]);
        summary.push(
            "slot reuse rate (%)",
            vec![self.pool.slot_reuse_rate() * 100.0],
        );
        summary.push("same-time batches", vec![self.pool.batches as f64]);
        // The fused-path table: where the fast path engaged and why it
        // missed, per experiment. Deterministic in serial runs (the
        // ledger counts logical protocol decisions, not wall-clock), but
        // kept out of the goldens with the rest of X-PAR since job
        // attribution shifts with worker count.
        let mut fuse_tbl = Table::new(
            "X-PAR: fused fast path (hits and de-fuse causes)",
            ["attempts", "hits", "hit rate (%)"]
                .into_iter()
                .map(String::from)
                .chain(DefuseCause::ALL.iter().map(|c| c.name().to_string()))
                .collect(),
        );
        for e in &self.experiments {
            let mut fuse = FuseTally::default();
            for j in self.jobs.iter().filter(|j| j.experiment == e.id) {
                fuse.merge(&j.fuse);
            }
            let mut row = vec![
                fuse.attempts as f64,
                fuse.hits as f64,
                fuse.hit_rate() * 100.0,
            ];
            row.extend(fuse.causes().map(|(_, n)| n as f64));
            fuse_tbl.push(e.id, row);
        }
        let mut artifacts = vec![per_exp.into(), summary.into(), fuse_tbl.into()];
        if !self.shard_runs.is_empty() {
            let mut shard_tbl = Table::new(
                "X-PAR: sharded-engine balance (per shard)",
                vec![
                    "shards".to_string(),
                    "horizon grants".to_string(),
                    "events".to_string(),
                    "msgs sent".to_string(),
                    "msgs received".to_string(),
                    "barrier stall (ms)".to_string(),
                ],
            );
            for rec in &self.shard_runs {
                for (i, s) in rec.per_shard.iter().enumerate() {
                    shard_tbl.push(
                        format!("{}/s{i}", rec.label),
                        vec![
                            rec.shards as f64,
                            rec.rounds as f64,
                            s.events as f64,
                            s.sent as f64,
                            s.received as f64,
                            s.stall.as_secs_f64() * 1e3,
                        ],
                    );
                }
            }
            artifacts.push(shard_tbl.into());
        }
        artifacts
    }
}

/// Worker count selected by the environment: `VIBE_JOBS` if set (must be
/// a positive integer), else the machine's available parallelism.
pub fn default_workers() -> usize {
    match std::env::var("VIBE_JOBS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("VIBE_JOBS must be a positive integer, got '{v}'")),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Engine shard count selected by the environment: `VIBE_SHARDS` if set
/// (must be a positive integer), else 1 — the serial engine, the exact
/// path the committed goldens pin. Experiments that drive a sharded
/// engine (X-SHARD) read this; their artifacts are byte-identical at any
/// value, which CI enforces.
pub fn default_shards() -> usize {
    match std::env::var("VIBE_SHARDS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| panic!("VIBE_SHARDS must be a positive integer, got '{v}'")),
        Err(_) => 1,
    }
}

/// Fuse knob selected by the environment: `VIBE_FUSE=0` disables the
/// fused message-lifecycle fast path, anything else (or unset) leaves it
/// on. The committed goldens are byte-identical either way — CI runs a
/// `VIBE_FUSE=0` leg to enforce that — so the knob only trades simulator
/// wall-clock for an event-by-event general path (useful when bisecting
/// a suspected fusing bug).
pub fn default_fuse() -> bool {
    std::env::var("VIBE_FUSE").map_or(true, |v| v.trim() != "0")
}

/// Telemetry from one sharded-engine run, recorded by workloads that
/// drive a [`simkit::ShardedSim`] so the X-PAR artifact can surface
/// shard balance. One horizon grant = one synchronization round (every
/// shard receives one granted horizon per round).
#[derive(Clone, Debug)]
pub struct ShardRunRecord {
    /// Workload label ("mvia-ring", …).
    pub label: String,
    /// Shard count the engine ran with.
    pub shards: usize,
    /// Synchronization rounds == horizon grants per shard.
    pub rounds: u64,
    /// Per-shard engine telemetry for the run.
    pub per_shard: Vec<simkit::ShardStats>,
}

static SHARD_RUNS: std::sync::Mutex<Vec<ShardRunRecord>> = std::sync::Mutex::new(Vec::new());

/// Record one sharded-engine run for the next [`SuiteRun::xpar_artifacts`]
/// snapshot. Serial runs (one shard, zero rounds) are worth recording
/// too: they pin the bypass path's zero barrier-stall in the artifact.
pub fn record_shard_run(rec: ShardRunRecord) {
    SHARD_RUNS.lock().unwrap().push(rec);
}

/// Drain every recorded sharded-engine run, sorted by label for a
/// worker-schedule-independent order.
pub fn take_shard_runs() -> Vec<ShardRunRecord> {
    let mut runs = std::mem::take(&mut *SHARD_RUNS.lock().unwrap());
    runs.sort_by(|a, b| a.label.cmp(&b.label));
    runs
}

/// Fabric-robustness counters accumulated across a suite run's workloads
/// — pause-storm watchdog trips and fault-window frame drops. Surfaced
/// as the runner binary's `[fabric: ...]` summary line so a PR diff shows
/// at a glance when the suite's fault exposure changed. Sums are
/// order-independent, so the totals are identical at any `VIBE_JOBS`
/// worker count (each workload records exactly once whether it ran on
/// the serial `produce` path or as a plan job).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricHealth {
    /// Pause-storm watchdog trips across every recorded run.
    pub storm_trips: u64,
    /// Frames dropped by switch/trunk/node fault windows (FIFO flushes,
    /// dead-element refusals, no-route drops) across every recorded run.
    pub fault_dropped: u64,
    /// Node-scoped crash wipes (node_down + nic_reset window opens)
    /// across every recorded run.
    pub node_crashes: u64,
    /// Session-layer channels that survived at least one reconnect
    /// (journal replay + dedup) across every recorded run.
    pub sessions_recovered: u64,
}

static FABRIC_HEALTH: std::sync::Mutex<FabricHealth> = std::sync::Mutex::new(FabricHealth {
    storm_trips: 0,
    fault_dropped: 0,
    node_crashes: 0,
    sessions_recovered: 0,
});

/// Accumulate one run's fabric-robustness counters for the suite summary.
pub fn record_fabric_health(storm_trips: u64, fault_dropped: u64) {
    let mut h = FABRIC_HEALTH.lock().unwrap();
    h.storm_trips += storm_trips;
    h.fault_dropped += fault_dropped;
}

/// Accumulate one run's node-crash / session-recovery counters for the
/// suite summary (the `node_crashes=… sessions_recovered=…` half of the
/// `[fabric: ...]` roll-up line). Sums are order-independent, so the
/// totals are deterministic at any worker/shard/fuse setting.
pub fn record_crash_health(node_crashes: u64, sessions_recovered: u64) {
    let mut h = FABRIC_HEALTH.lock().unwrap();
    h.node_crashes += node_crashes;
    h.sessions_recovered += sessions_recovered;
}

/// Drain the accumulated fabric-robustness counters.
pub fn take_fabric_health() -> FabricHealth {
    std::mem::take(&mut *FABRIC_HEALTH.lock().unwrap())
}

struct JobOutcome {
    artifacts: Vec<Artifact>,
    wall: Duration,
    events: u64,
    pool: PoolStats,
    fuse: FuseTally,
}

fn execute(job: Job) -> JobOutcome {
    let ev0 = thread_events();
    let pool0 = thread_pool_stats();
    let fuse0 = thread_fuse_stats();
    let t0 = Instant::now();
    let artifacts = job.run();
    JobOutcome {
        artifacts,
        wall: t0.elapsed(),
        events: thread_events() - ev0,
        pool: thread_pool_stats().delta_since(&pool0),
        fuse: thread_fuse_stats().delta_since(&fuse0),
    }
}

/// Run a set of experiments on `workers` threads and reassemble the
/// artifacts deterministically (see the module docs for why the output is
/// byte-identical at any worker count).
pub fn run_suite(experiments: Vec<Experiment>, workers: usize) -> SuiteRun {
    let t0 = Instant::now();
    // Drop stale sharded-engine and fabric-health records from earlier
    // runs in this process so the snapshots cover exactly this suite's
    // jobs.
    drop(take_shard_runs());
    let _ = take_fabric_health();
    if workers <= 1 {
        // Serial fallback: the exact pre-parallel path — `produce` on the
        // calling thread, no plan, no pool. CI pins goldens in this mode.
        let mut runs = Vec::with_capacity(experiments.len());
        let mut jobs = Vec::with_capacity(experiments.len());
        let mut pool = PoolStats::zero();
        for e in experiments {
            let out = execute(Job::new(
                format!("{}/serial", e.id),
                crate::harness::BASE_SEED,
                e.produce,
            ));
            pool.merge(&out.pool);
            jobs.push(JobReport {
                experiment: e.id,
                label: format!("{}/serial", e.id),
                wall: out.wall,
                events: out.events,
                pool: out.pool,
                fuse: out.fuse,
            });
            runs.push(ExperimentRun {
                id: e.id,
                title: e.title,
                artifacts: out.artifacts,
                wall: out.wall,
                events: out.events,
            });
        }
        return SuiteRun {
            experiments: runs,
            jobs,
            workers: 1,
            wall: t0.elapsed(),
            pool,
            shard_runs: take_shard_runs(),
            fabric_health: take_fabric_health(),
        };
    }

    // Flatten every experiment's plan into one canonical job list.
    let mut exp_of_job: Vec<usize> = Vec::new();
    let mut slots: Vec<Mutex<Option<Job>>> = Vec::new();
    for (ei, e) in experiments.iter().enumerate() {
        for job in (e.plan)() {
            exp_of_job.push(ei);
            slots.push(Mutex::new(Some(job)));
        }
    }
    let labels: Vec<String> = slots
        .iter()
        .map(|s| {
            s.lock()
                .as_ref()
                .expect("job present before run")
                .label()
                .to_string()
        })
        .collect();
    let results: Vec<Mutex<Option<JobOutcome>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers.min(slots.len()).max(1) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(slot) = slots.get(i) else { break };
                let job = slot.lock().take().expect("job claimed twice");
                *results[i].lock() = Some(execute(job));
            });
        }
    });

    let outcomes: Vec<JobOutcome> = results
        .into_iter()
        .map(|m| m.into_inner().expect("worker pool left a job unexecuted"))
        .collect();

    let mut pool = PoolStats::zero();
    let mut jobs = Vec::with_capacity(outcomes.len());
    let mut per_exp_parts: Vec<Vec<Vec<Artifact>>> =
        experiments.iter().map(|_| Vec::new()).collect();
    let mut per_exp_wall: Vec<Duration> = vec![Duration::ZERO; experiments.len()];
    let mut per_exp_events: Vec<u64> = vec![0; experiments.len()];
    for ((out, ei), label) in outcomes.into_iter().zip(exp_of_job).zip(labels) {
        pool.merge(&out.pool);
        per_exp_wall[ei] += out.wall;
        per_exp_events[ei] += out.events;
        jobs.push(JobReport {
            experiment: experiments[ei].id,
            label,
            wall: out.wall,
            events: out.events,
            pool: out.pool,
            fuse: out.fuse,
        });
        per_exp_parts[ei].push(out.artifacts);
    }

    let runs: Vec<ExperimentRun> = experiments
        .iter()
        .zip(per_exp_parts)
        .zip(per_exp_wall.iter().zip(&per_exp_events))
        .map(|((e, parts), (wall, events))| ExperimentRun {
            id: e.id,
            title: e.title,
            artifacts: merge_artifacts(parts),
            wall: *wall,
            events: *events,
        })
        .collect();

    SuiteRun {
        experiments: runs,
        jobs,
        workers,
        wall: t0.elapsed(),
        pool,
        shard_runs: take_shard_runs(),
        fabric_health: take_fabric_health(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::find;

    #[test]
    fn default_workers_reads_env_or_parallelism() {
        // Can't mutate the environment safely in a threaded test binary;
        // just assert the fallback is sane.
        assert!(default_workers() >= 1);
    }

    #[test]
    fn job_carries_label_and_seed() {
        let j = Job::new("T1/cLAN", 0x5EED, Vec::new);
        assert_eq!(j.label(), "T1/cLAN");
        assert_eq!(j.seed(), 0x5EED);
        assert!(j.run().is_empty());
    }

    #[test]
    fn single_experiment_parallel_matches_serial() {
        // The cheapest registry entry with a multi-job plan: X-SCHED.
        let serial = find("X-SCHED").unwrap().run_json();
        let run = run_suite(vec![find("X-SCHED").unwrap()], 4);
        assert_eq!(run.experiments.len(), 1);
        assert_eq!(run.experiments[0].run_json(), serial);
        assert!(run.jobs.len() > 1, "X-SCHED should decompose");
        assert!(run.total_events() > 0);
    }

    #[test]
    fn serial_fallback_reports_one_job_per_experiment() {
        let run = run_suite(vec![find("CQ").unwrap()], 1);
        assert_eq!(run.workers, 1);
        assert_eq!(run.jobs.len(), 1);
        assert_eq!(run.jobs[0].label, "CQ/serial");
        assert!(
            run.jobs[0].events > 0,
            "events attributed via thread counter"
        );
        assert!(run.pool.pooled() + run.pool.boxed > 0);
        let xpar = run.xpar_artifacts();
        assert_eq!(xpar.len(), 3);
        assert!(xpar[0].title().starts_with("X-PAR"));
        assert!(xpar[2].title().contains("fused fast path"));
    }

    #[test]
    fn fuse_ledger_attributed_to_jobs() {
        let run = run_suite(vec![find("CQ").unwrap()], 1);
        let fuse = &run.jobs[0].fuse;
        assert_eq!(
            fuse.attempts,
            fuse.hits + fuse.defused(),
            "per-job fuse ledger must balance: {fuse:?}"
        );
        assert!(
            fuse.attempts > 0,
            "CQ posts sends, so the guard must have been evaluated (even \
             VIBE_FUSE=0 runs count attempts, as Disabled de-fuses)"
        );
    }
}
