//! Impact of multiple VIs (§3.2.4): the base tests with a varying number
//! of VIs open on each node. Berkeley VIA's firmware "polls a data
//! structure containing the send descriptors for all VIs", so its latency
//! grows with the VI count (Fig. 6); implementations with hardware
//! doorbell FIFOs or host-side emulation are flat.

use via::Profile;

use crate::harness::{bandwidth, ping_pong, DtConfig};
use crate::report::{Figure, Series};

/// The VI counts Fig. 6 sweeps.
pub fn vi_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Latency vs. message size, one series per active-VI count.
pub fn vi_latency_figure(profile: Profile, counts: &[usize], sizes: &[u64]) -> Figure {
    let mut fig = Figure::new(
        format!("{}: latency vs number of active VIs (Fig 6)", profile.name),
        "bytes",
        "one-way latency (us)",
    );
    for &n in counts {
        let mut s = Series::new(format!("{n} VIs"));
        for &size in sizes {
            let cfg = DtConfig {
                iters: 30,
                active_vis: n,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).latency_us);
        }
        fig.push(s);
    }
    fig
}

/// Bandwidth vs. message size, one series per active-VI count.
pub fn vi_bandwidth_figure(profile: Profile, counts: &[usize], sizes: &[u64]) -> Figure {
    let mut fig = Figure::new(
        format!(
            "{}: bandwidth vs number of active VIs (Fig 6)",
            profile.name
        ),
        "bytes",
        "bandwidth (MB/s)",
    );
    for &n in counts {
        let mut s = Series::new(format!("{n} VIs"));
        for &size in sizes {
            let cfg = DtConfig {
                iters: 192,
                active_vis: n,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, bandwidth(&cfg).mbps);
        }
        fig.push(s);
    }
    fig
}

/// Receiver CPU utilization (%) vs. message size per VI count, blocking
/// waits (the TR companion panel): the firmware scan lengthens each
/// transfer without consuming host CPU, so utilization *drops* as VIs
/// accumulate on a polling-firmware implementation.
pub fn vi_cpu_figure(profile: Profile, counts: &[usize], sizes: &[u64]) -> Figure {
    let mut fig = Figure::new(
        format!(
            "{}: CPU utilization vs number of active VIs (TR)",
            profile.name
        ),
        "bytes",
        "CPU utilization (%)",
    );
    for &n in counts {
        let mut s = Series::new(format!("{n} VIs"));
        for &size in sizes {
            let cfg = DtConfig {
                iters: 30,
                active_vis: n,
                wait: simkit::WaitMode::Block,
                ..DtConfig::base(profile.clone(), size)
            };
            s.push(size as f64, ping_pong(&cfg).client_util * 100.0);
        }
        fig.push(s);
    }
    fig
}

/// Added one-way latency per extra VI (the Fig 6 slope) at `size` bytes.
pub fn latency_slope_per_vi(profile: Profile, size: u64) -> f64 {
    let lat = |n| {
        ping_pong(&DtConfig {
            iters: 30,
            active_vis: n,
            ..DtConfig::base(profile.clone(), size)
        })
        .latency_us
    };
    (lat(32) - lat(1)) / 31.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bvia_latency_grows_with_vi_count() {
        // §4.3.4: "with increase in the number of VIs, the latency of
        // messages increases significantly."
        let fig = vi_latency_figure(Profile::bvia(), &[1, 8, 32], &[256]);
        let l1 = fig.series("1 VIs").unwrap().at(256.0).unwrap();
        let l8 = fig.series("8 VIs").unwrap().at(256.0).unwrap();
        let l32 = fig.series("32 VIs").unwrap().at(256.0).unwrap();
        assert!(l8 > l1 + 3.0, "8 VIs {l8} vs 1 VI {l1}");
        assert!(l32 > l8 + 10.0, "32 VIs {l32} vs 8 VIs {l8}");
    }

    #[test]
    fn bvia_bandwidth_drops_with_vi_count() {
        // §4.3.4: "The impact of number of active VIs on bandwidth is also
        // significant." Small messages are doorbell-bound, so that is
        // where the scan delay bites.
        let fig = vi_bandwidth_figure(Profile::bvia(), &[1, 32], &[1024]);
        let b1 = fig.series("1 VIs").unwrap().at(1024.0).unwrap();
        let b32 = fig.series("32 VIs").unwrap().at(1024.0).unwrap();
        assert!(b32 < b1 * 0.8, "32 VIs {b32} must be well below 1 VI {b1}");
    }

    #[test]
    fn mvia_and_clan_are_flat_in_vi_count() {
        // §4.3.4: "The results for M-VIA and cLAN do not show any
        // significant change in the presence of multiple active VIs."
        for p in [Profile::mvia(), Profile::clan()] {
            let slope = latency_slope_per_vi(p.clone(), 256);
            assert!(
                slope.abs() < 0.05,
                "{} slope {slope} us/VI should be ~0",
                p.name
            );
        }
    }

    #[test]
    fn cpu_utilization_drops_with_vi_count_when_blocking() {
        // More firmware scanning means the blocked host idles longer per
        // transfer: utilization falls as VIs accumulate.
        let fig = vi_cpu_figure(Profile::bvia(), &[1, 32], &[256]);
        let u1 = fig.series("1 VIs").unwrap().at(256.0).unwrap();
        let u32 = fig.series("32 VIs").unwrap().at(256.0).unwrap();
        assert!(u32 < u1, "util with 32 VIs {u32} !< 1 VI {u1}");
    }

    #[test]
    fn bvia_slope_is_close_to_firmware_scan_cost() {
        // The firmware's per-VI scan cost is 0.95 us (vnic::FirmwareModel);
        // each one-way trip pays one scan on the sender's NIC, and the
        // measured round trip averages two scans over two legs.
        let slope = latency_slope_per_vi(Profile::bvia(), 256);
        assert!(
            (0.5..=1.5).contains(&slope),
            "BVIA per-VI latency slope {slope} us"
        );
    }
}
