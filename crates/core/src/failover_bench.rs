//! Fault-domain failover benchmarks (extension X-FAILOVER).
//!
//! Drives the fat-tree's switch-scoped fault machinery end to end — the
//! robustness counterpart to X-TOPO's steady-state scale-out:
//!
//! * **Spine kill**: twelve cross-edge Reliable Delivery flows stream
//!   through the 64-node fat-tree while a scripted [`fabric::FaultPlan`]
//!   kills one spine switch mid-stream. Frames in the dead spine's FIFOs
//!   are flushed (the honest `fault_dropped` bucket) and frames routed at
//!   it during the detection window are refused; after the configured
//!   detection + reconvergence delay the flow-keyed ECMP re-salts onto
//!   the surviving spines and RTO-driven retransmits recover every drop.
//!   The artifact reports each flow's stall (longest inter-delivery gap)
//!   and the count of deliveries completed after the kill — every flow
//!   must keep delivering on the reconverged paths.
//! * **Pause cascade**: twenty-four senders converge on the eight hosts
//!   of edge 0 under tight port limits with a PFC-style pause-storm
//!   watchdog armed (`PortLimits::max_pause`). Host-port congestion backs
//!   up across the spine→edge trunks into a multi-tier pause cascade; the
//!   watchdog bounds how long any port may stay continuously paused,
//!   trips (`storm_trips`), and sheds the paused backlog (`storm_dropped`
//!   — honest port-attributed drops that Reliable Delivery recovers).
//!
//! Every artifact cell is virtual-time-derived or a deterministic
//! counter, so the tables are byte-identical at any `VIBE_SHARDS` /
//! `VIBE_JOBS` / `VIBE_FUSE` value — CI's golden matrix pins that (with
//! switch faults installed the fused fast path de-fuses with
//! [`simkit::DefuseCause::Reroute`], so fused and unfused runs are
//! identical by construction). Each run ends with the X-TOPO
//! conservation oracles extended for fault domains: frames sent =
//! delivered + loss + fault + corruption + port-drop + fault-drop
//! buckets, Σ per-port (drops + storm_dropped) = `frames_port_dropped`,
//! and [`via::Provider::audit`] clean on every node. Design notes:
//! DESIGN.md §4.7.

use fabric::{FaultPlan, NodeId, PortLimits, PortSnapshot, RerouteParams, SanStats};
use simkit::{SimDuration, SimTime, WaitMode};
use via::{Descriptor, Discriminator, MemAttributes, Reliability, ViAttributes};

use crate::report::Table;
use crate::runner::default_shards;
use crate::topo_bench::{fat_tree64, EDGES, HOSTS_PER_EDGE};

/// Base seed for the X-FAILOVER runs.
pub const FAILOVER_SEED: u64 = 0xFA11;

/// Cross-edge flows streaming through the spine kill.
pub const KILL_FLOWS: usize = 12;
/// Messages each kill-workload flow streams.
pub const KILL_MSGS: usize = 24;
/// The spine the fault plan kills (switch ids: 0..EDGES edges, then
/// EDGES..EDGES+SPINES spines).
pub const KILLED_SPINE: u32 = (EDGES + 2) as u32;

/// Senders converging on edge 0 in the pause cascade.
pub const CASCADE_SENDERS: usize = 24;
/// Messages each cascade sender streams.
pub const CASCADE_MSGS: usize = 10;
/// The watchdog's per-port bound on consecutive pause time.
pub const CASCADE_MAX_PAUSE: SimDuration = SimDuration::from_micros(60);

/// Stall classification floor: well above the ~57 us steady-state
/// inter-delivery gap, well below the RTO-sized (~1 ms) failover stall a
/// flow pays when the kill eats its frames.
pub const STALL_FLOOR: SimDuration = SimDuration::from_micros(200);

/// When the spine dies: mid-stream. Connection establishment costs the
/// cLAN profile ~2.4 ms of host time, so the flows stream from roughly
/// 2.4 ms to 3.5 ms; the kill lands squarely inside that span.
fn kill_at() -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(2_700)
}

/// How long the spine stays dead.
fn kill_duration() -> SimDuration {
    SimDuration::from_micros(500)
}

/// Reliable Delivery VI attributes — retransmission is the recovery
/// mechanism both workloads lean on.
fn rd() -> ViAttributes {
    ViAttributes {
        reliability: Reliability::ReliableDelivery,
        ..ViAttributes::default()
    }
}

/// Kill-workload flow `f`'s endpoints: sources on edges 1..=6, each
/// destination four edges away, host indices chosen so no node plays two
/// roles. Every pair crosses the spine tier.
fn kill_flow_pair(f: usize) -> (usize, usize) {
    let src_edge = 1 + (f % 6);
    let dst_edge = (src_edge + 4) % EDGES;
    let src = HOSTS_PER_EDGE * src_edge + f / 6;
    let dst = HOSTS_PER_EDGE * dst_edge + 4 + f / 6;
    (src, dst)
}

/// Payload size of kill-workload flow `f` (flow-distinct, tie-free).
fn kill_flow_size(f: usize) -> u64 {
    2048 + 64 * f as u64
}

/// Per-flow telemetry from the spine-kill workload.
#[derive(Clone, Debug)]
pub struct FailoverFlow {
    /// Row label ("f03 9->61", …).
    pub label: String,
    /// Messages delivered.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Last delivery completion time.
    pub last_rx: SimTime,
    /// Longest gap between consecutive deliveries (the failover stall:
    /// RTO-sized for flows that lost frames to the dead spine, one
    /// message service time otherwise).
    pub stall: SimDuration,
    /// Deliveries completed after the kill instant — the reconverged
    /// path carried them, so this must be positive for every flow.
    pub post_kill: u64,
}

/// Outcome of the spine-kill run.
#[derive(Clone, Debug)]
pub struct FailoverOutcome {
    /// The twelve flows, in flow order.
    pub flows: Vec<FailoverFlow>,
    /// Fabric counters.
    pub san: SanStats,
    /// Per-port counters.
    pub ports: Vec<PortSnapshot>,
}

/// Run the spine-kill workload: stream [`KILL_FLOWS`] cross-edge flows,
/// kill [`KILLED_SPINE`] at `kill_at` for `kill_duration`, and let
/// reroute + retransmission carry every flow to completion.
pub fn spine_kill(seed: u64, shards: usize) -> FailoverOutcome {
    let rig = crate::topo_bench::Rig::new(
        fat_tree64(PortLimits::default()),
        seed,
        shards,
        "failover-spine-kill".to_string(),
    );
    let cluster = &rig.cluster;
    let plan = FaultPlan::new()
        .switch_down(KILLED_SPINE, kill_at(), kill_duration())
        .with_reroute(RerouteParams::default());
    cluster.san().install_faults(&plan);

    let mut rx = Vec::with_capacity(KILL_FLOWS);
    for f in 0..KILL_FLOWS {
        let (src, dst) = kill_flow_pair(f);
        let size = kill_flow_size(f);
        let p = cluster.provider(dst);
        let sim = cluster.node_sim(dst).clone();
        let label = format!("f{f:02} {src}->{dst}");
        rx.push(
            sim.spawn(format!("failover-rx-f{f}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                for _ in 0..KILL_MSGS {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, size as u32))
                        .expect("post_recv");
                }
                p.accept(ctx, &vi, Discriminator(f as u64)).expect("accept");
                let mut bytes = 0u64;
                let mut last = SimTime::ZERO;
                let mut prev: Option<SimTime> = None;
                let mut stall = SimDuration::ZERO;
                let mut post_kill = 0u64;
                for _ in 0..KILL_MSGS {
                    let comp = vi.recv_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "failover delivery failed: {:?}", comp.status);
                    bytes += comp.length;
                    let now = ctx.now();
                    if let Some(prev) = prev {
                        stall = stall.max(now.duration_since(prev));
                    }
                    prev = Some(now);
                    last = last.max(now);
                    if now > kill_at() {
                        post_kill += 1;
                    }
                }
                FailoverFlow {
                    label,
                    delivered: KILL_MSGS as u64,
                    bytes,
                    last_rx: last,
                    stall,
                    post_kill,
                }
            }),
        );
    }

    let mut tx = Vec::with_capacity(KILL_FLOWS);
    for f in 0..KILL_FLOWS {
        let (src, dst) = kill_flow_pair(f);
        let size = kill_flow_size(f);
        let p = cluster.provider(src);
        let sim = cluster.node_sim(src).clone();
        tx.push(
            sim.spawn(format!("failover-tx-f{f}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                ctx.sleep(SimDuration::from_nanos(1_069 * f as u64));
                p.connect(ctx, &vi, NodeId(dst as u32), Discriminator(f as u64), None)
                    .expect("connect");
                ctx.sleep(SimDuration::from_nanos(30_000 + 977 * f as u64));
                // A window of two keeps frames in flight across the kill
                // instant without overrunning the default port limits.
                let mut posted = 0usize;
                while posted < KILL_MSGS.min(2) {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                        .expect("post_send");
                    posted += 1;
                }
                for _ in 0..KILL_MSGS {
                    let comp = vi.send_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "failover send failed: {:?}", comp.status);
                    if posted < KILL_MSGS {
                        vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                            .expect("post_send");
                        posted += 1;
                    }
                }
            }),
        );
    }

    rig.run();
    for t in tx {
        t.expect_result();
    }
    let flows: Vec<FailoverFlow> = rx.into_iter().map(|h| h.expect_result()).collect();
    FailoverOutcome {
        flows,
        san: cluster.san().stats(),
        ports: cluster.san().port_stats(),
    }
}

/// The spine-kill tables: per-flow delivery/stall telemetry and the
/// failover summary (fault timeline + drop accounting).
pub fn spine_kill_tables() -> (Table, Table) {
    let o = spine_kill(FAILOVER_SEED, default_shards());
    for f in &o.flows {
        assert_eq!(
            f.delivered, KILL_MSGS as u64,
            "{}: failover must not strand messages",
            f.label
        );
        assert!(
            f.post_kill > 0,
            "{}: no deliveries after the spine kill — reroute failed",
            f.label
        );
    }
    assert!(
        o.san.frames_fault_dropped > 0,
        "the kill must catch frames in flight"
    );

    let mut flows = Table::new(
        format!(
            "X-FAILOVER: {KILL_FLOWS} cross-edge flows through a spine kill \
             (spine {KILLED_SPINE} down {}-{} us, reroute 20+30 us)",
            kill_at().as_micros_f64(),
            (kill_at() + kill_duration()).as_micros_f64()
        ),
        vec![
            "msgs".to_string(),
            "KB".to_string(),
            "last rx (us)".to_string(),
            "stall (us)".to_string(),
            "post-kill msgs".to_string(),
        ],
    );
    for f in &o.flows {
        flows.push(
            f.label.clone(),
            vec![
                f.delivered as f64,
                f.bytes as f64 / 1024.0,
                f.last_rx.as_micros_f64(),
                f.stall.as_micros_f64(),
                f.post_kill as f64,
            ],
        );
    }

    let reroute = RerouteParams::default();
    let port_faulted: u64 = o.ports.iter().map(|p| p.stats.fault_dropped).sum();
    let mut summary = Table::new(
        "X-FAILOVER: spine-kill fault timeline & drop accounting",
        vec!["value".to_string()],
    );
    summary.push("kill at (us)", vec![kill_at().as_micros_f64()]);
    summary.push(
        "reroute converged (us)",
        vec![(kill_at() + reroute.total()).as_micros_f64()],
    );
    summary.push(
        "failback converged (us)",
        vec![(kill_at() + kill_duration() + reroute.total()).as_micros_f64()],
    );
    summary.push("frames sent", vec![o.san.frames_sent as f64]);
    summary.push("frames delivered", vec![o.san.frames_delivered as f64]);
    summary.push(
        "frames fault-dropped",
        vec![o.san.frames_fault_dropped as f64],
    );
    summary.push("  of which port-attributed", vec![port_faulted as f64]);
    summary.push(
        "frames port-dropped",
        vec![o.san.frames_port_dropped as f64],
    );
    summary.push(
        "flows stalled > 200 us",
        vec![o.flows.iter().filter(|f| f.stall > STALL_FLOOR).count() as f64],
    );
    (flows, summary)
}

/// Cascade sender `s`'s node: hosts 0..=2 of edges 1..=7 — off edge 0,
/// so every flow crosses the spine tier into the congested edge.
fn cascade_sender_node(s: usize) -> usize {
    HOSTS_PER_EDGE * (1 + (s % (EDGES - 1))) + s / (EDGES - 1)
}

/// Payload size of cascade flow `s` (flow-distinct, tie-free).
fn cascade_size(s: usize) -> u64 {
    1024 + 32 * s as u64
}

/// Tight limits with the watchdog armed: ports pause early and a paused
/// port that stays continuously paused past [`CASCADE_MAX_PAUSE`] trips.
fn cascade_limits() -> PortLimits {
    PortLimits {
        capacity: 2,
        pause_depth: 4,
        max_pause: Some(CASCADE_MAX_PAUSE),
    }
}

/// Outcome of the pause-cascade run.
#[derive(Clone, Debug)]
pub struct CascadeOutcome {
    /// Messages delivered across all flows.
    pub delivered: u64,
    /// Latest delivery.
    pub last_rx: SimTime,
    /// Fabric counters.
    pub san: SanStats,
    /// Per-port counters.
    pub ports: Vec<PortSnapshot>,
}

/// Run the pause cascade: [`CASCADE_SENDERS`] pipelined senders converge
/// on edge 0's eight hosts under `cascade_limits`; the watchdog trips
/// on ports that stay paused past the bound and sheds their backlog.
pub fn pause_cascade(seed: u64, shards: usize) -> CascadeOutcome {
    let rig = crate::topo_bench::Rig::new(
        fat_tree64(cascade_limits()),
        seed,
        shards,
        "failover-pause-cascade".to_string(),
    );
    let cluster = &rig.cluster;

    let mut rx = Vec::with_capacity(CASCADE_SENDERS);
    for s in 0..CASCADE_SENDERS {
        let dst = s % HOSTS_PER_EDGE;
        let size = cascade_size(s);
        let p = cluster.provider(dst);
        let sim = cluster.node_sim(dst).clone();
        rx.push(
            sim.spawn(format!("cascade-rx-s{s}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                for _ in 0..CASCADE_MSGS {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, size as u32))
                        .expect("post_recv");
                }
                p.accept(ctx, &vi, Discriminator(400 + s as u64))
                    .expect("accept");
                let mut bytes = 0u64;
                let mut last = SimTime::ZERO;
                for _ in 0..CASCADE_MSGS {
                    let comp = vi.recv_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "cascade delivery failed: {:?}", comp.status);
                    bytes += comp.length;
                    last = last.max(ctx.now());
                }
                (CASCADE_MSGS as u64, bytes, last)
            }),
        );
    }

    let mut tx = Vec::with_capacity(CASCADE_SENDERS);
    for s in 0..CASCADE_SENDERS {
        let src = cascade_sender_node(s);
        let dst = s % HOSTS_PER_EDGE;
        let size = cascade_size(s);
        let p = cluster.provider(src);
        let sim = cluster.node_sim(src).clone();
        tx.push(
            sim.spawn(format!("cascade-tx-s{s}"), Some(p.cpu()), move |ctx| {
                let vi = p.create_vi(ctx, rd(), None, None).expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                ctx.sleep(SimDuration::from_nanos(1_069 * s as u64));
                p.connect(
                    ctx,
                    &vi,
                    NodeId(dst as u32),
                    Discriminator(400 + s as u64),
                    None,
                )
                .expect("connect");
                ctx.sleep(SimDuration::from_nanos(30_000 + 977 * s as u64));
                let mut posted = 0usize;
                while posted < CASCADE_MSGS.min(2) {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                        .expect("post_send");
                    posted += 1;
                }
                for _ in 0..CASCADE_MSGS {
                    let comp = vi.send_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "cascade send failed: {:?}", comp.status);
                    if posted < CASCADE_MSGS {
                        vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                            .expect("post_send");
                        posted += 1;
                    }
                }
            }),
        );
    }

    rig.run();
    for t in tx {
        t.expect_result();
    }
    let mut delivered = 0u64;
    let mut last = SimTime::ZERO;
    for r in rx {
        let (d, _, l) = r.expect_result();
        delivered += d;
        last = last.max(l);
    }
    CascadeOutcome {
        delivered,
        last_rx: last,
        san: cluster.san().stats(),
        ports: cluster.san().port_stats(),
    }
}

/// The pause-cascade table: per-tier pause/storm counters plus totals.
pub fn pause_cascade_table() -> Table {
    let o = pause_cascade(FAILOVER_SEED, default_shards());
    assert_eq!(
        o.delivered,
        (CASCADE_SENDERS * CASCADE_MSGS) as u64,
        "Reliable Delivery must recover every storm-shed frame"
    );
    let trips: u64 = o.ports.iter().map(|p| p.stats.storm_trips).sum();
    let shed: u64 = o.ports.iter().map(|p| p.stats.storm_dropped).sum();
    assert!(trips > 0, "the cascade must trip the watchdog");
    assert!(shed > 0, "a trip must shed the paused backlog");
    // The watchdog bound: a port's pause streak is re-examined every time
    // a departure frees buffer space, so the recorded maximum can overrun
    // the bound by at most one frame service time (largest cascade frame
    // on the host link, the slowest hop) plus the switch latency.
    let net = via::Profile::clan().net;
    let largest = cascade_size(CASCADE_SENDERS - 1) as u32 + via::Profile::clan().frag_header_bytes;
    let granule = net.link.serialization(largest) + net.switch.latency;
    let bound_ns = CASCADE_MAX_PAUSE.as_nanos();
    for p in &o.ports {
        assert!(
            p.stats.max_pause_ns <= bound_ns + granule.as_nanos(),
            "switch {} port {:?}: pause streak {} ns exceeds bound {} ns + granule {} ns",
            p.switch,
            p.target,
            p.stats.max_pause_ns,
            bound_ns,
            granule.as_nanos()
        );
    }

    let mut t = Table::new(
        format!(
            "X-FAILOVER: {CASCADE_SENDERS}-to-{HOSTS_PER_EDGE} pause cascade \
             (capacity 2 / pause 4, watchdog bound {} us)",
            CASCADE_MAX_PAUSE.as_micros_f64()
        ),
        vec![
            "ports".to_string(),
            "pauses".to_string(),
            "storm trips".to_string(),
            "storm shed".to_string(),
            "drops".to_string(),
            "max pause (us)".to_string(),
        ],
    );
    let tier_of = |p: &PortSnapshot| -> &'static str {
        if (p.switch as usize) < EDGES {
            match p.target {
                fabric::PortTarget::Node(_) => "edge->host",
                fabric::PortTarget::Switch(_) => "edge->spine",
            }
        } else {
            "spine->edge"
        }
    };
    for tier in ["edge->host", "edge->spine", "spine->edge"] {
        let sel: Vec<&PortSnapshot> = o.ports.iter().filter(|p| tier_of(p) == tier).collect();
        t.push(
            tier,
            vec![
                sel.len() as f64,
                sel.iter().map(|p| p.stats.pauses).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.storm_trips).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.storm_dropped).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.drops).sum::<u64>() as f64,
                sel.iter().map(|p| p.stats.max_pause_ns).max().unwrap_or(0) as f64 / 1e3,
            ],
        );
    }
    t.push(
        "total",
        vec![
            o.ports.len() as f64,
            o.ports.iter().map(|p| p.stats.pauses).sum::<u64>() as f64,
            trips as f64,
            shed as f64,
            o.ports.iter().map(|p| p.stats.drops).sum::<u64>() as f64,
            o.ports
                .iter()
                .map(|p| p.stats.max_pause_ns)
                .max()
                .unwrap_or(0) as f64
                / 1e3,
        ],
    );
    t.push(
        "delivered msgs / last rx (us)",
        vec![
            o.delivered as f64,
            o.last_rx.as_micros_f64(),
            0.0,
            0.0,
            0.0,
            0.0,
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_flow_pairs_are_distinct_and_cross_edge() {
        let mut nodes = Vec::new();
        for f in 0..KILL_FLOWS {
            let (src, dst) = kill_flow_pair(f);
            assert_ne!(
                src / HOSTS_PER_EDGE,
                dst / HOSTS_PER_EDGE,
                "flow {f} must cross edges"
            );
            nodes.push(src);
            nodes.push(dst);
        }
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), nodes.len(), "no node plays two roles");
    }

    #[test]
    fn cascade_senders_avoid_edge0() {
        let nodes: Vec<usize> = (0..CASCADE_SENDERS).map(cascade_sender_node).collect();
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), CASCADE_SENDERS);
        for &n in &nodes {
            assert!(n >= HOSTS_PER_EDGE, "sender {n} sits on the victim edge");
        }
    }

    #[test]
    fn spine_kill_recovers_every_flow() {
        let o = spine_kill(FAILOVER_SEED, 1);
        assert!(
            o.san.frames_fault_dropped > 0,
            "the kill must catch frames in flight: {:?}",
            o.san
        );
        for f in &o.flows {
            assert_eq!(f.delivered, KILL_MSGS as u64, "{}", f.label);
            assert!(f.post_kill > 0, "{}: must deliver after the kill", f.label);
        }
        // At least one flow was routed through the dead spine and paid an
        // RTO-sized stall before recovering on the reconverged path.
        assert!(
            o.flows.iter().any(|f| f.stall > STALL_FLOOR),
            "no flow stalled — the kill never intersected a routed path"
        );
    }

    #[test]
    fn spine_kill_is_shard_count_invariant() {
        let serial = spine_kill(FAILOVER_SEED, 1);
        for shards in [2usize, 4] {
            let sharded = spine_kill(FAILOVER_SEED, shards);
            assert_eq!(sharded.san, serial.san, "shards={shards}");
            let key = |o: &FailoverOutcome| -> Vec<(String, u64, u64, u64, u64)> {
                o.flows
                    .iter()
                    .map(|f| {
                        (
                            f.label.clone(),
                            f.bytes,
                            f.last_rx.as_nanos(),
                            f.stall.as_nanos(),
                            f.post_kill,
                        )
                    })
                    .collect()
            };
            assert_eq!(key(&sharded), key(&serial), "shards={shards}");
            assert_eq!(
                sharded.ports.iter().map(|p| p.stats).collect::<Vec<_>>(),
                serial.ports.iter().map(|p| p.stats).collect::<Vec<_>>(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn pause_cascade_trips_watchdog_and_is_shard_count_invariant() {
        let serial = pause_cascade(FAILOVER_SEED, 1);
        let trips: u64 = serial.ports.iter().map(|p| p.stats.storm_trips).sum();
        assert!(trips > 0, "watchdog must trip");
        assert_eq!(serial.delivered, (CASCADE_SENDERS * CASCADE_MSGS) as u64);
        let sharded = pause_cascade(FAILOVER_SEED, 4);
        assert_eq!(sharded.san, serial.san);
        assert_eq!(sharded.last_rx, serial.last_rx);
        assert_eq!(
            sharded.ports.iter().map(|p| p.stats).collect::<Vec<_>>(),
            serial.ports.iter().map(|p| p.stats).collect::<Vec<_>>()
        );
    }
}
