//! Node fault domains & session recovery (extension X-CRASH).
//!
//! Kills a host mid-stream on the 64-node fat-tree and measures the full
//! recovery stack the robustness PRs grew:
//!
//! * **Node kill**: six session flows ([`via::SessionSender`] /
//!   [`via::SessionReceiver`]) stream while a scripted
//!   [`fabric::FaultPlan::node_down`] crashes one host that terminates
//!   three of them. The victim's NIC rings, translation tables, and VI
//!   state are wiped at window open; in-flight frames drain to the honest
//!   per-node `fault_dropped` bucket; at window close the node reboots
//!   with a freshly initialized provider. Surviving peers detect the
//!   crash through the heartbeat watchdog
//!   ([`via::HeartbeatParams`], `ConnState::Error { cause: PeerDown }`),
//!   reconnect with capped content-keyed backoff, and replay their
//!   bounded journals; epoch + sequence dedup on the receivers turns the
//!   at-least-once replay into exactly-once delivery.
//! * The artifact reports per-flow goodput dip (longest inter-delivery
//!   gap), post-crash deliveries, replay/reconnect/dedup counters, and a
//!   crash timeline: watchdog detection latency per affected flow,
//!   reconnect-storm size, and the victim's fault-drop accounting.
//!
//! Every cell is virtual-time-derived or a deterministic counter, so the
//! tables are byte-identical at any `VIBE_JOBS` / `VIBE_SHARDS` /
//! `VIBE_FUSE` value — node-fault window edges are replicated to every
//! shard, the victim's provider crashes on its owning shard, and the
//! fused fast path de-fuses (`DefuseCause::NodeFault`) whenever node
//! faults are installed. Each run ends with the session-conservation
//! oracle (every message delivered exactly once, in order, zero losses
//! and zero duplicates across the kill) on top of the X-TOPO frame
//! conservation and audit oracles. Design notes: DESIGN.md §4.8.
//!
//! [`recovery_probe`] is the same machinery folded into a seed-derived
//! randomized scenario on a small 8-node tree — the property test
//! `tests/session_recovery.rs` sweeps it over arbitrary crash/loss plans
//! and shard counts 1–5 and pins byte-identical digests.

use fabric::{FaultPlan, LinkParams, NodeId, PortLimits, SanStats, Topology};
use simkit::{SimDuration, SimRng, SimTime};
use via::{
    Discriminator, HeartbeatParams, Profile, SessionParams, SessionReceiver, SessionSender,
    SessionStats,
};

use crate::report::Table;
use crate::runner::default_shards;
use crate::topo_bench::{fat_tree64, Rig, HOSTS_PER_EDGE};

/// Base seed for the X-CRASH runs.
pub const CRASH_SEED: u64 = 0xC7A8;

/// Session flows streaming through the kill.
pub const CRASH_FLOWS: usize = 6;
/// Flows whose receiver sits on the victim node (the rest are bystanders
/// on untouched nodes — their sessions must sail through undisturbed).
pub const AFFECTED_FLOWS: usize = 3;
/// Messages each flow streams.
pub const CRASH_MSGS: u64 = 36;
/// The host the fault plan kills (edge 2, host 4).
pub const VICTIM: usize = 20;

/// When the node dies: mid-stream. Session setup costs the cLAN profile
/// ~2.4 ms of host time, so the flows stream from roughly 2.5 ms to
/// ~4 ms; the kill lands squarely inside that span.
fn crash_at() -> SimTime {
    SimTime::ZERO + SimDuration::from_micros(2_800)
}

/// How long the node stays dead before rebooting.
fn crash_duration() -> SimDuration {
    SimDuration::from_micros(600)
}

/// The keepalive watchdog every X-CRASH endpoint runs.
fn hb() -> HeartbeatParams {
    HeartbeatParams::fast()
}

/// cLAN with the heartbeat watchdog enabled — the paper profiles ship
/// with heartbeats off (golden-safe), so X-CRASH opts in explicitly.
fn crash_profile() -> Profile {
    let mut p = Profile::clan();
    p.heartbeat = Some(hb());
    p
}

/// Flow `f`'s endpoints. Affected flows terminate on [`VICTIM`]; the
/// bystanders cross between untouched edges. No node plays two roles
/// except the victim (which hosts all three affected receivers — that is
/// the reconnect storm).
fn flow_pair(f: usize) -> (usize, usize) {
    if f < AFFECTED_FLOWS {
        (HOSTS_PER_EDGE * (4 + f) + f, VICTIM)
    } else {
        let g = f - AFFECTED_FLOWS;
        (HOSTS_PER_EDGE * (1 + g) + 6, HOSTS_PER_EDGE * (5 + g) + 7)
    }
}

/// Inter-send pacing of flow `f` (flow-distinct, tie-free).
fn flow_gap(f: usize) -> SimDuration {
    SimDuration::from_nanos(30_000 + 1_069 * f as u64)
}

/// The payload of flow `f`'s message `i` — content-checked on delivery,
/// so the exactly-once oracle verifies bytes, not just counts.
fn payload(f: usize, i: u64) -> Vec<u8> {
    format!("x-crash f{f:02} m{i:03}").into_bytes()
}

/// Per-flow telemetry from the node-kill workload.
#[derive(Clone, Debug)]
pub struct CrashFlow {
    /// Row label ("f00 32->20*", victim-terminating flows starred).
    pub label: String,
    /// The flow's receiver sits on the killed node.
    pub affected: bool,
    /// Messages delivered exactly once.
    pub delivered: u64,
    /// Deliveries completed after the kill instant.
    pub post_crash: u64,
    /// Longest gap between consecutive deliveries (the goodput dip:
    /// crash + detection + reconnect + replay for affected flows, one
    /// pacing interval otherwise).
    pub stall: SimDuration,
    /// Last delivery completion time (goodput recovery).
    pub last_rx: SimTime,
    /// Sender-side session counters.
    pub tx: SessionStats,
    /// Receiver-side session counters.
    pub rx: SessionStats,
}

/// Outcome of the node-kill run.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// The flows, in flow order.
    pub flows: Vec<CrashFlow>,
    /// Per affected flow: when its sender's heartbeat watchdog first
    /// declared the peer down (20 us poll granularity).
    pub detection: Vec<SimTime>,
    /// Fabric counters.
    pub san: SanStats,
    /// Frames the fault window drained at the victim node.
    pub victim_dropped: u64,
    /// Crash wipes the victim's provider counted (node_down windows).
    pub node_crashes: u64,
    /// Sessions that survived at least one reconnect.
    pub sessions_recovered: u64,
}

/// Run the node-kill workload: stream [`CRASH_FLOWS`] session flows,
/// kill [`VICTIM`] at `crash_at` for `crash_duration`, and let the
/// heartbeat watchdog + session recovery carry every flow to completion.
/// Panics if any conservation oracle fails — the session oracle (every
/// message exactly once, in order, zero losses, zero duplicates
/// delivered) plus the X-TOPO frame/audit oracles via the shared rig runner.
pub fn node_kill(seed: u64, shards: usize) -> CrashOutcome {
    let rig = Rig::new_with_profile(
        fat_tree64(PortLimits::default()),
        crash_profile(),
        seed,
        shards,
        "crash-node-kill".to_string(),
    );
    let cluster = &rig.cluster;
    cluster.san().install_faults(&FaultPlan::new().node_down(
        NodeId(VICTIM as u32),
        crash_at(),
        crash_duration(),
    ));

    let mut rx = Vec::with_capacity(CRASH_FLOWS);
    for f in 0..CRASH_FLOWS {
        let (_, dst) = flow_pair(f);
        let p = cluster.provider(dst);
        let sim = cluster.node_sim(dst).clone();
        rx.push(
            sim.spawn(format!("crash-rx-f{f}"), Some(p.cpu()), move |ctx| {
                let mut r = SessionReceiver::new(
                    &p,
                    ctx,
                    Discriminator(700 + f as u64),
                    SessionParams::default(),
                )
                .expect("session receiver");
                let mut got: Vec<Vec<u8>> = Vec::new();
                let mut prev: Option<SimTime> = None;
                let mut stall = SimDuration::ZERO;
                let mut post_crash = 0u64;
                let mut last = SimTime::ZERO;
                while let Some(msg) = r.recv(ctx) {
                    let now = ctx.now();
                    if let Some(prev) = prev {
                        stall = stall.max(now.duration_since(prev));
                    }
                    prev = Some(now);
                    last = last.max(now);
                    if now > crash_at() {
                        post_crash += 1;
                    }
                    got.push(msg);
                }
                let stats = r.close(ctx);
                (got, stall, post_crash, last, stats)
            }),
        );
    }

    let mut tx = Vec::with_capacity(CRASH_FLOWS);
    for f in 0..CRASH_FLOWS {
        let (src, dst) = flow_pair(f);
        let p = cluster.provider(src);
        let sim = cluster.node_sim(src).clone();
        tx.push(
            sim.spawn(format!("crash-tx-f{f}"), Some(p.cpu()), move |ctx| {
                ctx.sleep(SimDuration::from_nanos(1_069 * f as u64));
                let mut s = SessionSender::new(
                    &p,
                    ctx,
                    NodeId(dst as u32),
                    Discriminator(700 + f as u64),
                    SessionParams::default(),
                )
                .expect("session sender");
                for i in 0..CRASH_MSGS {
                    s.send(ctx, &payload(f, i));
                    ctx.sleep(flow_gap(f));
                }
                s.close(ctx)
            }),
        );
    }

    // Detection watchers: one per affected flow, polling the sender's
    // provider for the first heartbeat-watchdog timeout. 20 us polls from
    // the kill instant — deterministic at any shard count (the watcher
    // and the watchdog timer live on the same node, hence the same
    // shard).
    let mut watch = Vec::with_capacity(AFFECTED_FLOWS);
    for f in 0..AFFECTED_FLOWS {
        let (src, _) = flow_pair(f);
        let p = cluster.provider(src);
        let sim = cluster.node_sim(src).clone();
        watch.push(
            sim.spawn(format!("crash-watch-f{f}"), Some(p.cpu()), move |ctx| {
                ctx.sleep(crash_at().saturating_duration_since(ctx.now()));
                let deadline = crash_at() + SimDuration::from_millis(8);
                loop {
                    if p.stats().heartbeat_timeouts > 0 {
                        return Some(ctx.now());
                    }
                    if ctx.now() >= deadline {
                        return None;
                    }
                    ctx.sleep(SimDuration::from_micros(20));
                }
            }),
        );
    }

    rig.run();

    let tx_stats: Vec<SessionStats> = tx.into_iter().map(|h| h.expect_result()).collect();
    let mut flows = Vec::with_capacity(CRASH_FLOWS);
    for (f, h) in rx.into_iter().enumerate() {
        let (got, stall, post_crash, last, rxs) = h.expect_result();
        let (src, dst) = flow_pair(f);
        let affected = f < AFFECTED_FLOWS;
        let label = format!("f{f:02} {src}->{dst}{}", if affected { "*" } else { "" });
        // The session-conservation oracle: exactly once, in order, bytes
        // checked — across the crash for affected flows, trivially for
        // bystanders.
        assert_eq!(got.len() as u64, CRASH_MSGS, "{label}: delivery count");
        for (i, msg) in got.iter().enumerate() {
            assert_eq!(*msg, payload(f, i as u64), "{label}: in-order at {i}");
        }
        let txs = tx_stats[f];
        assert_eq!(txs.sent, CRASH_MSGS, "{label}: sent");
        assert_eq!(
            txs.acked, CRASH_MSGS,
            "{label}: every journal entry retired"
        );
        assert_eq!(rxs.delivered, CRASH_MSGS, "{label}: delivered");
        assert_eq!(rxs.out_of_order, 0, "{label}: replay must stay in order");
        if affected {
            assert!(
                txs.reconnects >= 1,
                "{label}: the kill must force a reconnect: {txs:?}"
            );
            assert!(txs.replays >= 1, "{label}: journal must replay: {txs:?}");
        } else {
            assert_eq!(
                txs.reconnects, 0,
                "{label}: a bystander session must sail through: {txs:?}"
            );
            assert_eq!(rxs.dups_dropped, 0, "{label}: bystander saw a replay");
        }
        flows.push(CrashFlow {
            label,
            affected,
            delivered: got.len() as u64,
            post_crash,
            stall,
            last_rx: last,
            tx: txs,
            rx: rxs,
        });
    }

    let detection: Vec<SimTime> = watch
        .into_iter()
        .enumerate()
        .map(|(f, h)| {
            h.expect_result()
                .unwrap_or_else(|| panic!("f{f:02}: watchdog never detected the dead peer"))
        })
        .collect();
    let bound = hb().timeout + hb().interval + SimDuration::from_micros(40);
    for (f, &t) in detection.iter().enumerate() {
        assert!(
            t.duration_since(crash_at()) <= bound,
            "f{f:02}: detection at {t:?} exceeds the watchdog bound"
        );
    }

    let vstats = cluster.provider(VICTIM).stats();
    assert_eq!(
        vstats.node_crashes, 1,
        "exactly one crash wipe at the victim"
    );
    let victim_dropped = cluster.san().node_fault_dropped()[VICTIM];
    assert!(
        victim_dropped > 0,
        "the window must drain frames at the victim"
    );
    let sessions_recovered = flows.iter().filter(|fl| fl.tx.reconnects > 0).count() as u64;
    assert_eq!(
        sessions_recovered, AFFECTED_FLOWS as u64,
        "every victim-terminating session must recover"
    );
    crate::runner::record_crash_health(vstats.node_crashes + vstats.nic_resets, sessions_recovered);

    CrashOutcome {
        flows,
        detection,
        san: cluster.san().stats(),
        victim_dropped,
        node_crashes: vstats.node_crashes,
        sessions_recovered,
    }
}

/// The node-kill tables: per-flow session telemetry and the crash
/// timeline / recovery summary.
pub fn node_kill_tables() -> (Table, Table) {
    let o = node_kill(CRASH_SEED, default_shards());

    let mut flows = Table::new(
        format!(
            "X-CRASH: {CRASH_FLOWS} session flows through a node kill \
             (node {VICTIM} down {}-{} us, heartbeat {}/{} us)",
            crash_at().as_micros_f64(),
            (crash_at() + crash_duration()).as_micros_f64(),
            hb().interval.as_micros_f64(),
            hb().timeout.as_micros_f64()
        ),
        vec![
            "msgs".to_string(),
            "post-crash msgs".to_string(),
            "stall (us)".to_string(),
            "last rx (us)".to_string(),
            "replays".to_string(),
            "reconnects".to_string(),
            "dups dropped".to_string(),
            "connect attempts".to_string(),
        ],
    );
    for fl in &o.flows {
        flows.push(
            fl.label.clone(),
            vec![
                fl.delivered as f64,
                fl.post_crash as f64,
                fl.stall.as_micros_f64(),
                fl.last_rx.as_micros_f64(),
                fl.tx.replays as f64,
                fl.tx.reconnects as f64,
                fl.rx.dups_dropped as f64,
                fl.tx.connect_attempts as f64,
            ],
        );
    }

    let mut summary = Table::new(
        "X-CRASH: crash timeline, watchdog detection & session recovery",
        vec!["value".to_string()],
    );
    summary.push("crash at (us)", vec![crash_at().as_micros_f64()]);
    summary.push(
        "reboot at (us)",
        vec![(crash_at() + crash_duration()).as_micros_f64()],
    );
    for (f, t) in o.detection.iter().enumerate() {
        summary.push(
            format!("f{f:02} peer-down detected (us)"),
            vec![t.as_micros_f64()],
        );
    }
    summary.push("node crashes", vec![o.node_crashes as f64]);
    summary.push("sessions recovered", vec![o.sessions_recovered as f64]);
    summary.push(
        "reconnect storm (connect attempts)",
        vec![
            o.flows.iter().map(|f| f.tx.connect_attempts).sum::<u64>() as f64 - CRASH_FLOWS as f64,
        ],
    );
    summary.push(
        "journal replays",
        vec![o.flows.iter().map(|f| f.tx.replays).sum::<u64>() as f64],
    );
    summary.push(
        "dup deliveries dropped",
        vec![o.flows.iter().map(|f| f.rx.dups_dropped).sum::<u64>() as f64],
    );
    summary.push(
        "frames fault-dropped",
        vec![o.san.frames_fault_dropped as f64],
    );
    summary.push("  of which at the victim", vec![o.victim_dropped as f64]);
    (flows, summary)
}

// ---------------------------------------------------------------------
// Randomized recovery probe (tests/session_recovery.rs)
// ---------------------------------------------------------------------

/// The small tree the randomized probe runs over: 8 hosts, 2 edges, 1
/// spine — enough structure for real shard maps at counts 1–5, cheap
/// enough for a property sweep.
fn probe_tree() -> Topology {
    let trunk = LinkParams {
        bandwidth_bps: 440_000_000,
        propagation: SimDuration::from_nanos(600),
        frame_overhead_bytes: 8,
        mtu: 64 * 1024,
    };
    Topology::fat_tree(2, 4, 1, trunk, PortLimits::default())
}

/// Run one seed-derived randomized crash/loss plan through a session
/// flow on the probe tree and return a deterministic digest of
/// everything observable: session counters both sides, fabric counters,
/// and the per-node fault-drop split. The plan (victim side, node_down
/// vs nic_reset, window edges, optional degrade-loss window, optional
/// second kill) is content-keyed by `seed` alone, so the digest must be
/// byte-identical at every `shards` value — the property test pins that.
/// Panics if delivery is not exactly-once in-order.
pub fn recovery_probe(seed: u64, shards: usize) -> String {
    let mut rng = SimRng::derive(seed, "x-crash-probe");
    let msgs = 12 + rng.below(13);
    let gap = SimDuration::from_micros(25 + rng.below(36));
    let src = rng.below(4) as usize;
    let dst = 4 + rng.below(4) as usize;
    let victim = if rng.chance(0.5) { dst } else { src };
    let at = SimTime::ZERO + SimDuration::from_micros(2_300 + rng.below(900));
    let dur = SimDuration::from_micros(250 + rng.below(500));
    let mut plan = if rng.chance(0.5) {
        FaultPlan::new().node_down(NodeId(victim as u32), at, dur)
    } else {
        FaultPlan::new().nic_reset(NodeId(victim as u32), at, dur)
    };
    if rng.chance(0.4) {
        // Lossy survivor link on top of the crash: retransmission and
        // session replay have to compose.
        let other = if victim == dst { src } else { dst };
        plan = plan.degrade(
            NodeId(other as u32),
            at,
            dur + SimDuration::from_micros(400),
            SimDuration::from_micros(2),
            0.15,
        );
    }
    if rng.chance(0.3) {
        let at2 = at + dur + SimDuration::from_micros(400 + rng.below(600));
        plan = plan.node_down(
            NodeId(victim as u32),
            at2,
            SimDuration::from_micros(200 + rng.below(300)),
        );
    }

    let rig = Rig::new_with_profile(
        probe_tree(),
        crash_profile(),
        seed,
        shards,
        format!("crash-probe-{seed:x}"),
    );
    let cluster = &rig.cluster;
    cluster.san().install_faults(&plan);

    let rh = {
        let p = cluster.provider(dst);
        let sim = cluster.node_sim(dst).clone();
        sim.spawn("probe-rx", Some(p.cpu()), move |ctx| {
            let mut r = SessionReceiver::new(&p, ctx, Discriminator(900), SessionParams::default())
                .expect("session receiver");
            let mut got = Vec::new();
            while let Some(msg) = r.recv(ctx) {
                got.push(msg);
            }
            (got, r.close(ctx))
        })
    };
    let sh = {
        let p = cluster.provider(src);
        let sim = cluster.node_sim(src).clone();
        sim.spawn("probe-tx", Some(p.cpu()), move |ctx| {
            let mut s = SessionSender::new(
                &p,
                ctx,
                NodeId(dst as u32),
                Discriminator(900),
                SessionParams::default(),
            )
            .expect("session sender");
            for i in 0..msgs {
                s.send(ctx, &payload(99, i));
                ctx.sleep(gap);
            }
            s.close(ctx)
        })
    };
    rig.run();

    let (got, rxs) = rh.expect_result();
    let txs = sh.expect_result();
    assert_eq!(got.len() as u64, msgs, "probe seed {seed}: delivery count");
    for (i, msg) in got.iter().enumerate() {
        assert_eq!(
            *msg,
            payload(99, i as u64),
            "probe seed {seed}: order at {i}"
        );
    }
    assert_eq!(txs.acked, msgs, "probe seed {seed}: journal retired");
    assert_eq!(rxs.out_of_order, 0, "probe seed {seed}: in-order");

    let san = cluster.san().stats();
    let per_node: Vec<String> = cluster
        .san()
        .node_fault_dropped()
        .iter()
        .map(u64::to_string)
        .collect();
    let vstats = cluster.provider(victim).stats();
    format!(
        "seed={seed:x} msgs={msgs} tx[epochs={} attempts={} replays={} acked={}] \
         rx[delivered={} dups={} discarded={} acks={} stale={}] \
         victim[crashes={} resets={}] \
         san[sent={} delivered={} dropped={} faulted={} fault_dropped={} port_dropped={}] \
         per_node=[{}]",
        txs.epochs,
        txs.connect_attempts,
        txs.replays,
        txs.acked,
        rxs.delivered,
        rxs.dups_dropped,
        rxs.discarded_in_recovery,
        rxs.acks_sent,
        rxs.stale_requests_dropped,
        vstats.node_crashes,
        vstats.nic_resets,
        san.frames_sent,
        san.frames_delivered,
        san.frames_dropped,
        san.frames_faulted,
        san.frames_fault_dropped,
        san.frames_port_dropped,
        per_node.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_pairs_are_distinct_and_victim_scoped() {
        let mut nodes = Vec::new();
        for f in 0..CRASH_FLOWS {
            let (src, dst) = flow_pair(f);
            assert_ne!(src, dst);
            assert_ne!(src, VICTIM, "flow {f}: no sender on the victim");
            if f < AFFECTED_FLOWS {
                assert_eq!(dst, VICTIM, "flow {f} must terminate on the victim");
            } else {
                assert_ne!(dst, VICTIM, "flow {f} is a bystander");
                nodes.push(dst);
            }
            nodes.push(src);
        }
        let mut dedup = nodes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            nodes.len(),
            "no non-victim node plays two roles"
        );
    }

    #[test]
    fn node_kill_recovers_every_session() {
        let o = node_kill(CRASH_SEED, 1);
        assert_eq!(o.node_crashes, 1);
        assert_eq!(o.sessions_recovered, AFFECTED_FLOWS as u64);
        // Affected flows pay a crash-window-sized goodput dip; bystanders
        // never stall beyond their pacing.
        for fl in &o.flows {
            if fl.affected {
                assert!(
                    fl.stall >= crash_duration(),
                    "{}: dip must span the window: {:?}",
                    fl.label,
                    fl.stall
                );
                assert!(fl.post_crash > 0, "{}: must recover goodput", fl.label);
            } else {
                assert!(
                    fl.stall < SimDuration::from_micros(500),
                    "{}: bystander stalled: {:?}",
                    fl.label,
                    fl.stall
                );
            }
        }
    }

    #[test]
    fn node_kill_is_shard_count_invariant() {
        let key = |o: &CrashOutcome| -> Vec<String> {
            let mut k: Vec<String> = o
                .flows
                .iter()
                .map(|f| {
                    format!(
                        "{} {} {} {} {} {:?} {:?}",
                        f.label,
                        f.delivered,
                        f.post_crash,
                        f.tx.replays,
                        f.rx.dups_dropped,
                        f.stall,
                        f.last_rx
                    )
                })
                .collect();
            k.push(format!("{:?}", o.detection));
            k.push(format!("{:?}", o.san));
            k.push(format!("{} {}", o.victim_dropped, o.node_crashes));
            k
        };
        let serial = node_kill(CRASH_SEED, 1);
        for shards in [2usize, 4] {
            let sharded = node_kill(CRASH_SEED, shards);
            assert_eq!(key(&sharded), key(&serial), "shards={shards}");
        }
    }
}
