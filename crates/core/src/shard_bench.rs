//! Sharded-engine ring benchmark (extension X-SHARD).
//!
//! An 8-node ring where every node streams messages to its successor over
//! a connected VI while receiving from its predecessor — the smallest
//! workload in which *every* shard of a sharded engine both sends and
//! receives cross-shard traffic continuously. The artifact reports only
//! virtual-time quantities (per-node delivery counts and times, goodput,
//! SAN counters), so it is byte-identical at any `VIBE_SHARDS` value —
//! the invariant CI's golden matrix pins. The shard count *does* shape
//! the engine telemetry (barrier stalls, horizon grants), which flows
//! into the non-golden X-PAR artifact via
//! [`crate::runner::record_shard_run`].
//!
//! Client starts are staggered by odd per-node offsets so no two nodes
//! inject at the same nanosecond: the ring stays tie-free, which keeps
//! the delivery timeline independent of how simultaneous events would
//! interleave across engines.

use fabric::{NodeId, SanStats};
use simkit::{ShardedSim, Sim, SimDuration, SimTime, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, ViAttributes};

use crate::report::Table;
use crate::runner::{default_shards, record_shard_run, ShardRunRecord};

/// Nodes in the ring (enough that 2- and 4-shard maps split them).
pub const RING_NODES: usize = 8;
/// Messages each node sends to its successor.
pub const RING_MSGS: u64 = 48;
/// Message payload size in bytes.
pub const RING_SIZE: u64 = 1024;

/// Per-node delivery telemetry (all virtual-time).
#[derive(Clone, Debug)]
pub struct RingNode {
    /// Messages fully delivered into this node.
    pub delivered: u64,
    /// Payload bytes delivered into this node.
    pub bytes: u64,
    /// Completion time of the node's first delivery.
    pub first_rx: SimTime,
    /// Completion time of the node's last delivery.
    pub last_rx: SimTime,
}

/// Outcome of one ring run.
#[derive(Clone, Debug)]
pub struct RingOutcome {
    /// Per-node delivery telemetry, indexed by node.
    pub per_node: Vec<RingNode>,
    /// Latest `last_rx` across the ring (start of time to all-delivered).
    pub makespan: SimDuration,
    /// Fabric counters for the whole run.
    pub san: SanStats,
}

/// Run the ring on `shards` engine shards (1 = the plain serial engine).
/// Every virtual-time observable in the result is shard-count-invariant.
pub fn ring(
    profile: Profile,
    nodes: usize,
    msgs: u64,
    size: u64,
    seed: u64,
    shards: usize,
) -> RingOutcome {
    let lookahead = profile.net.min_cross_latency();
    let engine = (shards > 1).then(|| ShardedSim::new(shards, lookahead));
    ring_with(profile, nodes, msgs, size, seed, engine)
}

/// Like [`ring`], but always drives the sharded engine — including at
/// `shards == 1`, where the engine must take its barrier/channel *bypass*
/// and run the exact serial scheduler path. The `sim_perf` bench pins that
/// bypass against [`ring`]'s plain-`Sim` baseline: any separation between
/// the two is sharding overhead taxing every single-shard run.
pub fn ring_pinned(
    profile: Profile,
    nodes: usize,
    msgs: u64,
    size: u64,
    seed: u64,
    shards: usize,
) -> RingOutcome {
    let lookahead = profile.net.min_cross_latency();
    let engine = ShardedSim::new(shards, lookahead);
    ring_with(profile, nodes, msgs, size, seed, Some(engine))
}

fn ring_with(
    profile: Profile,
    nodes: usize,
    msgs: u64,
    size: u64,
    seed: u64,
    engine: Option<ShardedSim>,
) -> RingOutcome {
    assert!(nodes >= 2, "a ring needs at least two nodes");
    let label = format!("{}-ring", profile.name);
    let serial = engine.is_none().then(Sim::new);
    let cluster = match &engine {
        Some(eng) => Cluster::new_sharded(eng, profile, nodes, seed),
        None => Cluster::new(serial.clone().expect("serial engine"), profile, nodes, seed),
    };

    // Receivers: accept from the predecessor, pre-post the whole window,
    // drain by polling.
    let mut servers = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let p = cluster.provider(i);
        let sim = cluster.node_sim(i).clone();
        servers.push(
            sim.spawn(format!("ring-srv{i}"), Some(p.cpu()), move |ctx| {
                let vi = p
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                for _ in 0..msgs {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, size as u32))
                        .expect("post_recv");
                }
                p.accept(ctx, &vi, Discriminator(i as u64)).expect("accept");
                let mut first = SimTime::MAX;
                let mut last = SimTime::ZERO;
                let mut bytes = 0u64;
                for _ in 0..msgs {
                    let comp = vi.recv_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "ring delivery failed: {:?}", comp.status);
                    bytes += comp.length;
                    first = first.min(ctx.now());
                    last = last.max(ctx.now());
                }
                RingNode {
                    delivered: msgs,
                    bytes,
                    first_rx: first,
                    last_rx: last,
                }
            }),
        );
    }

    // Senders: connect to the successor, then stream after a staggered,
    // tie-breaking start offset.
    let mut clients = Vec::with_capacity(nodes);
    for i in 0..nodes {
        let p = cluster.provider(i);
        let sim = cluster.node_sim(i).clone();
        let dst = (i + 1) % nodes;
        clients.push(
            sim.spawn(format!("ring-cli{i}"), Some(p.cpu()), move |ctx| {
                let vi = p
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .expect("vi");
                let buf = p.malloc(size);
                let mh = p
                    .register_mem(ctx, buf, size, MemAttributes::default())
                    .expect("register");
                p.connect(
                    ctx,
                    &vi,
                    NodeId(dst as u32),
                    Discriminator(dst as u64),
                    None,
                )
                .expect("connect");
                ctx.sleep(SimDuration::from_nanos(5_000 + 1_713 * i as u64));
                for _ in 0..msgs {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, size as u32))
                        .expect("post_send");
                    let comp = vi.send_wait(ctx, WaitMode::Poll);
                    assert!(comp.is_ok(), "ring send failed: {:?}", comp.status);
                }
            }),
        );
    }

    match (&engine, &serial) {
        (Some(eng), _) => {
            let rep = eng.run_to_completion();
            record_shard_run(ShardRunRecord {
                label,
                shards: eng.shards(),
                rounds: rep.rounds,
                per_shard: rep.per_shard,
            });
        }
        (None, Some(sim)) => {
            let rep = sim.run_to_completion();
            record_shard_run(ShardRunRecord {
                label,
                shards: 1,
                rounds: 0,
                per_shard: vec![simkit::ShardStats {
                    events: rep.events,
                    ..Default::default()
                }],
            });
        }
        (None, None) => unreachable!("one engine flavor is always built"),
    }
    for c in clients {
        c.expect_result();
    }
    let per_node: Vec<RingNode> = servers.into_iter().map(|s| s.expect_result()).collect();
    let makespan = per_node
        .iter()
        .map(|n| n.last_rx)
        .max()
        .expect("nonempty ring")
        .duration_since(SimTime::ZERO);
    RingOutcome {
        per_node,
        makespan,
        san: cluster.san().stats(),
    }
}

/// The X-SHARD table for one profile: per-node delivery rows plus ring
/// totals. Runs on [`default_shards`] engine shards; every cell is
/// virtual-time-derived and therefore shard-count-invariant.
pub fn ring_table(profile: Profile) -> Table {
    let name = profile.name;
    let outcome = ring(
        profile,
        RING_NODES,
        RING_MSGS,
        RING_SIZE,
        0x5A4D,
        default_shards(),
    );
    let mut t = Table::new(
        format!("X-SHARD: {RING_NODES}-node ring, {RING_MSGS} x {RING_SIZE} B per hop ({name})"),
        vec![
            "msgs".to_string(),
            "KB".to_string(),
            "first rx (us)".to_string(),
            "last rx (us)".to_string(),
            "goodput (MB/s)".to_string(),
        ],
    );
    for (i, n) in outcome.per_node.iter().enumerate() {
        let span = n.last_rx.saturating_duration_since(n.first_rx);
        let goodput = if span.is_zero() {
            0.0
        } else {
            simkit::megabytes_per_second(n.bytes, span)
        };
        t.push(
            format!("node{i}"),
            vec![
                n.delivered as f64,
                n.bytes as f64 / 1024.0,
                n.first_rx.as_micros_f64(),
                n.last_rx.as_micros_f64(),
                goodput,
            ],
        );
    }
    let total_msgs: u64 = outcome.per_node.iter().map(|n| n.delivered).sum();
    let total_bytes: u64 = outcome.per_node.iter().map(|n| n.bytes).sum();
    let aggregate = simkit::megabytes_per_second(total_bytes, outcome.makespan);
    t.push(
        "ring total",
        vec![
            total_msgs as f64,
            total_bytes as f64 / 1024.0,
            0.0,
            outcome.makespan.as_micros_f64(),
            aggregate,
        ],
    );
    t.push(
        "fabric frames (sent/delivered)",
        vec![
            outcome.san.frames_sent as f64,
            outcome.san.frames_delivered as f64,
            0.0,
            0.0,
            0.0,
        ],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(o: &RingOutcome) -> Vec<(u64, u64, u64, u64)> {
        o.per_node
            .iter()
            .map(|n| {
                (
                    n.delivered,
                    n.bytes,
                    n.first_rx.as_nanos(),
                    n.last_rx.as_nanos(),
                )
            })
            .collect()
    }

    #[test]
    fn ring_delivers_everything() {
        let o = ring(Profile::clan(), 4, 12, 512, 7, 1);
        assert_eq!(o.per_node.len(), 4);
        for n in &o.per_node {
            assert_eq!(n.delivered, 12);
            assert_eq!(n.bytes, 12 * 512);
            assert!(n.first_rx <= n.last_rx);
        }
        assert!(o.makespan > SimDuration::ZERO);
        assert_eq!(o.san.frames_dropped, 0);
    }

    #[test]
    fn ring_timeline_is_shard_count_invariant() {
        let serial = ring(Profile::clan(), RING_NODES, 16, 1024, 11, 1);
        for shards in [2usize, 4] {
            let sharded = ring(Profile::clan(), RING_NODES, 16, 1024, 11, shards);
            assert_eq!(
                key(&sharded),
                key(&serial),
                "per-node timeline diverged at shards={shards}"
            );
            assert_eq!(sharded.san, serial.san);
            assert_eq!(sharded.makespan, serial.makespan);
        }
    }

    #[test]
    fn one_shard_bypass_matches_plain_sim() {
        // ring_pinned(shards=1) runs the ShardedSim bypass; it must be
        // observationally identical to ring()'s plain-Sim baseline.
        let serial = ring(Profile::clan(), RING_NODES, 16, 1024, 11, 1);
        let bypass = ring_pinned(Profile::clan(), RING_NODES, 16, 1024, 11, 1);
        assert_eq!(key(&bypass), key(&serial));
        assert_eq!(bypass.san, serial.san);
        assert_eq!(bypass.makespan, serial.makespan);
    }
}
