//! # vibe — the VIBe micro-benchmark suite
//!
//! The paper's contribution: a structured suite of micro-benchmarks that
//! evaluates VIA implementations beyond raw latency/bandwidth, organized
//! in the paper's three categories:
//!
//! 1. **Non-data-transfer** ([`nondata`]): VI create/destroy, connection
//!    establish/teardown, memory registration/deregistration, CQ
//!    create/destroy (Table 1, Figs. 1–2).
//! 2. **Data-transfer** ([`base`], [`xlate`], [`cqimpact`], [`mvi`],
//!    [`extra`]): the base ping-pong/bandwidth/CPU tests and the
//!    one-knob-at-a-time variants — buffer reuse (address translation),
//!    completion queues, active-VI count, plus the tech-report extras
//!    (multiple data segments, asynchronous sends, RDMA, pipeline length,
//!    MTU, reliability levels) (Figs. 3–6 and §3.2.5).
//! 3. **Programming-model** ([`client_server`], [`getput`]): the
//!    request/reply transaction benchmark (Fig. 7) and the get/put model
//!    the paper's §5 announces as future work.
//!
//! [`scale`] adds the fan-in scalability study the paper's introduction
//! motivates ("insight about the number of VIs to be used in an
//! implementation and scalability studies"), [`sched_bench`] surfaces
//! the simulator's own per-class scheduler ledger (timer cancellation
//! behavior) as artifacts, and [`fault_bench`] drives scripted fault
//! windows through the fabric to measure recovery and the VI error-state
//! machinery.
//!
//! [`harness`] holds the measurement machinery; [`report`] renders
//! paper-style tables/figures; [`suite`] is the experiment registry the
//! `vibe` runner binary and the bench targets drive; [`runner`] fans the
//! registry's per-experiment job plans over a worker pool and reassembles
//! the artifacts deterministically.

#![warn(missing_docs)]

pub mod base;
pub mod breakdown;
pub mod chaos;
pub mod client_server;
pub mod cqimpact;
pub mod crash_bench;
pub mod dsm_bench;
pub mod extra;
pub mod failover_bench;
pub mod fault_bench;
pub mod getput;
pub mod harness;
pub mod mpl_bench;
pub mod mvi;
pub mod nondata;
pub mod report;
pub mod runner;
pub mod scale;
pub mod sched_bench;
pub mod shard_bench;
pub mod suite;
pub mod topo_bench;
pub mod trace_bench;
pub mod xlate;

pub use harness::{
    bandwidth, paper_sizes, ping_pong, rdma_write_ping, transactions, BandwidthResult, BufferPool,
    DtConfig, Endpoint, Pair, PingPongResult,
};
pub use report::{merge_artifacts, Artifact, Figure, Series, Table};
pub use runner::{
    default_shards, default_workers, record_shard_run, run_suite, take_shard_runs, Job, JobReport,
    ShardRunRecord, SuiteRun,
};
pub use suite::{all_experiments, Experiment};
