//! X-CHAOS: seeded chaos episodes with conservation-invariant oracles.
//!
//! Each episode composes a randomized provider configuration (profile,
//! work-queue depth, credit budget, NIC transmit-ring size), a randomized
//! workload (message count, size, reliability level), and a randomized
//! [`fabric::FaultPlan`] — all drawn from one content-keyed RNG stream —
//! runs it to completion, and checks the conservation invariants the
//! engine must uphold no matter what the fabric did to it:
//!
//! * **descriptor conservation** — every posted send completes exactly
//!   once: successes plus error completions equal posts, nothing vanishes
//!   and nothing completes twice;
//! * **honest failure** — a truncated stream implies a recorded
//!   connection failure, never a silent stall;
//! * **recoverability** — a VI that failed is recoverable by the spec's
//!   one legal arc (disconnect → reconnect → resend) once the fault
//!   windows close;
//! * **no leaks** — [`via::Provider::audit`] finds no stranded
//!   descriptor, credit, CQ reference, or NIC-ring entry on either node
//!   afterwards.
//!
//! A violated invariant panics with the episode's parameters, so the CI
//! golden regeneration doubles as the chaos smoke test. Episode seeds
//! derive from [`BASE_SEED`] and the episode index only, which keeps the
//! table byte-identical at any worker count.

use std::sync::Arc;

use fabric::{FaultPlan, NodeId, PortLimits, Topology};
use simkit::{ProcessCtx, SimBarrier, SimDuration, SimRng, WaitMode};
use via::{Discriminator, MemAttributes, MemHandle, Profile, Reliability, ViAttributes, ViaError};

use crate::harness::{DtConfig, Endpoint, Pair, BASE_SEED};
use crate::report::Table;

/// Episodes X-CHAOS runs (and CI replays as the chaos smoke).
pub const EPISODES: usize = 25;

/// Message sizes an episode draws from.
const MSG_SIZES: [u64; 5] = [64, 256, 1024, 4096, 8192];

/// Fault windows are placed inside this span past the stream start.
const FAULT_SPAN: SimDuration = SimDuration::from_micros(5_000);

/// Trunk joining the two switches of a multi-switch episode's dumbbell:
/// generous bandwidth and a wide MTU so every profile's frames fit.
fn chaos_trunk() -> fabric::LinkParams {
    fabric::LinkParams {
        bandwidth_bps: 1_000_000_000,
        propagation: SimDuration::from_nanos(600),
        frame_overhead_bytes: 8,
        mtu: 64 * 1024,
    }
}

/// What one chaos episode observed.
#[derive(Clone, Copy, Debug)]
pub struct EpisodeReport {
    /// Cluster-seed fingerprint recorded in the table (`seed % 1e6`).
    pub seed_fp: u64,
    /// Fault windows the episode's plan scheduled.
    pub faults: u64,
    /// Messages the workload intended to send.
    pub msgs: u64,
    /// Message size in bytes.
    pub bytes: u64,
    /// Sends actually posted (the stream truncates when the VI fails).
    pub posted: u64,
    /// Sends completed successfully, including any post-reconnect resends.
    pub completed: u64,
    /// Sends completed with an error status (flushed or rejected).
    pub errored: u64,
    /// The client provider's connection-failure counter.
    pub conn_failures: u64,
    /// Sends the credit ledger parked at least once.
    pub credit_stalls: u64,
    /// True when no failure occurred, or the reconnect arc re-delivered
    /// everything outstanding without a second failure.
    pub recovered: bool,
    /// Every invariant held (violations panic, so a surviving report is
    /// always `true`; the column keeps the verdict visible in the table).
    pub invariants_ok: bool,
}

/// Client-side stream accounting, shared by the first pass and the
/// post-reconnect resend pass.
#[derive(Default)]
struct Stream {
    posted: u64,
    ok: u64,
    errored: u64,
    outstanding: u64,
    conn_lost: bool,
}

impl Stream {
    fn absorb(&mut self, c: &via::Completion) {
        self.outstanding -= 1;
        if c.is_ok() {
            self.ok += 1;
        } else {
            self.errored += 1;
            if c.status == Err(ViaError::ConnectionLost) {
                self.conn_lost = true;
            }
        }
    }

    fn wait_one(&mut self, ctx: &mut ProcessCtx, ep: &Endpoint) {
        let c = ep.vi.send_wait(ctx, WaitMode::Poll);
        self.absorb(&c);
    }

    /// Post one send, riding through backpressure. The bounded work
    /// queue can refuse a post (`QueueFull`) even with every completion
    /// drained: entries stay queued until the NIC's transmit engine
    /// retires them, and a fault window slows that engine down. Draining
    /// a completion (or idling when none is outstanding) frees a slot.
    /// Returns `false` when the VI refuses new work outright because it
    /// entered the Error state.
    fn post(
        &mut self,
        ctx: &mut ProcessCtx,
        ep: &Endpoint,
        buf: u64,
        mh: MemHandle,
        size: u64,
    ) -> bool {
        loop {
            match ep.vi.post_send(ctx, ep.split_desc(false, buf, mh, size, 1)) {
                Ok(()) => {
                    self.posted += 1;
                    self.outstanding += 1;
                    return true;
                }
                Err(ViaError::QueueFull) => {
                    if self.outstanding > 0 {
                        self.wait_one(ctx, ep);
                    } else {
                        ctx.busy(SimDuration::from_micros(50));
                    }
                }
                Err(ViaError::InvalidState) => return false,
                Err(e) => panic!("chaos post_send: {e:?}"),
            }
        }
    }
}

fn rel_short(r: Reliability) -> &'static str {
    match r {
        Reliability::Unreliable => "UD",
        Reliability::ReliableDelivery => "RD",
        Reliability::ReliableReception => "RR",
    }
}

/// Draw the episode's provider configuration. The retry budget is always
/// shortened so retry exhaustion fits inside an episode; the resource
/// knobs (credit budget, queue depth, NIC ring) shrink with some
/// probability so exhaustion semantics get exercised, not just fault
/// windows.
fn episode_profile(rng: &mut SimRng) -> (Profile, Reliability) {
    let mut p = match rng.below(3) {
        0 => Profile::mvia(),
        1 => Profile::bvia(),
        _ => Profile::clan(),
    };
    p.data.retransmit_timeout = SimDuration::from_micros(400);
    p.data.max_rto = SimDuration::from_micros(4_000);
    p.data.max_retries = 3;
    let reliability = p.reliability_levels[rng.below(p.reliability_levels.len() as u64) as usize];
    let shrink_credits = if reliability == Reliability::Unreliable {
        rng.chance(0.4)
    } else {
        // Credit flow only gates reliable sends, so lean into tiny
        // budgets when they can actually bite.
        rng.chance(0.6)
    };
    if shrink_credits {
        // A tiny initial budget forces parking until ACK-carried grants
        // arrive. Never zero: the first send must be able to leave, and
        // any parked send is then covered by an in-flight timer.
        p.credit_flow.initial = 2 + rng.below(4) as u32;
    }
    if rng.chance(0.3) {
        // Can undercut the message count: the receiver then can't post a
        // descriptor per message and reliable streams must fail honestly.
        p.max_queue_depth = 8 + rng.below(25) as usize;
    }
    if rng.chance(0.25) {
        p.nic_tx_ring = 4 + rng.below(13) as usize;
    }
    (p, reliability)
}

/// Run chaos episode `idx` and check every invariant (panicking on any
/// violation, with the episode parameters in the message).
pub fn run_episode(idx: usize) -> EpisodeReport {
    let mut rng = SimRng::derive(BASE_SEED, &format!("chaos-ep{idx:02}"));
    let cluster_seed = rng.next_u64();
    let (profile, reliability) = episode_profile(&mut rng);
    let msgs = 8 + rng.below(33);
    let size = MSG_SIZES[rng.below(MSG_SIZES.len() as u64) as usize];
    let queue_depth = 4 + rng.below(5) as usize;
    // Some episodes put the pair on a two-switch dumbbell, so the
    // randomized plan can draw switch-down / trunk-down windows and the
    // recovery arc runs over a fabric that reroutes (here: fail-stop and
    // heal — a dumbbell has no alternate path, the honest worst case).
    let topology = if rng.chance(0.3) {
        Some(Topology::dumbbell(2, chaos_trunk(), PortLimits::default()))
    } else {
        None
    };
    let cfg = DtConfig {
        iters: msgs as u32,
        warmup: 0,
        reliability,
        queue_depth,
        seed: cluster_seed,
        topology,
        ..DtConfig::base(profile, size)
    };
    let pair = Pair::new(&cfg);
    let san = pair.san();
    let attrs = ViAttributes::reliable(reliability);
    // The client decides after its stream whether the failure arc runs;
    // the server learns the verdict across a second barrier.
    let needs_reconnect = Arc::new(parking_lot::Mutex::new(false));
    let rendezvous = SimBarrier::new(2);
    let (flag_s, flag_c) = (needs_reconnect.clone(), needs_reconnect);
    let (barrier_s, barrier_c) = (rendezvous.clone(), rendezvous);
    let qd = queue_depth as u64;
    let (_, out) = pair.run(
        move |ctx, ep| {
            // A second VI on discriminator 2 is the reconnect target.
            let vi2 = ep.provider.create_vi(ctx, attrs, None, None).unwrap();
            let buf = ep.provider.malloc(size);
            let mh = ep
                .provider
                .register_mem(ctx, buf, size, MemAttributes::default())
                .unwrap();
            // Post a descriptor per message on both VIs, stopping at the
            // work-queue depth limit: a shrunken queue leaves later
            // messages descriptor-less, which reliable streams must
            // surface as retry exhaustion, not absorb silently.
            for vi in [&ep.vi, &vi2] {
                for _ in 0..msgs {
                    if vi
                        .post_recv(ctx, ep.split_desc(true, buf, mh, size, 1))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            ep.sync(ctx);
            barrier_s.wait(ctx);
            if *flag_s.lock() {
                ep.provider
                    .accept(ctx, &vi2, Discriminator(2))
                    .expect("reconnect accept");
            }
        },
        move |ctx, ep| {
            let buf = ep.provider.malloc(size);
            let mh = ep
                .provider
                .register_mem(ctx, buf, size, MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            let t0 = ctx.now();
            // Compose the fault plan relative to the stream start (the
            // handshake consumed a profile-dependent stretch of sim time).
            let start = t0 + SimDuration::from_micros(100);
            let plan = match san.topology() {
                // Multi-switch episodes draw from the full window pool,
                // including switch-down and trunk-down kinds.
                Some(t) => FaultPlan::randomized_topo(&mut rng, start, FAULT_SPAN, t),
                None => FaultPlan::randomized(&mut rng, start, FAULT_SPAN, 2),
            };
            let faults = plan.events().len() as u64;
            let plan_end = plan
                .events()
                .iter()
                .map(|w| w.at + w.duration)
                .max()
                .unwrap_or(t0);
            san.install_faults(&plan);
            let mut s = Stream::default();
            for _ in 0..msgs {
                // A refused post means the VI failed between completions;
                // the flush below accounts for everything outstanding.
                if !s.post(ctx, &ep, buf, mh, size) {
                    break;
                }
                if s.outstanding >= qd {
                    s.wait_one(ctx, &ep);
                }
            }
            while s.outstanding > 0 {
                s.wait_one(ctx, &ep);
            }
            let failed = s.conn_lost || s.posted < msgs;
            *flag_c.lock() = failed;
            barrier_c.wait(ctx);
            let mut recovered = !failed;
            if failed {
                // The spec's only exit from the Error state.
                ep.provider.disconnect(ctx, &ep.vi).expect("disconnect");
                // Sit out every scheduled fault window before redialing:
                // the reconnect handshake has no retransmission of its own.
                let resume = plan_end + SimDuration::from_micros(200);
                let wait = resume.saturating_duration_since(ctx.now());
                if wait > SimDuration::ZERO {
                    ctx.busy(wait);
                }
                ep.provider
                    .connect(ctx, &ep.vi, NodeId(1), Discriminator(2), None)
                    .expect("reconnect");
                // Re-send everything that never completed successfully. A
                // second failure (e.g. the fresh VI's receive queue is
                // also too shallow) is tolerated — it just isn't recovery.
                recovered = true;
                let before = s.errored;
                for _ in 0..msgs - s.ok {
                    if !s.post(ctx, &ep, buf, mh, size) {
                        recovered = false;
                        break;
                    }
                    if s.outstanding >= qd {
                        s.wait_one(ctx, &ep);
                    }
                    if s.errored > before {
                        recovered = false;
                        break;
                    }
                }
                while s.outstanding > 0 {
                    s.wait_one(ctx, &ep);
                }
                if s.errored > before {
                    recovered = false;
                }
            }
            // Park the VI cleanly; legal from Connected and Error alike.
            let _ = ep.provider.disconnect(ctx, &ep.vi);
            (faults, s.posted, s.ok, s.errored, failed, recovered)
        },
    );
    let (faults, posted, completed, errored, failed, recovered) = out;
    let stats = pair.provider_stats(0);
    let tag = format!(
        "chaos ep{idx:02} ({}/{} {size}B x{msgs}, seed {cluster_seed})",
        cfg.profile.name,
        rel_short(reliability)
    );
    // Invariant: descriptor conservation — every posted send completed
    // exactly once, as a success or an error, nothing in between.
    assert_eq!(
        completed + errored,
        posted,
        "{tag}: {completed} ok + {errored} errored != {posted} posted"
    );
    // Invariant: honest failure — a truncated or errored stream must have
    // recorded a connection failure, never stalled silently.
    if failed {
        assert!(
            stats.conn_failures >= 1,
            "{tag}: stream failed but no connection failure was recorded"
        );
    }
    // Invariant: no leaks on either node, whatever arc the episode took.
    for node in 0..2 {
        let audit = pair.provider(node).audit();
        assert!(
            audit.is_clean(),
            "{tag}: node {node} audit: {:?}",
            audit.violations
        );
    }
    // Invariant: fused-ledger conservation — macro-events never break the
    // attempt accounting, even mid-fault-window (episodes install fault
    // plans, so most attempts de-fuse; the ledger must still balance).
    // Note: hits == 0 does NOT imply events_elided == 0 — receive landings
    // and ack elisions fold without a sender-side fuse hit.
    let sched = pair.sim().sched_stats();
    assert_eq!(
        sched.fuse.attempts,
        sched.fuse.hits + sched.fuse.defused(),
        "{tag}: fuse ledger unbalanced: {:?}",
        sched.fuse
    );
    assert_eq!(
        sched.macro_events, sched.fuse.hits,
        "{tag}: macro-event census mismatch"
    );
    // Invariant: node-scoped fault accounting — the per-node split of
    // the fault-drop bucket never exceeds the fabric total, a plan with
    // no node windows drains nothing into it, and every node_down /
    // nic_reset window open is acknowledged by exactly one provider
    // crash wipe (the audit above already checked the wiped-and-rebuilt
    // state leaks nothing).
    let fstats = pair.san().stats();
    let node_dropped: u64 = pair.san().node_fault_dropped().iter().sum();
    assert!(
        node_dropped <= fstats.frames_fault_dropped,
        "{tag}: per-node fault attribution exceeds the fabric total"
    );
    if !pair.san().node_faults_installed() {
        assert_eq!(
            node_dropped, 0,
            "{tag}: node-attributed drops without node windows"
        );
    }
    let crash_wipes: u64 = (0..2)
        .map(|n| {
            let s = pair.provider(n).stats();
            s.node_crashes + s.nic_resets
        })
        .sum();
    // Fold the episode's fault exposure into the suite's `[fabric: ...]`
    // summary (switch-scoped windows on dumbbell episodes flush frames,
    // node windows wipe providers; chaos streams use raw VIs, so no
    // sessions recover here).
    crate::runner::record_crash_health(crash_wipes, 0);
    crate::runner::record_fabric_health(
        pair.san()
            .port_stats()
            .iter()
            .map(|p| p.stats.storm_trips)
            .sum(),
        fstats.frames_fault_dropped,
    );
    EpisodeReport {
        seed_fp: cluster_seed % 1_000_000,
        faults,
        msgs,
        bytes: size,
        posted,
        completed,
        errored,
        conn_failures: stats.conn_failures,
        credit_stalls: stats.credit_stalls,
        recovered,
        invariants_ok: true,
    }
}

fn table_shell() -> Table {
    Table::new(
        "X-CHAOS: randomized fault episodes & conservation invariants",
        vec![
            "seed".to_string(),
            "faults".to_string(),
            "msgs".to_string(),
            "bytes".to_string(),
            "posted".to_string(),
            "completed".to_string(),
            "errored".to_string(),
            "conn failures".to_string(),
            "credit stalls".to_string(),
            "recovered".to_string(),
            "invariants ok".to_string(),
        ],
    )
}

fn push_episode(t: &mut Table, idx: usize, r: &EpisodeReport) {
    t.push(
        format!("ep{idx:02}"),
        vec![
            r.seed_fp as f64,
            r.faults as f64,
            r.msgs as f64,
            r.bytes as f64,
            r.posted as f64,
            r.completed as f64,
            r.errored as f64,
            r.conn_failures as f64,
            r.credit_stalls as f64,
            if r.recovered { 1.0 } else { 0.0 },
            if r.invariants_ok { 1.0 } else { 0.0 },
        ],
    );
}

/// One episode as a single-row table slice (the parallel plan's job
/// granularity; same-column slices row-merge back in episode order).
pub fn episode_table(idx: usize) -> Table {
    let mut t = table_shell();
    push_episode(&mut t, idx, &run_episode(idx));
    t
}

/// All [`EPISODES`] episodes as one table (the serial path).
pub fn chaos_table() -> Table {
    let mut t = table_shell();
    for idx in 0..EPISODES {
        push_episode(&mut t, idx, &run_episode(idx));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_are_deterministic() {
        let a = episode_table(3);
        let b = episode_table(3);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.rows.len(), 1);
        assert_eq!(a.rows[0].0, "ep03");
    }

    #[test]
    fn an_episode_upholds_its_invariants() {
        // run_episode panics on any violation; a returned report passed.
        let r = run_episode(0);
        assert!(r.invariants_ok);
        assert_eq!(r.completed + r.errored, r.posted);
        assert!(r.msgs >= 8 && r.msgs <= 40);
    }

    #[test]
    fn serial_and_sliced_tables_agree() {
        let mut merged = episode_table(0);
        merged.merge_from(episode_table(1));
        let mut serial = table_shell();
        for idx in 0..2 {
            push_episode(&mut serial, idx, &run_episode(idx));
        }
        assert_eq!(merged.to_csv(), serial.to_csv());
    }
}
