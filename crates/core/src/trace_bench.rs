//! X-TRACE: trace-derived per-stage latency and lifecycle counters.
//!
//! Where X-BRK reconstructs a message's journey from the `via` data-path
//! probe, this experiment derives the same journey from the `trace` crate's
//! layer-boundary records — doorbell, firmware scan, descriptor fetch,
//! DMA, wire, landing, completion — and the two must agree exactly at
//! every shared cut point, because trace records and probe events are
//! stamped at the same sim times by colocated instrumentation. That
//! cross-check (see `trace_stage_stamps_match_probe_breakdown`) is the
//! suite's evidence that the always-on tracing layer observes the
//! simulation without perturbing it.

use std::io::Write as _;

use simkit::{SimDuration, WaitMode};
use trace::{chrome_trace_json, MsgId, Record, TraceConfig, TracePoint};
use via::{Descriptor, MemAttributes, Profile};

use crate::harness::{DtConfig, Pair};
use crate::report::Table;

/// A traced one-way message stream: the full record set, the id of the
/// probed message, and the metrics snapshot of the run.
pub struct TracedRun {
    /// Every span record the run captured, in ring order.
    pub records: Vec<Record>,
    /// [`MsgId`] of the `probe_seq`-th message the client posted.
    pub msg: MsgId,
    /// Counters, gauges, and engine-event tallies at end of run.
    pub snapshot: trace::MetricsSnapshot,
}

/// Stream `probe_seq + 1` one-way messages of `size` bytes on `profile`
/// with tracing enabled, mirroring the X-BRK probe stream (same seed, same
/// spacing) so the two runs have identical timelines.
pub fn traced_stream(profile: Profile, size: u64, probe_seq: u64) -> TracedRun {
    let cfg = DtConfig {
        iters: 4,
        warmup: 0,
        ..DtConfig::base(profile, size)
    };
    let pair = Pair::new(&cfg);
    let tracer = pair.enable_trace(TraceConfig::default());
    let total = probe_seq + 1;
    let scfg = cfg.clone();
    let ccfg = cfg.clone();
    pair.run(
        move |ctx, ep| {
            let cfg = scfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            for _ in 0..total {
                ep.vi
                    .post_recv(
                        ctx,
                        Descriptor::recv().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
            }
            ep.sync(ctx);
            for _ in 0..total {
                let c = ep.vi.recv_wait(ctx, WaitMode::Poll);
                assert!(c.is_ok());
            }
        },
        move |ctx, ep| {
            let cfg = ccfg;
            let buf = ep.provider.malloc(cfg.msg_size.max(1));
            let mh = ep
                .provider
                .register_mem(ctx, buf, cfg.msg_size.max(1), MemAttributes::default())
                .unwrap();
            ep.sync(ctx);
            for _ in 0..total {
                ep.vi
                    .post_send(
                        ctx,
                        Descriptor::send().segment(buf, mh, cfg.msg_size as u32),
                    )
                    .unwrap();
                let c = ep.vi.send_wait(ctx, WaitMode::Poll);
                assert!(c.is_ok());
                // Space messages so timelines never overlap (as X-BRK does).
                ctx.sleep(SimDuration::from_millis(2));
            }
        },
    );
    let records = tracer.records();
    // The probed message is the `probe_seq`-th send the client posted.
    let mut posts: Vec<&Record> = records
        .iter()
        .filter(|r| r.point == TracePoint::SendPosted && r.node == 0)
        .collect();
    posts.sort_by_key(|r| r.at_ns);
    let msg = posts
        .get(probe_seq as usize)
        .and_then(|r| r.msg)
        .expect("probed message was posted");
    TracedRun {
        records,
        msg,
        snapshot: tracer.snapshot(),
    }
}

/// The named cut points a stage table is built from, in pipeline order.
const CUTS: &[&str] = &[
    "posted",
    "doorbell",
    "fw_scanned",
    "desc_fetched",
    "first_dma",
    "first_wire_tx",
    "last_wire_tx",
    "last_wire_rx",
    "landed",
    "recv_completed",
];

/// Absolute ns of each `CUTS` entry for `msg`, from its trace records. A
/// cut an architecture skips (e.g. the firmware scan on M-VIA) inherits
/// the previous cut's stamp, so skipped stages read as zero-duration rows
/// and every nanosecond stays attributed to some row.
pub fn cut_stamps(records: &[Record], msg: MsgId) -> Vec<(&'static str, u64)> {
    let of: Vec<&Record> = records.iter().filter(|r| r.msg == Some(msg)).collect();
    let first = |p: TracePoint| of.iter().filter(|r| r.point == p).map(|r| r.at_ns).min();
    let last = |p: TracePoint| of.iter().filter(|r| r.point == p).map(|r| r.at_ns).max();
    let raw: Vec<Option<u64>> = vec![
        first(TracePoint::SendPosted),
        first(TracePoint::DoorbellRing),
        first(TracePoint::FwScan),
        first(TracePoint::DescFetch),
        first(TracePoint::DmaStart),
        first(TracePoint::WireTx),
        last(TracePoint::WireTx),
        last(TracePoint::WireRx),
        last(TracePoint::RecvLanded),
        of.iter()
            .filter(|r| r.point == TracePoint::CqCompletion && r.aux == 1)
            .map(|r| r.at_ns)
            .max(),
    ];
    let mut out = Vec::with_capacity(CUTS.len());
    let mut prev = 0u64;
    for (name, at) in CUTS.iter().zip(raw) {
        let at = at.unwrap_or(prev);
        out.push((*name, at));
        prev = at;
    }
    out
}

/// Fixed stage-latency rows: `(label, from-cut, to-cut)`.
const STAGE_ROWS: &[(&str, &str, &str)] = &[
    ("post -> doorbell", "posted", "doorbell"),
    ("doorbell -> firmware scan", "doorbell", "fw_scanned"),
    (
        "firmware scan -> desc fetched",
        "fw_scanned",
        "desc_fetched",
    ),
    ("desc fetched -> first DMA", "desc_fetched", "first_dma"),
    ("first DMA -> first wire tx", "first_dma", "first_wire_tx"),
    (
        "tx streaming (first -> last wire)",
        "first_wire_tx",
        "last_wire_tx",
    ),
    (
        "wire + rx (last tx -> last rx)",
        "last_wire_tx",
        "last_wire_rx",
    ),
    ("rx placement (last rx -> landed)", "last_wire_rx", "landed"),
    ("landed -> recv completion", "landed", "recv_completed"),
    (
        "TOTAL (post -> recv completion)",
        "posted",
        "recv_completed",
    ),
];

fn stamp(cuts: &[(&'static str, u64)], name: &str) -> u64 {
    cuts.iter()
        .find(|(n, _)| *n == name)
        .map(|(_, t)| *t)
        .unwrap_or(0)
}

/// Both X-TRACE tables for `profiles` at `size` bytes, from one traced run
/// per profile: per-stage latency of the warm probed message, and the
/// run's lifecycle-point counters.
pub fn x_trace_tables(profiles: &[Profile], size: u64) -> (Table, Table) {
    let cols: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
    let mut stages = Table::new(
        format!("X-TRACE: trace-derived stage latency of one warm {size} B transfer (us)"),
        cols.clone(),
    );
    let mut counts = Table::new(
        format!("X-TRACE: lifecycle records of a {size} B one-way stream (count)"),
        cols,
    );
    // Probe message 2 (0-indexed), matching X-BRK: caches warm, queues quiet.
    let runs: Vec<TracedRun> = profiles
        .iter()
        .map(|p| traced_stream(p.clone(), size, 2))
        .collect();
    let cuts: Vec<Vec<(&'static str, u64)>> =
        runs.iter().map(|r| cut_stamps(&r.records, r.msg)).collect();
    for (label, from, to) in STAGE_ROWS {
        let cells: Vec<f64> = cuts
            .iter()
            .map(|c| (stamp(c, to).saturating_sub(stamp(c, from))) as f64 / 1_000.0)
            .collect();
        stages.push(*label, cells);
    }
    // The committed golden pins exactly the message-lifecycle rows; the
    // fault/recovery points (zero in this clean workload) are excluded.
    for point in TracePoint::LIFECYCLE {
        let cells: Vec<f64> = runs
            .iter()
            .map(|r| r.snapshot.points[point.index()].1 as f64)
            .collect();
        counts.push(point.name(), cells);
    }
    counts.push(
        "engine events (hooked)",
        runs.iter()
            .map(|r| {
                r.snapshot
                    .engine_events
                    .iter()
                    .map(|(_, n)| *n)
                    .sum::<u64>() as f64
            })
            .collect(),
    );
    (stages, counts)
}

/// Write one Perfetto/Chrome-loadable JSON trace per profile into `dir`
/// (created if needed); returns the written file names. Each trace is a
/// `size`-byte one-way stream, the same workload the X-TRACE tables use.
pub fn write_chrome_traces(dir: &std::path::Path, size: u64) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for profile in Profile::paper_trio() {
        let name = format!("x_trace_{}_{size}b.json", profile.name.to_lowercase());
        let run = traced_stream(profile, size, 2);
        let mut f = std::fs::File::create(dir.join(&name))?;
        f.write_all(chrome_trace_json(&run.records).as_bytes())?;
        written.push(name);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown;

    /// Shared cut points between the probe vocabulary and the trace
    /// vocabulary. Both are stamped at the same sim times by colocated
    /// instrumentation, so a traced run and a probed run of the same
    /// deterministic workload must agree exactly.
    const SHARED: &[(&str, &str)] = &[
        ("posted", "posted"),
        ("fw_scanned", "fw_scanned"),
        ("desc_fetched", "desc_fetched"),
        ("first_frag_wire", "first_wire_tx"),
        ("last_frag_wire", "last_wire_tx"),
        ("last_frag_landed", "landed"),
        ("recv_completed", "recv_completed"),
    ];

    #[test]
    fn trace_stage_stamps_match_probe_breakdown() {
        for profile in [Profile::bvia(), Profile::clan(), Profile::mvia()] {
            let name = profile.name;
            let tl = breakdown::message_timeline(profile.clone(), 4096, 2);
            let run = traced_stream(profile, 4096, 2);
            let cuts = cut_stamps(&run.records, run.msg);
            let posted_ns = stamp(&cuts, "posted");
            for (probe_stage, cut) in SHARED {
                let Some(probe_us) = tl
                    .marks
                    .iter()
                    .find(|(s, _)| s == probe_stage)
                    .map(|(_, t)| *t)
                else {
                    continue; // stage skipped by this architecture
                };
                let trace_us = (stamp(&cuts, cut).saturating_sub(posted_ns)) as f64 / 1_000.0;
                assert!(
                    (probe_us - trace_us).abs() < 1e-6,
                    "{name}/{probe_stage}: probe {probe_us} us vs trace {trace_us} us"
                );
            }
        }
    }

    #[test]
    fn stage_table_is_monotone_and_totals_add_up() {
        let (stages, counts) = x_trace_tables(&[Profile::bvia()], 4096);
        let col = "BVIA";
        let parts: f64 = STAGE_ROWS[..STAGE_ROWS.len() - 1]
            .iter()
            .map(|(label, _, _)| stages.cell(label, col).unwrap())
            .sum();
        let total = stages.cell("TOTAL (post -> recv completion)", col).unwrap();
        assert!(
            (parts - total).abs() < 1e-6,
            "rows {parts} != total {total}"
        );
        assert!(total > 10.0, "a 4 KiB transfer takes tens of us: {total}");
        // The full offload pipeline leaves records at every forward stage.
        for point in [
            "send_posted",
            "doorbell_ring",
            "fw_scan",
            "desc_fetch",
            "dma_start",
            "wire_tx",
            "wire_rx",
            "recv_landed",
            "cq_completion",
        ] {
            assert!(counts.cell(point, col).unwrap() > 0.0, "no {point} records");
        }
    }

    #[test]
    fn host_emulated_skips_device_stage_rows() {
        let (stages, counts) = x_trace_tables(&[Profile::mvia()], 1024);
        // M-VIA has no firmware scan or descriptor-fetch DMA: those rows
        // read zero, and no FwScan/DescFetch records exist at all.
        assert_eq!(
            stages.cell("firmware scan -> desc fetched", "M-VIA"),
            Some(0.0)
        );
        assert_eq!(counts.cell("fw_scan", "M-VIA"), Some(0.0));
        assert_eq!(counts.cell("desc_fetch", "M-VIA"), Some(0.0));
        // But the kernel-trap doorbell and the wire still leave records.
        assert!(counts.cell("doorbell_ring", "M-VIA").unwrap() > 0.0);
        assert!(counts.cell("wire_tx", "M-VIA").unwrap() > 0.0);
    }

    #[test]
    fn chrome_export_writes_loadable_json() {
        let dir = std::env::temp_dir().join("vibe_x_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let files = write_chrome_traces(&dir, 4096).unwrap();
        assert_eq!(files.len(), 3);
        for f in &files {
            let body = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(
                body.starts_with("{\"traceEvents\":["),
                "{f}: not a chrome trace"
            );
            assert!(body.contains("\"ph\":\"X\""), "{f}: no spans");
            assert!(body.contains("process_name"), "{f}: no node metadata");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
