//! The experiment registry: every table and figure the paper reports (plus
//! the tech-report extras and our extensions) mapped to a runnable that
//! regenerates it as structured [`Artifact`]s — renderable as paper-style
//! text or CSV. Drives the `run_suite` example binary and the bench
//! targets.

use via::Profile;

use crate::harness::BASE_SEED;
use crate::report::Artifact;
use crate::runner::Job;
use crate::{
    base, breakdown, chaos, client_server, cqimpact, crash_bench, dsm_bench, extra, failover_bench,
    fault_bench, getput, harness, mpl_bench, mvi, nondata, scale, sched_bench, shard_bench,
    topo_bench, trace_bench, xlate,
};
use simkit::WaitMode;

/// Which paper category an experiment belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// §3.1 non-data-transfer benchmarks.
    NonDataTransfer,
    /// §3.2 data-transfer benchmarks.
    DataTransfer,
    /// §3.3 programming-model benchmarks.
    ProgrammingModel,
}

/// One runnable experiment.
pub struct Experiment {
    /// Short id ("T1", "F3", "X-MDS", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Paper category.
    pub category: Category,
    /// Regenerate the artifact set (the serial path).
    pub produce: fn() -> Vec<Artifact>,
    /// Decompose into self-contained [`Job`]s, in canonical order. The
    /// parallel runner merges the job outputs back into exactly what
    /// `produce` builds (see [`crate::report::merge_artifacts`]).
    pub plan: fn() -> Vec<Job>,
}

impl Experiment {
    /// Run and render every artifact as paper-style text.
    pub fn run_text(&self) -> String {
        render_text(&(self.produce)())
    }

    /// Run and serialize the artifact set as one JSON document (the
    /// paper's planned "repository of VIBe results" interchange form).
    pub fn run_json(&self) -> String {
        render_json(self.id, self.title, &(self.produce)())
    }

    /// Run and render every artifact as `(slug, csv)` pairs suitable for
    /// writing to files.
    pub fn run_csv(&self) -> Vec<(String, String)> {
        render_csv(self.id, &(self.produce)())
    }
}

/// Render an artifact set as paper-style text. Shared by
/// [`Experiment::run_text`] and the parallel runner, so serial and merged
/// artifacts go through one code path.
pub fn render_text(artifacts: &[Artifact]) -> String {
    artifacts
        .iter()
        .map(Artifact::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Serialize an artifact set as one JSON document (see
/// [`Experiment::run_json`]).
pub fn render_json(id: &str, title: &str, artifacts: &[Artifact]) -> String {
    let items: Vec<String> = artifacts.iter().map(|a| a.to_json()).collect();
    format!(
        "{{\n  \"id\": \"{id}\",\n  \"title\": \"{title}\",\n  \"artifacts\": [\n{}\n  ]\n}}",
        items.join(",\n")
    )
}

/// Render an artifact set as `(slug, csv)` pairs (see
/// [`Experiment::run_csv`]).
pub fn render_csv(id: &str, artifacts: &[Artifact]) -> Vec<(String, String)> {
    artifacts
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let slug: String = a
                .title()
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() {
                        c.to_ascii_lowercase()
                    } else {
                        '_'
                    }
                })
                .collect();
            (format!("{}_{}_{}", id.to_lowercase(), i, slug), a.to_csv())
        })
        .collect()
}

/// Shorthand: a plan job on the suite's base seed.
fn job(label: String, run: impl FnOnce() -> Vec<Artifact> + Send + 'static) -> Job {
    Job::new(label, BASE_SEED, run)
}

fn trio() -> Vec<Profile> {
    Profile::paper_trio()
}

fn run_t1() -> Vec<Artifact> {
    vec![nondata::table1(&trio(), 3).into()]
}

fn f1_f2(profiles: &[Profile]) -> Vec<Artifact> {
    let sizes = nondata::registration_sizes();
    let mut reg = crate::report::Figure::new(
        "Fig 1: cost of memory registration",
        "buffer bytes",
        "cost (us)",
    );
    let mut dereg = crate::report::Figure::new(
        "Fig 2: cost of memory deregistration",
        "buffer bytes",
        "cost (us)",
    );
    for p in profiles {
        let (r, d) = nondata::registration_costs(p.clone(), &sizes);
        reg.push(r);
        dereg.push(d);
    }
    vec![reg.into(), dereg.into()]
}

fn run_f1_f2() -> Vec<Artifact> {
    f1_f2(&trio())
}

fn run_f3() -> Vec<Artifact> {
    vec![
        base::latency_figure(&trio(), WaitMode::Poll).into(),
        base::bandwidth_figure(&trio(), WaitMode::Poll).into(),
    ]
}

fn run_f4() -> Vec<Artifact> {
    vec![
        base::latency_figure(&trio(), WaitMode::Block).into(),
        base::cpu_figure(&trio(), WaitMode::Block).into(),
    ]
}

fn run_f5() -> Vec<Artifact> {
    let levels = xlate::reuse_levels();
    vec![
        xlate::reuse_latency_figure(Profile::bvia(), &levels).into(),
        xlate::reuse_bandwidth_figure(Profile::bvia(), &levels).into(),
        // The CPU panel the paper defers to the tech report.
        xlate::reuse_cpu_figure(Profile::bvia(), &[100, 0]).into(),
    ]
}

fn run_cq() -> Vec<Artifact> {
    vec![cqimpact::cq_overhead_table(&trio(), 64).into()]
}

const F6_SIZES: [u64; 4] = [4, 256, 4096, 28672];
const F6_CPU_COUNTS: [usize; 3] = [1, 8, 32];

fn run_f6() -> Vec<Artifact> {
    let counts = mvi::vi_counts();
    vec![
        mvi::vi_latency_figure(Profile::bvia(), &counts, &F6_SIZES).into(),
        mvi::vi_bandwidth_figure(Profile::bvia(), &counts, &F6_SIZES).into(),
        // The CPU panel the paper defers to the tech report.
        mvi::vi_cpu_figure(Profile::bvia(), &F6_CPU_COUNTS, &F6_SIZES).into(),
    ]
}

fn run_f7() -> Vec<Artifact> {
    vec![client_server::transaction_figure(
        &trio(),
        &client_server::request_sizes(),
        &client_server::reply_sizes(),
    )
    .into()]
}

fn run_mds() -> Vec<Artifact> {
    vec![extra::mds_figure(&trio(), 8192).into()]
}

fn run_asy() -> Vec<Artifact> {
    vec![extra::asy_figure(&trio(), 256).into()]
}

fn run_rdma() -> Vec<Artifact> {
    vec![extra::rdma_figure(&trio(), &[4, 256, 4096, 28672]).into()]
}

fn run_pip() -> Vec<Artifact> {
    vec![extra::pip_figure(&trio(), 4096).into()]
}

fn run_mtu() -> Vec<Artifact> {
    let (lat, bw) = extra::mtu_figures(Profile::clan(), 28672);
    vec![lat.into(), bw.into()]
}

fn run_rel() -> Vec<Artifact> {
    vec![
        extra::rel_table(Profile::clan(), 4096).into(),
        extra::rel_loss_table(Profile::clan(), 4096, &[0.0, 0.01, 0.05]).into(),
        extra::rel_tail_table(Profile::clan(), 1024, &[0.0, 0.01, 0.03]).into(),
    ]
}

fn getput_profiles() -> Vec<Profile> {
    // An RDMA-read-capable variant provides the model's `get` mapping.
    let mut custom = Profile::custom();
    custom.name = "custom+rd-read";
    custom.supports_rdma_read = true;
    vec![Profile::clan(), Profile::mvia(), custom]
}

const GETPUT_SIZES: [u64; 4] = [4, 256, 4096, 28672];

fn run_getput() -> Vec<Artifact> {
    vec![getput::getput_figure(&getput_profiles(), &GETPUT_SIZES).into()]
}

fn run_mpl() -> Vec<Artifact> {
    vec![
        mpl_bench::overhead_figure(&trio()).into(),
        mpl_bench::threshold_figure(Profile::bvia(), 16384).into(),
    ]
}

fn run_dsm() -> Vec<Artifact> {
    vec![
        dsm_bench::migration_table(&trio()).into(),
        dsm_bench::false_sharing_figure(Profile::clan()).into(),
    ]
}

fn run_breakdown() -> Vec<Artifact> {
    vec![
        breakdown::breakdown_table(&trio(), 4).into(),
        breakdown::breakdown_table(&trio(), 28672).into(),
    ]
}

const X_TRACE_SIZE: u64 = 4096;

fn run_trace() -> Vec<Artifact> {
    let (stages, counts) = trace_bench::x_trace_tables(&trio(), X_TRACE_SIZE);
    vec![stages.into(), counts.into()]
}

fn run_scale() -> Vec<Artifact> {
    vec![scale::fan_in_figure(&trio(), &[1, 2, 4, 8], 1024).into()]
}

fn run_sched() -> Vec<Artifact> {
    vec![
        sched_bench::class_table(Profile::clan(), 64).into(),
        sched_bench::retx_timer_table(&trio(), &[0.0, 0.05], 64).into(),
    ]
}

const X_FAULT_FLAPS: [u64; 4] = [0, 500, 2_000, 8_000];

fn run_fault() -> Vec<Artifact> {
    vec![
        fault_bench::recovery_table(&trio(), &X_FAULT_FLAPS).into(),
        fault_bench::burst_goodput_table(&trio()).into(),
        fault_bench::stall_table(&trio()).into(),
        fault_bench::reconnect_table(Profile::clan()).into(),
    ]
}

fn run_chaos() -> Vec<Artifact> {
    vec![chaos::chaos_table().into()]
}

// ---------------------------------------------------------------------
// Plans: canonical job decompositions. Each job calls the same leaf
// builder the serial path uses, narrowed to one slice (one profile, one
// sweep point, one table); replaying the slices in this order through
// `merge_artifacts` rebuilds the serial artifact set byte-for-byte.
// Decomposition limits worth noting are commented per plan.
// ---------------------------------------------------------------------

/// One job per profile, each producing a full artifact slice for it.
fn per_profile_jobs(
    id: &str,
    run: impl Fn(Profile) -> Vec<Artifact> + Clone + Send + 'static,
) -> Vec<Job> {
    trio()
        .into_iter()
        .map(|p| {
            let run = run.clone();
            job(format!("{id}/{}", p.name), move || run(p))
        })
        .collect()
}

fn plan_t1() -> Vec<Job> {
    // Table 1 has fixed cost rows and one column per profile: per-profile
    // jobs column-merge.
    per_profile_jobs("T1", |p| vec![nondata::table1(&[p], 3).into()])
}

fn plan_f1_f2() -> Vec<Job> {
    per_profile_jobs("F1-F2", |p| f1_f2(&[p]))
}

fn plan_f3() -> Vec<Job> {
    let mut jobs = Vec::new();
    for p in trio() {
        for &size in &harness::paper_sizes() {
            let p2 = p.clone();
            jobs.push(job(format!("F3/latency/{}/{size}", p.name), move || {
                vec![base::latency_figure_sized(&[p2], WaitMode::Poll, &[size]).into()]
            }));
        }
    }
    for p in trio() {
        for &size in &harness::paper_sizes() {
            let p2 = p.clone();
            jobs.push(job(format!("F3/bandwidth/{}/{size}", p.name), move || {
                vec![base::bandwidth_figure_sized(&[p2], WaitMode::Poll, &[size]).into()]
            }));
        }
    }
    jobs
}

fn plan_f4() -> Vec<Job> {
    let mut jobs = Vec::new();
    for p in trio() {
        for &size in &harness::paper_sizes() {
            let p2 = p.clone();
            jobs.push(job(format!("F4/latency/{}/{size}", p.name), move || {
                vec![base::latency_figure_sized(&[p2], WaitMode::Block, &[size]).into()]
            }));
        }
    }
    for p in trio() {
        for &size in &harness::paper_sizes() {
            let p2 = p.clone();
            jobs.push(job(format!("F4/cpu/{}/{size}", p.name), move || {
                vec![base::cpu_figure_sized(&[p2], WaitMode::Block, &[size]).into()]
            }));
        }
    }
    jobs
}

fn plan_f5() -> Vec<Job> {
    let mut jobs = Vec::new();
    for &r in &xlate::reuse_levels() {
        jobs.push(job(format!("F5/latency/{r}%"), move || {
            vec![xlate::reuse_latency_figure(Profile::bvia(), &[r]).into()]
        }));
    }
    for &r in &xlate::reuse_levels() {
        jobs.push(job(format!("F5/bandwidth/{r}%"), move || {
            vec![xlate::reuse_bandwidth_figure(Profile::bvia(), &[r]).into()]
        }));
    }
    for r in [100u32, 0] {
        jobs.push(job(format!("F5/cpu/{r}%"), move || {
            vec![xlate::reuse_cpu_figure(Profile::bvia(), &[r]).into()]
        }));
    }
    jobs
}

fn plan_cq() -> Vec<Job> {
    // One row per profile in a shared-column table: row merge.
    per_profile_jobs("CQ", |p| vec![cqimpact::cq_overhead_table(&[p], 64).into()])
}

fn plan_f6() -> Vec<Job> {
    let mut jobs = Vec::new();
    for &n in &mvi::vi_counts() {
        jobs.push(job(format!("F6/latency/{n}vi"), move || {
            vec![mvi::vi_latency_figure(Profile::bvia(), &[n], &F6_SIZES).into()]
        }));
    }
    for &n in &mvi::vi_counts() {
        jobs.push(job(format!("F6/bandwidth/{n}vi"), move || {
            vec![mvi::vi_bandwidth_figure(Profile::bvia(), &[n], &F6_SIZES).into()]
        }));
    }
    for n in F6_CPU_COUNTS {
        jobs.push(job(format!("F6/cpu/{n}vi"), move || {
            vec![mvi::vi_cpu_figure(Profile::bvia(), &[n], &F6_SIZES).into()]
        }));
    }
    jobs
}

fn plan_f7() -> Vec<Job> {
    // One series per (profile, request size): per-pair jobs append series
    // in the serial nesting order (profile-major).
    let mut jobs = Vec::new();
    for p in trio() {
        for &req in &client_server::request_sizes() {
            let p2 = p.clone();
            jobs.push(job(format!("F7/{}/{req}", p.name), move || {
                vec![client_server::transaction_figure(
                    &[p2],
                    &[req],
                    &client_server::reply_sizes(),
                )
                .into()]
            }));
        }
    }
    jobs
}

fn plan_mds() -> Vec<Job> {
    per_profile_jobs("X-MDS", |p| vec![extra::mds_figure(&[p], 8192).into()])
}

fn plan_asy() -> Vec<Job> {
    per_profile_jobs("X-ASY", |p| vec![extra::asy_figure(&[p], 256).into()])
}

fn plan_rdma() -> Vec<Job> {
    per_profile_jobs("X-RDMA", |p| {
        vec![extra::rdma_figure(&[p], &[4, 256, 4096, 28672]).into()]
    })
}

fn plan_pip() -> Vec<Job> {
    per_profile_jobs("X-PIP", |p| vec![extra::pip_figure(&[p], 4096).into()])
}

fn plan_mtu() -> Vec<Job> {
    // Single-profile MTU sweep: cheap enough to stay one job.
    vec![job("X-MTU/cLAN".to_string(), run_mtu)]
}

fn plan_rel() -> Vec<Job> {
    vec![
        job("X-REL/levels".to_string(), || {
            vec![extra::rel_table(Profile::clan(), 4096).into()]
        }),
        job("X-REL/loss".to_string(), || {
            vec![extra::rel_loss_table(Profile::clan(), 4096, &[0.0, 0.01, 0.05]).into()]
        }),
        job("X-REL/tail".to_string(), || {
            vec![extra::rel_tail_table(Profile::clan(), 1024, &[0.0, 0.01, 0.03]).into()]
        }),
    ]
}

fn plan_getput() -> Vec<Job> {
    getput_profiles()
        .into_iter()
        .map(|p| {
            job(format!("X-GETPUT/{}", p.name), move || {
                vec![getput::getput_figure(&[p], &GETPUT_SIZES).into()]
            })
        })
        .collect()
}

fn plan_mpl() -> Vec<Job> {
    let mut jobs = per_profile_jobs("X-MPL/overhead", |p| {
        vec![mpl_bench::overhead_figure(&[p]).into()]
    });
    jobs.push(job("X-MPL/threshold".to_string(), || {
        vec![mpl_bench::threshold_figure(Profile::bvia(), 16384).into()]
    }));
    jobs
}

fn plan_dsm() -> Vec<Job> {
    let mut jobs = per_profile_jobs("X-DSM/migration", |p| {
        vec![dsm_bench::migration_table(&[p]).into()]
    });
    jobs.push(job("X-DSM/false-sharing".to_string(), || {
        vec![dsm_bench::false_sharing_figure(Profile::clan()).into()]
    }));
    jobs
}

fn plan_breakdown() -> Vec<Job> {
    // NOT per profile: `breakdown_table` drops rows that are zero across
    // *all* profiles, so splitting the profile set could change which rows
    // survive. Decompose per message size only.
    [4u64, 28672]
        .into_iter()
        .map(|size| {
            job(format!("X-BRK/{size}"), move || {
                vec![breakdown::breakdown_table(&trio(), size).into()]
            })
        })
        .collect()
}

fn plan_trace() -> Vec<Job> {
    // Both X-TRACE tables have fixed rows and one column per profile:
    // per-profile jobs column-merge (each job emits both table slices).
    per_profile_jobs("X-TRACE", |p| {
        let (stages, counts) = trace_bench::x_trace_tables(&[p], X_TRACE_SIZE);
        vec![stages.into(), counts.into()]
    })
}

fn plan_scale() -> Vec<Job> {
    per_profile_jobs("X-SCALE", |p| {
        vec![scale::fan_in_figure(&[p], &[1, 2, 4, 8], 1024).into()]
    })
}

fn plan_sched() -> Vec<Job> {
    let mut jobs = vec![job("X-SCHED/classes".to_string(), || {
        vec![sched_bench::class_table(Profile::clan(), 64).into()]
    })];
    // Per-profile retransmit rows; profiles without reliable delivery
    // contribute a zero-row slice, which row-merges as a no-op.
    jobs.extend(per_profile_jobs("X-SCHED/retx", |p| {
        vec![sched_bench::retx_timer_table(&[p], &[0.0, 0.05], 64).into()]
    }));
    jobs
}

fn plan_fault() -> Vec<Job> {
    // Per-profile jobs for each table; rows merge in registry order.
    // Unreliable-only profiles contribute zero-row recovery slices.
    let mut jobs = per_profile_jobs("X-FAULT/recovery", |p| {
        vec![fault_bench::recovery_table(&[p], &X_FAULT_FLAPS).into()]
    });
    jobs.extend(per_profile_jobs("X-FAULT/burst", |p| {
        vec![fault_bench::burst_goodput_table(&[p]).into()]
    }));
    jobs.extend(per_profile_jobs("X-FAULT/stall", |p| {
        vec![fault_bench::stall_table(&[p]).into()]
    }));
    jobs.push(job("X-FAULT/reconnect".to_string(), || {
        vec![fault_bench::reconnect_table(Profile::clan()).into()]
    }));
    jobs
}

fn plan_chaos() -> Vec<Job> {
    // One job per episode: each emits a single-row slice of the shared
    // table, and same-column slices row-merge back in episode order.
    (0..chaos::EPISODES)
        .map(|i| {
            job(format!("X-CHAOS/ep{i:02}"), move || {
                vec![chaos::episode_table(i).into()]
            })
        })
        .collect()
}

fn run_shard() -> Vec<Artifact> {
    trio()
        .into_iter()
        .map(|p| shard_bench::ring_table(p).into())
        .collect()
}

fn plan_shard() -> Vec<Job> {
    // One ring per profile; each job is a whole table, so slices
    // column-merge trivially.
    per_profile_jobs("X-SHARD", |p| vec![shard_bench::ring_table(p).into()])
}

fn run_topo() -> Vec<Artifact> {
    use topo_bench::StormShape;
    let mut arts: Vec<Artifact> =
        vec![topo_bench::storm_table(&[StormShape::Star, StormShape::FatTree]).into()];
    let (flows, ports) = topo_bench::incast_tables();
    arts.push(flows.into());
    arts.push(ports.into());
    arts.push(topo_bench::all_to_all_table().into());
    arts
}

fn plan_topo() -> Vec<Job> {
    use topo_bench::StormShape;
    vec![
        // The storm rows share one table: single-row slices row-merge in
        // job order (star control first, matching the serial build).
        job("X-TOPO/storm-star".to_string(), || {
            vec![topo_bench::storm_table(&[StormShape::Star]).into()]
        }),
        job("X-TOPO/storm-fat-tree".to_string(), || {
            vec![topo_bench::storm_table(&[StormShape::FatTree]).into()]
        }),
        // One incast run feeds both incast artifacts; splitting it would
        // run the workload twice for identical tables.
        job("X-TOPO/incast".to_string(), || {
            let (flows, ports) = topo_bench::incast_tables();
            vec![flows.into(), ports.into()]
        }),
        job("X-TOPO/all-to-all".to_string(), || {
            vec![topo_bench::all_to_all_table().into()]
        }),
    ]
}

fn run_crash() -> Vec<Artifact> {
    let (flows, summary) = crash_bench::node_kill_tables();
    vec![flows.into(), summary.into()]
}

fn plan_crash() -> Vec<Job> {
    // One node-kill run feeds both of its artifacts.
    vec![job("X-CRASH/node-kill".to_string(), run_crash)]
}

fn run_failover() -> Vec<Artifact> {
    let (flows, summary) = failover_bench::spine_kill_tables();
    vec![
        flows.into(),
        summary.into(),
        failover_bench::pause_cascade_table().into(),
    ]
}

fn plan_failover() -> Vec<Job> {
    vec![
        // One spine-kill run feeds both of its artifacts.
        job("X-FAILOVER/spine-kill".to_string(), || {
            let (flows, summary) = failover_bench::spine_kill_tables();
            vec![flows.into(), summary.into()]
        }),
        job("X-FAILOVER/pause-cascade".to_string(), || {
            vec![failover_bench::pause_cascade_table().into()]
        }),
    ]
}

/// Every experiment, in the paper's reporting order.
pub fn all_experiments() -> Vec<Experiment> {
    use Category::*;
    vec![
        Experiment {
            id: "T1",
            title: "Table 1: non-data transfer costs",
            category: NonDataTransfer,
            produce: run_t1,
            plan: plan_t1,
        },
        Experiment {
            id: "F1-F2",
            title: "Figs 1-2: memory registration / deregistration",
            category: NonDataTransfer,
            produce: run_f1_f2,
            plan: plan_f1_f2,
        },
        Experiment {
            id: "F3",
            title: "Fig 3: base latency & bandwidth (polling)",
            category: DataTransfer,
            produce: run_f3,
            plan: plan_f3,
        },
        Experiment {
            id: "F4",
            title: "Fig 4: base latency & CPU utilization (blocking)",
            category: DataTransfer,
            produce: run_f4,
            plan: plan_f4,
        },
        Experiment {
            id: "F5",
            title: "Fig 5: buffer-reuse sweep (BVIA)",
            category: DataTransfer,
            produce: run_f5,
            plan: plan_f5,
        },
        Experiment {
            id: "CQ",
            title: "Sec 4.3.3: completion-queue overhead",
            category: DataTransfer,
            produce: run_cq,
            plan: plan_cq,
        },
        Experiment {
            id: "F6",
            title: "Fig 6: active-VI sweep (BVIA)",
            category: DataTransfer,
            produce: run_f6,
            plan: plan_f6,
        },
        Experiment {
            id: "F7",
            title: "Fig 7: client/server transactions",
            category: ProgrammingModel,
            produce: run_f7,
            plan: plan_f7,
        },
        Experiment {
            id: "X-MDS",
            title: "TR: multiple data segments",
            category: DataTransfer,
            produce: run_mds,
            plan: plan_mds,
        },
        Experiment {
            id: "X-ASY",
            title: "TR: asynchronous message handling",
            category: DataTransfer,
            produce: run_asy,
            plan: plan_asy,
        },
        Experiment {
            id: "X-RDMA",
            title: "TR: RDMA write vs send/receive",
            category: DataTransfer,
            produce: run_rdma,
            plan: plan_rdma,
        },
        Experiment {
            id: "X-PIP",
            title: "TR: sender pipeline length",
            category: DataTransfer,
            produce: run_pip,
            plan: plan_pip,
        },
        Experiment {
            id: "X-MTU",
            title: "TR: maximum transfer unit",
            category: DataTransfer,
            produce: run_mtu,
            plan: plan_mtu,
        },
        Experiment {
            id: "X-REL",
            title: "TR: reliability levels (incl. loss injection)",
            category: DataTransfer,
            produce: run_rel,
            plan: plan_rel,
        },
        Experiment {
            id: "X-GETPUT",
            title: "Future work (Sec 5): get/put programming model",
            category: ProgrammingModel,
            produce: run_getput,
            plan: plan_getput,
        },
        Experiment {
            id: "X-SCALE",
            title: "Extension: fan-in scalability (aggregate bandwidth vs clients)",
            category: ProgrammingModel,
            produce: run_scale,
            plan: plan_scale,
        },
        Experiment {
            id: "X-SCHED",
            title: "Extension: scheduler event classes & retransmit-timer ledger",
            category: DataTransfer,
            produce: run_sched,
            plan: plan_sched,
        },
        Experiment {
            id: "X-BRK",
            title: "Extension: per-component breakdown of one transfer",
            category: DataTransfer,
            produce: run_breakdown,
            plan: plan_breakdown,
        },
        Experiment {
            id: "X-TRACE",
            title: "Extension: trace-derived stage latency & lifecycle counters",
            category: DataTransfer,
            produce: run_trace,
            plan: plan_trace,
        },
        Experiment {
            id: "X-FAULT",
            title: "Extension: fault injection, recovery latency & VI error states",
            category: DataTransfer,
            produce: run_fault,
            plan: plan_fault,
        },
        Experiment {
            id: "X-CHAOS",
            title: "Extension: seeded chaos episodes & conservation invariants",
            category: DataTransfer,
            produce: run_chaos,
            plan: plan_chaos,
        },
        Experiment {
            id: "X-SHARD",
            title: "Extension: sharded-engine ring traffic (lookahead synchronization)",
            category: DataTransfer,
            produce: run_shard,
            plan: plan_shard,
        },
        Experiment {
            id: "X-TOPO",
            title: "Extension: multi-switch topologies, port backpressure & scale-out",
            category: DataTransfer,
            produce: run_topo,
            plan: plan_topo,
        },
        Experiment {
            id: "X-FAILOVER",
            title: "Extension: switch fault domains, deterministic reroute & the pause watchdog",
            category: DataTransfer,
            produce: run_failover,
            plan: plan_failover,
        },
        Experiment {
            id: "X-CRASH",
            title: "Extension: node fault domains, heartbeat detection & session recovery",
            category: DataTransfer,
            produce: run_crash,
            plan: plan_crash,
        },
        Experiment {
            id: "X-MPL",
            title: "Future work (Sec 5): message-passing layer over VIA",
            category: ProgrammingModel,
            produce: run_mpl,
            plan: plan_mpl,
        },
        Experiment {
            id: "X-DSM",
            title: "Future work (Sec 5): distributed shared memory over VIA",
            category: ProgrammingModel,
            produce: run_dsm,
            plan: plan_dsm,
        },
    ]
}

/// Find an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<Experiment> {
    all_experiments()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for id in ["T1", "F1-F2", "F3", "F4", "F5", "CQ", "F6", "F7"] {
            assert!(ids.contains(&id), "missing {id}");
        }
        // The six TR-only benchmarks of §3.2.5 plus the extensions.
        for id in [
            "X-MDS",
            "X-ASY",
            "X-RDMA",
            "X-PIP",
            "X-MTU",
            "X-REL",
            "X-GETPUT",
            "X-SCALE",
            "X-SCHED",
            "X-FAULT",
            "X-CHAOS",
            "X-SHARD",
            "X-TOPO",
            "X-FAILOVER",
            "X-CRASH",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("t1").is_some());
        assert!(find("x-rel").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn cq_experiment_renders_text_and_csv() {
        let e = find("CQ").unwrap();
        let text = e.run_text();
        assert!(text.contains("BVIA"), "{text}");
        assert!(text.contains("overhead"), "{text}");
        let csvs = e.run_csv();
        assert_eq!(csvs.len(), 1);
        assert!(csvs[0].0.starts_with("cq_0_"), "{}", csvs[0].0);
        assert!(
            csvs[0].1.starts_with("row,direct,via CQ,overhead"),
            "{}",
            csvs[0].1
        );
    }
}
