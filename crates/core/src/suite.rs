//! The experiment registry: every table and figure the paper reports (plus
//! the tech-report extras and our extensions) mapped to a runnable that
//! regenerates it as structured [`Artifact`]s — renderable as paper-style
//! text or CSV. Drives the `run_suite` example binary and the bench
//! targets.

use via::Profile;

use crate::report::Artifact;
use crate::{base, breakdown, client_server, cqimpact, dsm_bench, extra, getput, mpl_bench, mvi, nondata, scale, sched_bench, xlate};
use simkit::WaitMode;

/// Which paper category an experiment belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    /// §3.1 non-data-transfer benchmarks.
    NonDataTransfer,
    /// §3.2 data-transfer benchmarks.
    DataTransfer,
    /// §3.3 programming-model benchmarks.
    ProgrammingModel,
}

/// One runnable experiment.
pub struct Experiment {
    /// Short id ("T1", "F3", "X-MDS", …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Paper category.
    pub category: Category,
    /// Regenerate the artifact set.
    pub produce: fn() -> Vec<Artifact>,
}

impl Experiment {
    /// Run and render every artifact as paper-style text.
    pub fn run_text(&self) -> String {
        (self.produce)()
            .iter()
            .map(Artifact::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Run and serialize the artifact set as one JSON document (the
    /// paper's planned "repository of VIBe results" interchange form).
    pub fn run_json(&self) -> String {
        let artifacts = (self.produce)();
        let items: Vec<String> = artifacts.iter().map(|a| a.to_json()).collect();
        format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"artifacts\": [\n{}\n  ]\n}}",
            self.id,
            self.title,
            items.join(",\n")
        )
    }

    /// Run and render every artifact as `(slug, csv)` pairs suitable for
    /// writing to files.
    pub fn run_csv(&self) -> Vec<(String, String)> {
        (self.produce)()
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let slug: String = a
                    .title()
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                    .collect();
                (format!("{}_{}_{}", self.id.to_lowercase(), i, slug), a.to_csv())
            })
            .collect()
    }
}

fn trio() -> Vec<Profile> {
    Profile::paper_trio()
}

fn run_t1() -> Vec<Artifact> {
    vec![nondata::table1(&trio(), 3).into()]
}

fn run_f1_f2() -> Vec<Artifact> {
    let sizes = nondata::registration_sizes();
    let mut reg = crate::report::Figure::new(
        "Fig 1: cost of memory registration",
        "buffer bytes",
        "cost (us)",
    );
    let mut dereg = crate::report::Figure::new(
        "Fig 2: cost of memory deregistration",
        "buffer bytes",
        "cost (us)",
    );
    for p in trio() {
        let (r, d) = nondata::registration_costs(p, &sizes);
        reg.push(r);
        dereg.push(d);
    }
    vec![reg.into(), dereg.into()]
}

fn run_f3() -> Vec<Artifact> {
    vec![
        base::latency_figure(&trio(), WaitMode::Poll).into(),
        base::bandwidth_figure(&trio(), WaitMode::Poll).into(),
    ]
}

fn run_f4() -> Vec<Artifact> {
    vec![
        base::latency_figure(&trio(), WaitMode::Block).into(),
        base::cpu_figure(&trio(), WaitMode::Block).into(),
    ]
}

fn run_f5() -> Vec<Artifact> {
    let levels = xlate::reuse_levels();
    vec![
        xlate::reuse_latency_figure(Profile::bvia(), &levels).into(),
        xlate::reuse_bandwidth_figure(Profile::bvia(), &levels).into(),
        // The CPU panel the paper defers to the tech report.
        xlate::reuse_cpu_figure(Profile::bvia(), &[100, 0]).into(),
    ]
}

fn run_cq() -> Vec<Artifact> {
    vec![cqimpact::cq_overhead_table(&trio(), 64).into()]
}

fn run_f6() -> Vec<Artifact> {
    let counts = mvi::vi_counts();
    let sizes = [4u64, 256, 4096, 28672];
    vec![
        mvi::vi_latency_figure(Profile::bvia(), &counts, &sizes).into(),
        mvi::vi_bandwidth_figure(Profile::bvia(), &counts, &sizes).into(),
        // The CPU panel the paper defers to the tech report.
        mvi::vi_cpu_figure(Profile::bvia(), &[1, 8, 32], &sizes).into(),
    ]
}

fn run_f7() -> Vec<Artifact> {
    vec![client_server::transaction_figure(
        &trio(),
        &client_server::request_sizes(),
        &client_server::reply_sizes(),
    )
    .into()]
}

fn run_mds() -> Vec<Artifact> {
    vec![extra::mds_figure(&trio(), 8192).into()]
}

fn run_asy() -> Vec<Artifact> {
    vec![extra::asy_figure(&trio(), 256).into()]
}

fn run_rdma() -> Vec<Artifact> {
    vec![extra::rdma_figure(&trio(), &[4, 256, 4096, 28672]).into()]
}

fn run_pip() -> Vec<Artifact> {
    vec![extra::pip_figure(&trio(), 4096).into()]
}

fn run_mtu() -> Vec<Artifact> {
    let (lat, bw) = extra::mtu_figures(Profile::clan(), 28672);
    vec![lat.into(), bw.into()]
}

fn run_rel() -> Vec<Artifact> {
    vec![
        extra::rel_table(Profile::clan(), 4096).into(),
        extra::rel_loss_table(Profile::clan(), 4096, &[0.0, 0.01, 0.05]).into(),
        extra::rel_tail_table(Profile::clan(), 1024, &[0.0, 0.01, 0.03]).into(),
    ]
}

fn run_getput() -> Vec<Artifact> {
    // An RDMA-read-capable variant provides the model's `get` mapping.
    let mut custom = Profile::custom();
    custom.name = "custom+rd-read";
    custom.supports_rdma_read = true;
    vec![getput::getput_figure(
        &[Profile::clan(), Profile::mvia(), custom],
        &[4, 256, 4096, 28672],
    )
    .into()]
}

fn run_mpl() -> Vec<Artifact> {
    vec![
        mpl_bench::overhead_figure(&trio()).into(),
        mpl_bench::threshold_figure(Profile::bvia(), 16384).into(),
    ]
}

fn run_dsm() -> Vec<Artifact> {
    vec![
        dsm_bench::migration_table(&trio()).into(),
        dsm_bench::false_sharing_figure(Profile::clan()).into(),
    ]
}

fn run_breakdown() -> Vec<Artifact> {
    vec![
        breakdown::breakdown_table(&trio(), 4).into(),
        breakdown::breakdown_table(&trio(), 28672).into(),
    ]
}

fn run_scale() -> Vec<Artifact> {
    vec![scale::fan_in_figure(&trio(), &[1, 2, 4, 8], 1024).into()]
}

fn run_sched() -> Vec<Artifact> {
    vec![
        sched_bench::class_table(Profile::clan(), 64).into(),
        sched_bench::retx_timer_table(&trio(), &[0.0, 0.05], 64).into(),
    ]
}

/// Every experiment, in the paper's reporting order.
pub fn all_experiments() -> Vec<Experiment> {
    use Category::*;
    vec![
        Experiment {
            id: "T1",
            title: "Table 1: non-data transfer costs",
            category: NonDataTransfer,
            produce: run_t1,
        },
        Experiment {
            id: "F1-F2",
            title: "Figs 1-2: memory registration / deregistration",
            category: NonDataTransfer,
            produce: run_f1_f2,
        },
        Experiment {
            id: "F3",
            title: "Fig 3: base latency & bandwidth (polling)",
            category: DataTransfer,
            produce: run_f3,
        },
        Experiment {
            id: "F4",
            title: "Fig 4: base latency & CPU utilization (blocking)",
            category: DataTransfer,
            produce: run_f4,
        },
        Experiment {
            id: "F5",
            title: "Fig 5: buffer-reuse sweep (BVIA)",
            category: DataTransfer,
            produce: run_f5,
        },
        Experiment {
            id: "CQ",
            title: "Sec 4.3.3: completion-queue overhead",
            category: DataTransfer,
            produce: run_cq,
        },
        Experiment {
            id: "F6",
            title: "Fig 6: active-VI sweep (BVIA)",
            category: DataTransfer,
            produce: run_f6,
        },
        Experiment {
            id: "F7",
            title: "Fig 7: client/server transactions",
            category: ProgrammingModel,
            produce: run_f7,
        },
        Experiment {
            id: "X-MDS",
            title: "TR: multiple data segments",
            category: DataTransfer,
            produce: run_mds,
        },
        Experiment {
            id: "X-ASY",
            title: "TR: asynchronous message handling",
            category: DataTransfer,
            produce: run_asy,
        },
        Experiment {
            id: "X-RDMA",
            title: "TR: RDMA write vs send/receive",
            category: DataTransfer,
            produce: run_rdma,
        },
        Experiment {
            id: "X-PIP",
            title: "TR: sender pipeline length",
            category: DataTransfer,
            produce: run_pip,
        },
        Experiment {
            id: "X-MTU",
            title: "TR: maximum transfer unit",
            category: DataTransfer,
            produce: run_mtu,
        },
        Experiment {
            id: "X-REL",
            title: "TR: reliability levels (incl. loss injection)",
            category: DataTransfer,
            produce: run_rel,
        },
        Experiment {
            id: "X-GETPUT",
            title: "Future work (Sec 5): get/put programming model",
            category: ProgrammingModel,
            produce: run_getput,
        },
        Experiment {
            id: "X-SCALE",
            title: "Extension: fan-in scalability (aggregate bandwidth vs clients)",
            category: ProgrammingModel,
            produce: run_scale,
        },
        Experiment {
            id: "X-SCHED",
            title: "Extension: scheduler event classes & retransmit-timer ledger",
            category: DataTransfer,
            produce: run_sched,
        },
        Experiment {
            id: "X-BRK",
            title: "Extension: per-component breakdown of one transfer",
            category: DataTransfer,
            produce: run_breakdown,
        },
        Experiment {
            id: "X-MPL",
            title: "Future work (Sec 5): message-passing layer over VIA",
            category: ProgrammingModel,
            produce: run_mpl,
        },
        Experiment {
            id: "X-DSM",
            title: "Future work (Sec 5): distributed shared memory over VIA",
            category: ProgrammingModel,
            produce: run_dsm,
        },
    ]
}

/// Find an experiment by id (case-insensitive).
pub fn find(id: &str) -> Option<Experiment> {
    all_experiments()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for id in ["T1", "F1-F2", "F3", "F4", "F5", "CQ", "F6", "F7"] {
            assert!(ids.contains(&id), "missing {id}");
        }
        // The six TR-only benchmarks of §3.2.5 plus the extensions.
        for id in [
            "X-MDS", "X-ASY", "X-RDMA", "X-PIP", "X-MTU", "X-REL", "X-GETPUT", "X-SCALE",
            "X-SCHED",
        ] {
            assert!(ids.contains(&id), "missing {id}");
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("t1").is_some());
        assert!(find("x-rel").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn cq_experiment_renders_text_and_csv() {
        let e = find("CQ").unwrap();
        let text = e.run_text();
        assert!(text.contains("BVIA"), "{text}");
        assert!(text.contains("overhead"), "{text}");
        let csvs = e.run_csv();
        assert_eq!(csvs.len(), 1);
        assert!(csvs[0].0.starts_with("cq_0_"), "{}", csvs[0].0);
        assert!(
            csvs[0].1.starts_with("row,direct,via CQ,overhead"),
            "{}",
            csvs[0].1
        );
    }
}
