//! Calibration probe: prints the key curves for tuning profile constants.
use simkit::WaitMode;
use via::Profile;
use vibe::harness::{bandwidth, ping_pong, transactions, DtConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let trio = Profile::paper_trio;
    if which == "all" || which == "lat" {
        println!("--- base latency (us, polling) ---");
        print!("{:>8}", "bytes");
        for p in trio() {
            print!("{:>10}", p.name);
        }
        println!();
        for &s in &[4u64, 16, 64, 256, 1024, 4096, 12288, 20480, 28672] {
            print!("{s:>8}");
            for p in trio() {
                let r = ping_pong(&DtConfig {
                    iters: 20,
                    ..DtConfig::base(p, s)
                });
                print!("{:>10.2}", r.latency_us);
            }
            println!();
        }
    }
    if which == "all" || which == "bw" {
        println!("--- base bandwidth (MB/s, polling, depth 16) ---");
        print!("{:>8}", "bytes");
        for p in trio() {
            print!("{:>10}", p.name);
        }
        println!();
        for &s in &[4u64, 64, 256, 1024, 4096, 12288, 20480, 28672] {
            print!("{s:>8}");
            for p in trio() {
                let iters = ((2u64 << 20) / s.max(1)).clamp(64, 512) as u32;
                let r = bandwidth(&DtConfig {
                    iters,
                    ..DtConfig::base(p, s)
                });
                print!("{:>10.2}", r.mbps);
            }
            println!();
        }
    }
    if which == "all" || which == "reuse" {
        println!("--- BVIA latency vs reuse ---");
        for &s in &[64u64, 4096, 28672] {
            print!("size {s:>6}:");
            for r in [100u32, 50, 0] {
                let c = DtConfig {
                    iters: 60,
                    warmup: 0,
                    reuse_percent: r,
                    ..DtConfig::base(Profile::bvia(), s)
                };
                print!("  {r}%={:.2}", ping_pong(&c).latency_us);
            }
            println!();
        }
        println!("--- BVIA bw vs reuse at 28672 ---");
        for r in [100u32, 0] {
            let c = DtConfig {
                iters: 256,
                warmup: 0,
                reuse_percent: r,
                ..DtConfig::base(Profile::bvia(), 28672)
            };
            println!("  {r}% = {:.2} MB/s", bandwidth(&c).mbps);
        }
    }
    if which == "all" || which == "mvi" {
        println!("--- BVIA vs #VIs (256B) ---");
        for n in [1usize, 8, 32] {
            let lc = DtConfig {
                iters: 30,
                active_vis: n,
                ..DtConfig::base(Profile::bvia(), 256)
            };
            let bc = DtConfig {
                iters: 192,
                active_vis: n,
                ..DtConfig::base(Profile::bvia(), 1024)
            };
            println!(
                "  {n:>2} VIs: lat={:.2} bw(1024B)={:.2}",
                ping_pong(&lc).latency_us,
                bandwidth(&bc).mbps
            );
        }
    }
    if which == "all" || which == "cs" {
        println!("--- transactions/s (req 16) ---");
        print!("{:>8}", "reply");
        for p in trio() {
            print!("{:>10}", p.name);
        }
        println!();
        for &rep in &[4u64, 256, 4096, 12288, 28672] {
            print!("{rep:>8}");
            for p in trio() {
                let c = DtConfig {
                    iters: 25,
                    ..DtConfig::base(p, rep)
                };
                print!("{:>10.0}", transactions(&c, 16, rep));
            }
            println!();
        }
    }
    if which == "all" || which == "pip" {
        println!("--- cLAN bw vs depth (4096B) ---");
        for d in [1usize, 2, 4, 16, 64] {
            let c = DtConfig {
                iters: 256,
                queue_depth: d,
                ..DtConfig::base(Profile::clan(), 4096)
            };
            println!("  depth {d:>2} = {:.2} MB/s", bandwidth(&c).mbps);
        }
    }
    if which == "all" || which == "blk" {
        println!("--- blocking latency/cpu (4 B / 28672 B) ---");
        for p in trio() {
            for &s in &[16u64, 28672] {
                let c = DtConfig {
                    iters: 20,
                    wait: WaitMode::Block,
                    ..DtConfig::base(p.clone(), s)
                };
                let r = ping_pong(&c);
                println!(
                    "  {:>6} {s:>6}B: lat={:.2} cpu={:.1}%",
                    p.name,
                    r.latency_us,
                    r.client_util * 100.0
                );
            }
        }
    }
}
