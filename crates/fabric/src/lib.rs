//! # fabric — simulated System Area Network
//!
//! The interconnect substrate of the VIBe reproduction: a single-switch
//! star network (the shape of the paper's testbed, which used dedicated
//! Myrinet, Gigabit Ethernet, and cLAN switches) with
//!
//! * per-direction FIFO link occupancy (serialization + propagation), so
//!   bandwidth contention and pipelining emerge naturally,
//! * a fixed-latency switch stage with per-output-port queueing,
//! * per-frame overhead bytes and a link MTU (upper layers fragment),
//! * seeded Bernoulli loss injection for the reliability benchmarks.
//!
//! Era presets for the paper's three interconnects live on
//! [`NetParams`].
//!
//! ```
//! use std::sync::Arc;
//! use simkit::Sim;
//! use fabric::{San, NetParams, NodeId};
//!
//! let sim = Sim::new();
//! let san = San::new(sim.clone(), NetParams::myrinet(), 2, 42);
//! san.attach(NodeId(1), Arc::new(|sim, d| {
//!     println!("{}: got {} bytes from {}", sim.now(), d.payload_bytes, d.src);
//! }));
//! san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
//! sim.run_to_completion();
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod params;
pub mod san;
pub mod topo;

pub use fault::{FaultKind, FaultPlan, FaultWindow, RerouteParams};
pub use params::{LinkParams, LossModel, NetParams, SwitchParams};
pub use san::{Delivery, LossState, NodeId, RxHandler, San, SanStats};
pub use topo::{PortLimits, PortSnapshot, PortStats, PortTarget, Routes, Topology};
