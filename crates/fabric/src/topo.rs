//! Multi-switch topology descriptions and deterministic routing.
//!
//! A [`Topology`] is a pure description: `N` hosts, `S` switches, a host→
//! edge-switch attachment map, and switch↔switch trunks with their own
//! [`LinkParams`]. Constructors cover the shapes the suite exercises —
//! [`Topology::star`] (today's single-switch San as a true degenerate
//! case), [`Topology::dumbbell`], a 2-level [`Topology::fat_tree`], and a
//! [`Topology::ring`] of switches. The San consumes the description to
//! build per-output-port buffered switch state (see `san.rs`); everything
//! here is side-effect-free and cheap to clone.
//!
//! # Routing
//!
//! Paths are shortest-path with deterministic ECMP tie-breaking: a BFS over
//! the switch graph precomputes, for every `(switch, destination switch)`
//! pair, the sorted set of equal-cost next hops; [`Topology::next_hop`]
//! picks one by a content-keyed hash of the *flow key* — derived from the
//! frame's [`MsgId`] `(src_node, vi)`, deliberately excluding the sequence
//! number so every fragment and retransmit of a flow takes the same path
//! and per-flow FIFO order survives ECMP. Control frames without a `MsgId`
//! key on the `(src, dst)` node pair. No RNG is consumed anywhere: the
//! same frame takes the same path in every run at every shard count.
//!
//! # Sharding
//!
//! [`Topology::shard_map`] produces a topology-aware node→shard table that
//! keeps each switch neighborhood (a switch and all hosts attached to it)
//! on one shard, so the only cross-shard hops are trunk traversals.
//! [`Topology::shard_lookahead`] is the matching conservative window: the
//! minimum over all trunks of `switch latency + trunk propagation` (a
//! frame admitted to a trunk port additionally pays serialization, so this
//! is a strict floor). Single-switch topologies fall back to the legacy
//! global [`NetParams::min_cross_latency`] and the content-keyed
//! [`ShardMap`] — the degenerate case is bit-for-bit the pre-topology San.

use simkit::{ShardMap, SimDuration};
use trace::MsgId;

use crate::params::{LinkParams, NetParams};
use crate::san::NodeId;

/// splitmix64: cheap, well-mixed integer hash (public-domain constants).
/// Same function the shard map uses; salted differently per use below.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt for ECMP next-hop selection ("VIBeECMP").
const ECMP_SALT: u64 = 0x5649_4265_4543_4D50;
/// Salt for data-flow keys ("VIBeFLOW").
const FLOW_SALT: u64 = 0x5649_4265_464C_4F57;
/// Salt for control-frame flow keys ("VIBeCTRL").
const CTRL_SALT: u64 = 0x5649_4265_4354_524C;

/// What a switch output port feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortTarget {
    /// A host downlink: the port delivers to this node.
    Node(u32),
    /// A trunk: the port forwards to this switch.
    Switch(u32),
}

/// One switch output port: its target plus, for trunks, the trunk's link
/// parameters. Host ports use the San's uniform access-link parameters
/// (`None` here).
#[derive(Clone, Copy, Debug)]
pub struct PortSpec {
    /// Where frames leaving this port go.
    pub target: PortTarget,
    /// Trunk link parameters; `None` for host ports (access link applies).
    pub trunk: Option<LinkParams>,
}

/// Bounds on every switch output-port buffer in a topology.
///
/// `capacity` frames may be admitted (queued or on the wire) per port;
/// past that, up to `pause_depth` frames are *paused* — parked upstream
/// under link-level backpressure, admitted FIFO as slots free. Only when
/// the pause queue is also full does the port drop, and every such drop is
/// attributed in the per-port counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortLimits {
    /// Admitted-frame bound per output port (≥ 1).
    pub capacity: u32,
    /// Paused-frame bound per output port (0 = drop as soon as full).
    pub pause_depth: u32,
    /// Pause-storm watchdog bound: the longest a port may hold frames
    /// paused *consecutively* before the watchdog trips, drains the pause
    /// queue into honest drops, and increments `storm_trips`. `None`
    /// (default) disables the watchdog — pauses may persist indefinitely,
    /// as before.
    pub max_pause: Option<SimDuration>,
}

impl Default for PortLimits {
    fn default() -> Self {
        PortLimits {
            capacity: 8,
            pause_depth: 24,
            max_pause: None,
        }
    }
}

/// Cumulative counters of one switch output port. Honest accounting: every
/// frame reaching the port is exactly one of admitted-at-ingress, paused
/// (later admitted), or dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Frames admitted to the port (including previously paused ones).
    pub admitted: u64,
    /// Frames parked under backpressure because the buffer was full.
    pub pauses: u64,
    /// Frames dropped because buffer *and* pause queue were full.
    pub drops: u64,
    /// Paused frames whose final destination differed from the last frame
    /// admitted to this port — head-of-line blocking victims.
    pub hol_blocked: u64,
    /// Frames flushed or refused because a fault window ([`SwitchDown`],
    /// [`TrunkDown`]) covered this port — distinct from congestion `drops`.
    ///
    /// [`SwitchDown`]: crate::fault::FaultKind::SwitchDown
    /// [`TrunkDown`]: crate::fault::FaultKind::TrunkDown
    pub fault_dropped: u64,
    /// Times the pause-storm watchdog tripped on this port (consecutive
    /// pause time exceeded [`PortLimits::max_pause`]).
    pub storm_trips: u64,
    /// Frames drained from the pause queue by watchdog trips. Counted in
    /// the San-wide port-dropped total alongside `drops`.
    pub storm_dropped: u64,
    /// Longest observed consecutive pause streak, in nanoseconds. With the
    /// watchdog armed this is bounded by `max_pause` plus one resolver
    /// granule (a serialization + switch latency).
    pub max_pause_ns: u64,
    /// Maximum simultaneous admitted occupancy observed.
    pub highwater: u32,
    /// Maximum pause-queue depth observed.
    pub pause_highwater: u32,
}

/// A point-in-time copy of one port's counters, tagged with its location.
#[derive(Clone, Copy, Debug)]
pub struct PortSnapshot {
    /// Switch the port belongs to.
    pub switch: u32,
    /// What the port feeds.
    pub target: PortTarget,
    /// Counter values at snapshot time.
    pub stats: PortStats,
}

/// A reconverged routing table: sorted equal-cost next-hop sets recomputed
/// with failed switches and trunks excluded, plus the reconvergence
/// `epoch` that re-salts ECMP. Produced by [`Topology::compute_routes`];
/// a pure value — the same `(failed set, epoch)` yields the same table on
/// every shard of every run.
///
/// Unlike [`Topology::next_hop`], lookups return `Option`: a fault window
/// may partition the fabric, in which case the candidate set is empty and
/// the San drops the frame with honest accounting instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Routes {
    next_hops: Vec<Vec<Vec<u32>>>,
    epoch: u64,
}

impl Routes {
    /// The reconvergence epoch this table was computed at. Epoch 0 with no
    /// failures reproduces the baseline table and salt exactly.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Deterministic ECMP next hop from `sw` toward `dst_sw` for `flow`,
    /// or `None` when no surviving path exists. At epoch 0 this picks
    /// identically to [`Topology::next_hop`]; later epochs fold the epoch
    /// into the salt so surviving flows re-spread over the remaining
    /// equal-cost paths instead of piling onto the old hash's choices.
    pub fn next_hop(&self, sw: u32, dst_sw: u32, flow: u64) -> Option<u32> {
        let c = &self.next_hops[sw as usize][dst_sw as usize];
        if c.is_empty() {
            return None;
        }
        if c.len() == 1 {
            return Some(c[0]);
        }
        let salt = if self.epoch == 0 {
            ECMP_SALT
        } else {
            ECMP_SALT ^ splitmix64(self.epoch)
        };
        let h = splitmix64(flow ^ (u64::from(sw) << 32) ^ u64::from(dst_sw) ^ salt);
        Some(c[(h % c.len() as u64) as usize])
    }
}

/// A static multi-switch network shape. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Topology {
    name: &'static str,
    nodes: u32,
    /// Host → edge switch.
    edge_of: Vec<u32>,
    /// Per-switch output ports: host ports first (ascending node), then
    /// trunk ports (ascending neighbor switch).
    ports: Vec<Vec<PortSpec>>,
    /// `next_hops[s][d]`: sorted equal-cost next-hop switches from `s`
    /// toward `d` (empty when `s == d`).
    next_hops: Vec<Vec<Vec<u32>>>,
    /// Switch-graph hop distances.
    dist: Vec<Vec<u32>>,
    limits: PortLimits,
}

impl Topology {
    /// The single-switch star: every node attached to one switch. This is
    /// today's San exactly — a San built over it takes the legacy
    /// single-switch path and produces byte-identical artifacts.
    pub fn star(nodes: usize) -> Topology {
        assert!(nodes >= 1, "star needs at least one node");
        let ports = vec![(0..nodes as u32)
            .map(|n| PortSpec {
                target: PortTarget::Node(n),
                trunk: None,
            })
            .collect()];
        Topology::finish(
            "star",
            nodes as u32,
            vec![0; nodes],
            ports,
            PortLimits::default(),
        )
    }

    /// Two switches joined by one trunk; the first `ceil(nodes/2)` hosts on
    /// switch 0, the rest on switch 1. The minimal congestible shape: all
    /// cross-half traffic funnels through a single trunk port pair.
    pub fn dumbbell(nodes: usize, trunk: LinkParams, limits: PortLimits) -> Topology {
        assert!(nodes >= 2, "dumbbell needs at least two nodes");
        let half = nodes.div_ceil(2) as u32;
        let edge_of: Vec<u32> = (0..nodes as u32).map(|n| u32::from(n >= half)).collect();
        let ports = Topology::switch_ports(2, &edge_of, &[(0, 1)], trunk);
        Topology::finish("dumbbell", nodes as u32, edge_of, ports, limits)
    }

    /// A 2-level fat-tree (leaf/spine): `edges` edge switches with
    /// `hosts_per_edge` hosts each, every edge trunked to every one of the
    /// `spines` spine switches. Edge switches are ids `0..edges`, spines
    /// `edges..edges+spines`. Cross-edge paths are edge→spine→edge with
    /// `spines` equal-cost choices.
    pub fn fat_tree(
        edges: usize,
        hosts_per_edge: usize,
        spines: usize,
        trunk: LinkParams,
        limits: PortLimits,
    ) -> Topology {
        assert!(
            edges >= 2 && spines >= 1 && hosts_per_edge >= 1,
            "degenerate fat-tree"
        );
        let nodes = (edges * hosts_per_edge) as u32;
        let edge_of: Vec<u32> = (0..nodes).map(|n| n / hosts_per_edge as u32).collect();
        let mut trunks = Vec::new();
        for e in 0..edges as u32 {
            for s in 0..spines as u32 {
                trunks.push((e, edges as u32 + s));
            }
        }
        let ports = Topology::switch_ports((edges + spines) as u32, &edge_of, &trunks, trunk);
        Topology::finish("fat-tree", nodes, edge_of, ports, limits)
    }

    /// A ring of `switches` switches, `hosts_per_switch` hosts each. Two
    /// equal-cost directions exist exactly for antipodal destinations on
    /// even rings; otherwise routing follows the shorter arc.
    pub fn ring(
        switches: usize,
        hosts_per_switch: usize,
        trunk: LinkParams,
        limits: PortLimits,
    ) -> Topology {
        assert!(switches >= 3, "ring needs at least three switches");
        assert!(hosts_per_switch >= 1, "ring switches need hosts");
        let nodes = (switches * hosts_per_switch) as u32;
        let edge_of: Vec<u32> = (0..nodes).map(|n| n / hosts_per_switch as u32).collect();
        let trunks: Vec<(u32, u32)> = (0..switches as u32)
            .map(|s| (s, (s + 1) % switches as u32))
            .collect();
        let ports = Topology::switch_ports(switches as u32, &edge_of, &trunks, trunk);
        Topology::finish("ring", nodes, edge_of, ports, limits)
    }

    /// Build per-switch port lists: host ports (node order), then trunk
    /// ports (neighbor order). `trunks` lists undirected switch pairs.
    fn switch_ports(
        switches: u32,
        edge_of: &[u32],
        trunks: &[(u32, u32)],
        trunk: LinkParams,
    ) -> Vec<Vec<PortSpec>> {
        let mut ports: Vec<Vec<PortSpec>> = vec![Vec::new(); switches as usize];
        for (n, &sw) in edge_of.iter().enumerate() {
            ports[sw as usize].push(PortSpec {
                target: PortTarget::Node(n as u32),
                trunk: None,
            });
        }
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); switches as usize];
        for &(a, b) in trunks {
            assert!(a != b && a < switches && b < switches, "bad trunk {a}-{b}");
            neighbors[a as usize].push(b);
            neighbors[b as usize].push(a);
        }
        for (sw, mut ns) in neighbors.into_iter().enumerate() {
            ns.sort_unstable();
            ns.dedup();
            for n in ns {
                ports[sw].push(PortSpec {
                    target: PortTarget::Switch(n),
                    trunk: Some(trunk),
                });
            }
        }
        ports
    }

    /// Precompute BFS distances and sorted equal-cost next-hop sets.
    fn finish(
        name: &'static str,
        nodes: u32,
        edge_of: Vec<u32>,
        ports: Vec<Vec<PortSpec>>,
        limits: PortLimits,
    ) -> Topology {
        assert!(limits.capacity >= 1, "port capacity must be at least 1");
        let s = ports.len();
        let adj: Vec<Vec<u32>> = ports
            .iter()
            .map(|ps| {
                ps.iter()
                    .filter_map(|p| match p.target {
                        PortTarget::Switch(n) => Some(n),
                        PortTarget::Node(_) => None,
                    })
                    .collect()
            })
            .collect();
        let mut dist = vec![vec![u32::MAX; s]; s];
        for (src, row) in dist.iter_mut().enumerate() {
            row[src] = 0;
            let mut frontier = vec![src as u32];
            let mut d = 0;
            while !frontier.is_empty() {
                d += 1;
                let mut next = Vec::new();
                for &f in &frontier {
                    for &n in &adj[f as usize] {
                        if row[n as usize] == u32::MAX {
                            row[n as usize] = d;
                            next.push(n);
                        }
                    }
                }
                frontier = next;
            }
        }
        for (a, row) in dist.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                assert!(
                    d != u32::MAX,
                    "topology disconnected: switch {a} cannot reach {b}"
                );
            }
        }
        let next_hops: Vec<Vec<Vec<u32>>> = (0..s)
            .map(|src| {
                (0..s)
                    .map(|dst| {
                        if src == dst {
                            return Vec::new();
                        }
                        // Neighbors strictly closer to dst; `adj` is sorted
                        // by construction, so this is too.
                        adj[src]
                            .iter()
                            .copied()
                            .filter(|&n| dist[n as usize][dst] + 1 == dist[src][dst])
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Topology {
            name,
            nodes,
            edge_of,
            ports,
            next_hops,
            dist,
            limits,
        }
    }

    /// Shape name ("star", "dumbbell", "fat-tree", "ring").
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of hosts.
    pub fn nodes(&self) -> usize {
        self.nodes as usize
    }

    /// Number of switches.
    pub fn switches(&self) -> usize {
        self.ports.len()
    }

    /// The edge switch node `node` attaches to.
    pub fn edge_of(&self, node: u32) -> u32 {
        self.edge_of[node as usize]
    }

    /// True for exactly-one-switch shapes — the legacy San fast path.
    pub fn is_single_switch(&self) -> bool {
        self.ports.len() == 1
    }

    /// Per-port buffer bounds.
    pub fn limits(&self) -> PortLimits {
        self.limits
    }

    /// Output ports of switch `sw` (host ports first, then trunks).
    pub fn ports(&self, sw: u32) -> &[PortSpec] {
        &self.ports[sw as usize]
    }

    /// Total trunk ports across all switches (two per undirected trunk).
    pub fn trunk_ports(&self) -> usize {
        self.ports
            .iter()
            .flatten()
            .filter(|p| p.trunk.is_some())
            .count()
    }

    /// Every undirected trunk as a normalized `(low, high)` switch pair,
    /// sorted ascending. Empty for single-switch shapes. This is the
    /// domain [`FaultPlan::randomized_topo`] draws [`TrunkDown`] windows
    /// from.
    ///
    /// [`FaultPlan::randomized_topo`]: crate::fault::FaultPlan::randomized_topo
    /// [`TrunkDown`]: crate::fault::FaultKind::TrunkDown
    pub fn trunk_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for (sw, ps) in self.ports.iter().enumerate() {
            for p in ps {
                if let PortTarget::Switch(n) = p.target {
                    if n > sw as u32 {
                        pairs.push((sw as u32, n));
                    }
                }
            }
        }
        pairs
    }

    /// Switch-graph hop distance.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        self.dist[a as usize][b as usize]
    }

    /// Index of switch `sw`'s port toward node `node`. Panics if the node
    /// is not attached to `sw`.
    pub fn port_to_node(&self, sw: u32, node: u32) -> usize {
        self.ports[sw as usize]
            .iter()
            .position(|p| p.target == PortTarget::Node(node))
            .expect("node not attached to this switch")
    }

    /// Index of switch `sw`'s trunk port toward neighbor switch `next`.
    pub fn port_to_switch(&self, sw: u32, next: u32) -> usize {
        self.ports[sw as usize]
            .iter()
            .position(|p| p.target == PortTarget::Switch(next))
            .expect("switches are not adjacent")
    }

    /// The content-keyed flow key routing hashes on: `(src_node, vi)` of
    /// the message id — *excluding* the sequence number, so fragments and
    /// retransmits of one flow share a path and per-flow FIFO order
    /// survives ECMP. Control frames key on the node pair.
    pub fn flow_key(src: NodeId, dst: NodeId, msg: Option<&MsgId>) -> u64 {
        match msg {
            Some(m) => splitmix64((u64::from(m.src_node) << 32 | u64::from(m.vi)) ^ FLOW_SALT),
            None => splitmix64((u64::from(src.0) << 32 | u64::from(dst.0)) ^ CTRL_SALT),
        }
    }

    /// Deterministic ECMP next hop from `sw` toward `dst_sw` for `flow`
    /// (a [`Topology::flow_key`]). Hashes per hop, as real switches do;
    /// pure function of `(sw, dst_sw, flow)` — no RNG, no state.
    pub fn next_hop(&self, sw: u32, dst_sw: u32, flow: u64) -> u32 {
        let c = &self.next_hops[sw as usize][dst_sw as usize];
        debug_assert!(!c.is_empty(), "no route {sw} -> {dst_sw}");
        if c.len() == 1 {
            return c[0];
        }
        let h = splitmix64(flow ^ (u64::from(sw) << 32) ^ u64::from(dst_sw) ^ ECMP_SALT);
        c[(h % c.len() as u64) as usize]
    }

    /// The switch sequence a frame with `flow` key traverses from `src` to
    /// `dst` (edge switch of `src` first, edge switch of `dst` last).
    pub fn route_path(&self, src: NodeId, dst: NodeId, flow: u64) -> Vec<u32> {
        let dst_sw = self.edge_of(dst.0);
        let mut cur = self.edge_of(src.0);
        let mut path = vec![cur];
        while cur != dst_sw {
            cur = self.next_hop(cur, dst_sw, flow);
            path.push(cur);
        }
        path
    }

    /// Recompute shortest-path routing with `failed_switches` removed from
    /// the graph entirely and `failed_trunks` (undirected, any order) cut.
    /// Unreachable destinations get empty candidate sets rather than a
    /// panic — the fabric may legitimately partition under faults. With
    /// both failure sets empty and `epoch == 0`, the result picks
    /// byte-identically to the baseline [`Topology::next_hop`].
    pub fn compute_routes(
        &self,
        failed_switches: &[u32],
        failed_trunks: &[(u32, u32)],
        epoch: u64,
    ) -> Routes {
        let s = self.ports.len();
        let dead = |sw: u32| failed_switches.contains(&sw);
        let cut = |a: u32, b: u32| {
            let pair = (a.min(b), a.max(b));
            failed_trunks
                .iter()
                .any(|&(x, y)| (x.min(y), x.max(y)) == pair)
        };
        let adj: Vec<Vec<u32>> = self
            .ports
            .iter()
            .enumerate()
            .map(|(sw, ps)| {
                if dead(sw as u32) {
                    return Vec::new();
                }
                ps.iter()
                    .filter_map(|p| match p.target {
                        PortTarget::Switch(n) if !dead(n) && !cut(sw as u32, n) => Some(n),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let mut dist = vec![vec![u32::MAX; s]; s];
        for (src, row) in dist.iter_mut().enumerate() {
            if dead(src as u32) {
                continue;
            }
            row[src] = 0;
            let mut frontier = vec![src as u32];
            let mut d = 0;
            while !frontier.is_empty() {
                d += 1;
                let mut next = Vec::new();
                for &f in &frontier {
                    for &n in &adj[f as usize] {
                        if row[n as usize] == u32::MAX {
                            row[n as usize] = d;
                            next.push(n);
                        }
                    }
                }
                frontier = next;
            }
        }
        let next_hops: Vec<Vec<Vec<u32>>> = (0..s)
            .map(|src| {
                (0..s)
                    .map(|dst| {
                        if src == dst || dist[src][dst] == u32::MAX {
                            return Vec::new();
                        }
                        adj[src]
                            .iter()
                            .copied()
                            .filter(|&n| {
                                dist[n as usize][dst] != u32::MAX
                                    && dist[n as usize][dst] + 1 == dist[src][dst]
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Routes { next_hops, epoch }
    }

    /// The shard owning switch `sw` in a multi-switch shape: switches
    /// stripe round-robin — switch counts are small and homogeneous, so
    /// striping balances shards where a content-keyed hash could leave one
    /// empty. Pure function of `(sw, shards)`: stable across runs and
    /// machines. (Single-switch shapes never consult this; their nodes
    /// follow the legacy content-keyed map.)
    pub fn switch_shard(&self, sw: u32, shards: usize) -> usize {
        if shards == 1 {
            return 0;
        }
        sw as usize % shards
    }

    /// The topology-aware node→shard map: every node lands on its edge
    /// switch's shard, so switch neighborhoods stay co-sharded and only
    /// trunk traversals cross shards. Single-switch shapes return the
    /// legacy content-keyed map (the degenerate case must not perturb
    /// existing shard layouts).
    pub fn shard_map(&self, shards: usize) -> ShardMap {
        if self.is_single_switch() {
            return ShardMap::new(shards);
        }
        let table = self
            .edge_of
            .iter()
            .map(|&sw| self.switch_shard(sw, shards) as u32)
            .collect();
        ShardMap::with_table(shards, table)
    }

    /// The conservative cross-shard lookahead this topology supports under
    /// `net`: the minimum over trunks of `switch latency + trunk
    /// propagation` (admission additionally pays serialization, so this is
    /// a strict floor on any trunk traversal). Single-switch shapes use
    /// the legacy global [`NetParams::min_cross_latency`].
    pub fn shard_lookahead(&self, net: &NetParams) -> SimDuration {
        if self.is_single_switch() {
            return net.min_cross_latency();
        }
        self.ports
            .iter()
            .flatten()
            .filter_map(|p| p.trunk.as_ref())
            .map(|t| net.switch.latency + t.propagation)
            .min()
            .expect("multi-switch topology has trunks")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trunk() -> LinkParams {
        LinkParams {
            bandwidth_bps: 440_000_000,
            propagation: SimDuration::from_nanos(600),
            frame_overhead_bytes: 8,
            mtu: 64 * 1024,
        }
    }

    #[test]
    fn star_is_degenerate() {
        let t = Topology::star(5);
        assert!(t.is_single_switch());
        assert_eq!(t.switches(), 1);
        assert_eq!(t.nodes(), 5);
        assert_eq!(t.trunk_ports(), 0);
        assert!((0..5).all(|n| t.edge_of(n) == 0));
        assert_eq!(t.ports(0).len(), 5);
        let net = NetParams::clan();
        assert_eq!(t.shard_lookahead(&net), net.min_cross_latency());
        // The degenerate shard map is the legacy content-keyed one.
        let legacy = ShardMap::new(4);
        let m = t.shard_map(4);
        assert!((0..5).all(|n| m.assign(n) == legacy.assign(n)));
    }

    #[test]
    fn fat_tree_shape_and_routes() {
        let t = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.switches(), 6);
        assert_eq!(t.trunk_ports(), 16); // 8 trunks, 2 ports each
        assert_eq!(t.edge_of(0), 0);
        assert_eq!(t.edge_of(7), 3);
        // Edge→edge is two hops via either spine.
        assert_eq!(t.hops(0, 3), 2);
        assert_eq!(t.next_hops[0][3], vec![4, 5]);
        // Every route from node 0 to node 6 goes edge0 → spine → edge3.
        for vi in 0..32u32 {
            let key = Topology::flow_key(
                NodeId(0),
                NodeId(6),
                Some(&MsgId {
                    src_node: 0,
                    vi,
                    seq: 0,
                }),
            );
            let path = t.route_path(NodeId(0), NodeId(6), key);
            assert_eq!(path.len(), 3);
            assert_eq!(path[0], 0);
            assert!(path[1] == 4 || path[1] == 5);
            assert_eq!(path[2], 3);
        }
    }

    #[test]
    fn flow_key_ignores_seq_and_routes_are_pure() {
        let t = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        let m = |seq| MsgId {
            src_node: 1,
            vi: 3,
            seq,
        };
        let k0 = Topology::flow_key(NodeId(1), NodeId(6), Some(&m(0)));
        let k9 = Topology::flow_key(NodeId(1), NodeId(6), Some(&m(9)));
        assert_eq!(k0, k9, "retransmits must take the original path");
        assert_eq!(
            t.route_path(NodeId(1), NodeId(6), k0),
            t.route_path(NodeId(1), NodeId(6), k9)
        );
        // Distinct VIs spread over the spines (content-keyed, not uniform).
        let spines: std::collections::BTreeSet<u32> = (0..64)
            .map(|vi| {
                let k = Topology::flow_key(
                    NodeId(1),
                    NodeId(6),
                    Some(&MsgId {
                        src_node: 1,
                        vi,
                        seq: 0,
                    }),
                );
                t.route_path(NodeId(1), NodeId(6), k)[1]
            })
            .collect();
        assert_eq!(spines.len(), 2, "ECMP must use both spines across flows");
    }

    /// Pins concrete route selections for a fixed topology: any change to
    /// the hash, salt, or tie-break order shows up here before it silently
    /// re-blesses a golden.
    #[test]
    fn route_selection_pinned_for_fixed_key() {
        let t = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        let picks: Vec<u32> = (0..8u32)
            .map(|vi| {
                let k = Topology::flow_key(
                    NodeId(0),
                    NodeId(6),
                    Some(&MsgId {
                        src_node: 0,
                        vi,
                        seq: 0,
                    }),
                );
                t.next_hop(0, 3, k)
            })
            .collect();
        assert_eq!(picks, vec![4, 4, 4, 4, 4, 4, 5, 5]);
        let ctrl = Topology::flow_key(NodeId(0), NodeId(6), None);
        assert_eq!(t.next_hop(0, 3, ctrl), 5);
    }

    #[test]
    fn compute_routes_with_no_failures_matches_baseline() {
        let t = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        let r = t.compute_routes(&[], &[], 0);
        assert_eq!(r.epoch(), 0);
        for sw in 0..6u32 {
            for dst in 0..6u32 {
                if sw == dst {
                    continue;
                }
                for key in 0..256u64 {
                    let flow = splitmix64(key);
                    assert_eq!(
                        r.next_hop(sw, dst, flow),
                        Some(t.next_hop(sw, dst, flow)),
                        "epoch-0 empty-failure routes must be the baseline"
                    );
                }
            }
        }
    }

    #[test]
    fn compute_routes_tolerates_partition() {
        // Dumbbell with its only trunk cut: the two halves cannot reach
        // each other, and lookups say so instead of panicking.
        let t = Topology::dumbbell(4, trunk(), PortLimits::default());
        let r = t.compute_routes(&[], &[(1, 0)], 1);
        assert_eq!(r.next_hop(0, 1, 42), None);
        assert_eq!(r.next_hop(1, 0, 42), None);
        // Killing a fat-tree spine leaves the other spine carrying all
        // cross-edge routes.
        let f = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        let r = f.compute_routes(&[4], &[], 1);
        for flow in 0..64u64 {
            assert_eq!(r.next_hop(0, 3, splitmix64(flow)), Some(5));
        }
        // Routes through the dead switch itself vanish.
        assert_eq!(r.next_hop(0, 4, 7), None);
        assert_eq!(r.next_hop(4, 0, 7), None);
    }

    /// Satellite: pins the *reconverged* ECMP choice for fixed flow keys —
    /// the epoch salt and failure-exclusion logic are golden-bearing, so
    /// any change to either must show up here first.
    #[test]
    fn reconverged_route_selection_pinned_for_fixed_key() {
        // 3 spines (4, 5, 6); kill spine 4 at epoch 1 → candidates {5, 6},
        // re-salted by the epoch.
        let t = Topology::fat_tree(4, 2, 3, trunk(), PortLimits::default());
        let r = t.compute_routes(&[4], &[], 1);
        let picks: Vec<u32> = (0..8u32)
            .map(|vi| {
                let k = Topology::flow_key(
                    NodeId(0),
                    NodeId(6),
                    Some(&MsgId {
                        src_node: 0,
                        vi,
                        seq: 0,
                    }),
                );
                r.next_hop(0, 3, k).expect("spines 5 and 6 survive")
            })
            .collect();
        assert_eq!(picks, vec![6, 5, 6, 6, 5, 6, 6, 6]);
        // The same failure at a later epoch re-salts again: the pick
        // vector over many flows must move, keeping epoch-folding
        // load-bearing.
        let r2 = t.compute_routes(&[4], &[], 2);
        let vec_at = |r: &Routes| -> Vec<u32> {
            (0..64u32)
                .map(|vi| {
                    let k = Topology::flow_key(
                        NodeId(0),
                        NodeId(6),
                        Some(&MsgId {
                            src_node: 0,
                            vi,
                            seq: 0,
                        }),
                    );
                    r.next_hop(0, 3, k).unwrap()
                })
                .collect()
        };
        assert_ne!(vec_at(&r), vec_at(&r2), "epoch must fold into the salt");
    }

    #[test]
    fn trunk_pairs_enumerates_normalized_sorted() {
        let d = Topology::dumbbell(4, trunk(), PortLimits::default());
        assert_eq!(d.trunk_pairs(), vec![(0, 1)]);
        let f = Topology::fat_tree(3, 2, 2, trunk(), PortLimits::default());
        assert_eq!(
            f.trunk_pairs(),
            vec![(0, 3), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4)]
        );
        assert!(Topology::star(4).trunk_pairs().is_empty());
    }

    #[test]
    fn dumbbell_and_ring_shapes() {
        let d = Topology::dumbbell(5, trunk(), PortLimits::default());
        assert_eq!(d.switches(), 2);
        assert_eq!(d.edge_of(2), 0);
        assert_eq!(d.edge_of(3), 1);
        assert_eq!(d.hops(0, 1), 1);
        assert_eq!(d.trunk_ports(), 2);

        let r = Topology::ring(4, 2, trunk(), PortLimits::default());
        assert_eq!(r.switches(), 4);
        assert_eq!(r.hops(0, 2), 2);
        // Antipodal destination on an even ring: both directions tie.
        assert_eq!(r.next_hops[0][2], vec![1, 3]);
        assert_eq!(r.next_hops[0][1], vec![1]);
    }

    #[test]
    fn shard_map_co_shards_switch_neighborhoods() {
        let t = Topology::fat_tree(8, 8, 4, trunk(), PortLimits::default());
        for shards in [1usize, 2, 4] {
            let map = t.shard_map(shards);
            assert_eq!(map.shards(), shards);
            for n in 0..64u32 {
                assert_eq!(
                    map.assign(n),
                    t.switch_shard(t.edge_of(n), shards),
                    "node must share its edge switch's shard"
                );
            }
        }
        // 12 switches round-robin over 4 shards: perfectly balanced.
        let counts = (0..12u32).fold([0usize; 4], |mut acc, s| {
            acc[t.switch_shard(s, 4)] += 1;
            acc
        });
        assert_eq!(counts, [3, 3, 3, 3]);
    }

    #[test]
    fn lookahead_is_min_over_trunks() {
        let net = NetParams::clan();
        let t = Topology::fat_tree(4, 2, 2, trunk(), PortLimits::default());
        assert_eq!(
            t.shard_lookahead(&net),
            net.switch.latency + SimDuration::from_nanos(600)
        );
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_topology_rejected() {
        // Two switches, no trunks.
        let edge_of = vec![0, 1];
        let ports = Topology::switch_ports(2, &edge_of, &[], trunk());
        let _ = Topology::finish("bad", 2, edge_of, ports, PortLimits::default());
    }
}
