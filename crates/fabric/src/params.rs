//! Fabric configuration: link and switch parameters, era presets.

use simkit::SimDuration;

/// Frame-loss model applied independently on each link traversal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent (memoryless) loss with probability `p` per traversal.
    Bernoulli {
        /// Per-traversal drop probability.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst model: each link direction is in a
    /// Good or Bad state; transitions happen per frame, and the loss
    /// probability depends on the state. Captures the *bursty* errors real
    /// SAN links exhibit (connector glitches, buffer overruns) that
    /// memoryless loss cannot.
    GilbertElliott {
        /// P(Good → Bad) per frame.
        p_g2b: f64,
        /// P(Bad → Good) per frame.
        p_b2g: f64,
        /// Drop probability while Good.
        loss_good: f64,
        /// Drop probability while Bad.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Long-run average drop probability of the model.
    pub fn mean_loss(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the 2-state chain.
                let denom = p_g2b + p_b2g;
                if denom == 0.0 {
                    loss_good
                } else {
                    let pi_bad = p_g2b / denom;
                    (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
                }
            }
        }
    }

    /// True when the model can never drop a frame.
    pub fn is_lossless(&self) -> bool {
        self.mean_loss() == 0.0
    }
}

/// Parameters of one full-duplex link (host↔switch, one direction modeled
/// independently).
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Usable wire bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay (cable + PHY).
    pub propagation: SimDuration,
    /// Per-frame fixed overhead on the wire (headers, preamble, inter-frame
    /// gap), in bytes.
    pub frame_overhead_bytes: u32,
    /// Largest frame *payload* the link accepts. Senders must fragment.
    pub mtu: u32,
}

impl LinkParams {
    /// Serialization time for a frame with `payload_bytes` of payload.
    pub fn serialization(&self, payload_bytes: u32) -> SimDuration {
        let total = payload_bytes as u64 + self.frame_overhead_bytes as u64;
        // ceil(total * 1e9 / bw) without overflow for realistic sizes.
        let ns = (total as u128 * 1_000_000_000u128).div_ceil(self.bandwidth_bps as u128);
        SimDuration::from_nanos(ns as u64)
    }
}

/// Parameters of the central switch.
#[derive(Clone, Copy, Debug)]
pub struct SwitchParams {
    /// Fixed forwarding latency (lookup + crossbar setup).
    pub latency: SimDuration,
    /// Cut-through switching: egress begins once the header is decoded, so
    /// an unloaded path pays one serialization, not two. Myrinet and cLAN
    /// switches cut through; the GigE switch stores-and-forwards.
    pub cut_through: bool,
}

/// Complete network description for a single-switch star SAN — the shape of
/// the paper's testbed (each interconnect had its own dedicated switch).
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// Per-direction link characteristics (uniform across nodes).
    pub link: LinkParams,
    /// Switch characteristics.
    pub switch: SwitchParams,
    /// Frame-loss model (applied independently on ingress and egress).
    pub loss: LossModel,
}

impl NetParams {
    /// Myrinet, as in the paper's testbed: 1.28 Gb/s links, cut-through
    /// switching with sub-microsecond forwarding, effectively unlimited
    /// frame size (the LANai firmware segments as it pleases).
    pub fn myrinet() -> Self {
        NetParams {
            link: LinkParams {
                bandwidth_bps: 160_000_000, // 1.28 Gb/s
                propagation: SimDuration::from_nanos(200),
                frame_overhead_bytes: 8,
                mtu: 64 * 1024,
            },
            switch: SwitchParams {
                latency: SimDuration::from_nanos(400),
                cut_through: true,
            },
            loss: LossModel::None,
        }
    }

    /// Packet Engines GNIC-II Gigabit Ethernet: 1.0 Gb/s, standard 1500 B
    /// MTU, 38 B of preamble/header/IFG overhead per frame.
    pub fn gigabit_ethernet() -> Self {
        NetParams {
            link: LinkParams {
                bandwidth_bps: 125_000_000, // 1.0 Gb/s
                propagation: SimDuration::from_nanos(300),
                frame_overhead_bytes: 38,
                mtu: 1500,
            },
            switch: SwitchParams {
                latency: SimDuration::from_micros(2),
                cut_through: false,
            },
            loss: LossModel::None,
        }
    }

    /// Giganet cLAN: 1.25 Gb/s (8b/10b-coded) hardware-VIA interconnect;
    /// the usable data rate after coding and flow-control overhead is
    /// ~110 MB/s, which is the ceiling the paper's cLAN bandwidth curves
    /// flatten at. Very low switch latency (cLAN5000 cluster switch).
    pub fn clan() -> Self {
        NetParams {
            link: LinkParams {
                bandwidth_bps: 110_000_000, // 1.25 Gb/s line rate, usable
                propagation: SimDuration::from_nanos(200),
                frame_overhead_bytes: 8,
                mtu: 64 * 1024,
            },
            switch: SwitchParams {
                latency: SimDuration::from_nanos(500),
                cut_through: true,
            },
            loss: LossModel::None,
        }
    }

    /// The minimum delay any frame pays between leaving its source shard
    /// (fabric ingress) and acting on any other node: one propagation plus
    /// the switch traversal — store-and-forward and serialization only add
    /// to it. This is the conservative *lookahead* window the sharded
    /// engine synchronizes on: a shard may run `lookahead` past the global
    /// minimum event time before any cross-shard frame can arrive.
    pub fn min_cross_latency(&self) -> SimDuration {
        self.link.propagation + self.switch.latency
    }

    /// Builder-style override: independent loss with probability `p`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss = if p == 0.0 {
            LossModel::None
        } else {
            LossModel::Bernoulli { p }
        };
        self
    }

    /// Builder-style override: Gilbert–Elliott burst loss.
    pub fn with_burst_loss(
        mut self,
        p_g2b: f64,
        p_b2g: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for v in [p_g2b, p_b2g, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&v), "probability out of range");
        }
        self.loss = LossModel::GilbertElliott {
            p_g2b,
            p_b2g,
            loss_good,
            loss_bad,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_size() {
        let l = NetParams::gigabit_ethernet().link;
        // 1500 B payload + 38 B overhead at 125 MB/s = 12.304 us.
        let t = l.serialization(1500);
        assert_eq!(t.as_nanos(), 12_304);
        // Zero payload still pays the overhead.
        assert_eq!(l.serialization(0).as_nanos(), 304);
    }

    #[test]
    fn myrinet_is_faster_than_gige() {
        let m = NetParams::myrinet().link.serialization(4096);
        let g = NetParams::gigabit_ethernet().link.serialization(1500) * 3; // ~3 frames
        assert!(m < g);
    }

    #[test]
    fn with_loss_sets_probability() {
        let p = NetParams::myrinet().with_loss(0.01);
        assert_eq!(p.loss, LossModel::Bernoulli { p: 0.01 });
        assert!((p.loss.mean_loss() - 0.01).abs() < 1e-12);
        assert_eq!(NetParams::myrinet().with_loss(0.0).loss, LossModel::None);
    }

    #[test]
    fn gilbert_elliott_mean_loss() {
        // pi_bad = 0.01 / (0.01 + 0.19) = 0.05; mean = 0.95*0 + 0.05*0.5.
        let m = LossModel::GilbertElliott {
            p_g2b: 0.01,
            p_b2g: 0.19,
            loss_good: 0.0,
            loss_bad: 0.5,
        };
        assert!((m.mean_loss() - 0.025).abs() < 1e-12);
        assert!(!m.is_lossless());
        assert!(LossModel::None.is_lossless());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_loss_rejects_bad_probability() {
        let _ = NetParams::myrinet().with_loss(1.5);
    }
}
