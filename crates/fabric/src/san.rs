//! The simulated System Area Network: a single-switch star of N nodes.
//!
//! Frames traverse `source uplink → switch → destination downlink`. Each
//! link direction is a FIFO resource with busy-until occupancy, so
//! back-to-back sends queue behind each other and bandwidth contention
//! emerges naturally. Loss injection (for the reliability benchmarks) drops
//! frames independently on each link traversal with a seeded RNG.

use std::any::Any;
use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{EventClass, Sim, SimDuration, SimRng, SimTime};
use trace::{MsgId, TracePoint, Tracer};

use crate::fault::{FaultKind, FaultPlan, FaultState, HopFault, SWITCH_NODE};
use crate::params::{LossModel, NetParams};

/// Index of a node attached to the SAN.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A frame arriving at a node's NIC.
pub struct Delivery {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (the node whose handler is invoked).
    pub dst: NodeId,
    /// Payload size on the wire (excluding per-frame overhead), in bytes.
    pub payload_bytes: u32,
    /// Opaque upper-layer message (the VIA layer downcasts this).
    pub body: Box<dyn Any + Send>,
}

/// Handler invoked on the scheduler thread when a frame reaches a node.
pub type RxHandler = Arc<dyn Fn(&Sim, Delivery) + Send + Sync>;

#[derive(Default)]
struct DirLink {
    busy_until: SimTime,
    loss: LossState,
}

/// Per-link loss-channel state: the Gilbert–Elliott good/bad automaton
/// (trivial for the memoryless models). One instance lives on every link
/// direction; it is public so tests can pin the state-transition-then-draw
/// order against the model's analytic stationary loss rate.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossState {
    /// Gilbert–Elliott channel state (false = Good, true = Bad).
    bad: bool,
}

impl LossState {
    /// Fresh channel in the Good state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the channel sits in the Bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Advance the channel state and roll one per-frame drop decision.
    ///
    /// Draw order is load-bearing for seeded reproducibility: the state
    /// transition consumes its RNG draw(s) *before* the loss draw, every
    /// frame, so a trace of `rng` calls maps 1:1 onto frames.
    pub fn roll(&mut self, rng: &mut SimRng, model: LossModel) -> bool {
        match model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // State transition first, then the per-frame loss draw.
                if self.bad {
                    if rng.chance(p_b2g) {
                        self.bad = false;
                    }
                } else if rng.chance(p_g2b) {
                    self.bad = true;
                }
                rng.chance(if self.bad { loss_bad } else { loss_good })
            }
        }
    }
}

/// Aggregate traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SanStats {
    /// Frames handed to the fabric.
    pub frames_sent: u64,
    /// Frames delivered to a receive handler.
    pub frames_delivered: u64,
    /// Frames dropped by loss injection (the configured [`LossModel`] plus
    /// any degradation-burst loss from an installed fault plan).
    pub frames_dropped: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Frames dropped by corruption injection (failed CRC) — distinct
    /// from loss-model drops.
    pub frames_corrupted: u64,
    /// Frames dropped because a fault plan had the link down.
    pub frames_faulted: u64,
}

struct SanState {
    params: NetParams,
    uplinks: Vec<DirLink>,
    downlinks: Vec<DirLink>,
    handlers: Vec<Option<RxHandler>>,
    rng: SimRng,
    stats: SanStats,
    tracer: Tracer,
    seed: u64,
    /// Present only once a non-empty [`FaultPlan`] is installed, so the
    /// fault-free send path pays exactly one `Option` branch.
    faults: Option<Box<FaultState>>,
}

/// Handle to the SAN; cheap to clone.
#[derive(Clone)]
pub struct San {
    sim: Sim,
    state: Arc<Mutex<SanState>>,
}

impl San {
    /// Build a SAN with `nodes` endpoints, all joined through one switch.
    /// `seed` feeds the loss-injection RNG.
    pub fn new(sim: Sim, params: NetParams, nodes: usize, seed: u64) -> Self {
        San {
            sim,
            state: Arc::new(Mutex::new(SanState {
                params,
                uplinks: (0..nodes).map(|_| DirLink::default()).collect(),
                downlinks: (0..nodes).map(|_| DirLink::default()).collect(),
                handlers: (0..nodes).map(|_| None).collect(),
                rng: SimRng::derive(seed, "fabric-loss"),
                stats: SanStats::default(),
                tracer: Tracer::disabled(),
                seed,
                faults: None,
            })),
        }
    }

    /// Install a fault plan: schedule every window's open/close edge on
    /// the engine's timer core. An empty plan is a no-op — the send path
    /// stays on its fault-free fast path. May be called more than once;
    /// plans accumulate.
    ///
    /// Fault decisions draw from a dedicated `"fabric-fault"` RNG stream
    /// derived from the SAN seed, so the loss-injection stream is
    /// untouched and fault-free timelines are bit-identical with or
    /// without this subsystem compiled in.
    pub fn install_faults(&self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        {
            let mut st = self.state.lock();
            if st.faults.is_none() {
                let rng = SimRng::derive(st.seed, "fabric-fault");
                st.faults = Some(Box::new(FaultState::new(rng)));
            }
        }
        for w in plan.events() {
            let kind = w.kind;
            let open = self.clone();
            self.sim.call_at_as(EventClass::Fabric, w.at, move |sim| {
                let mut st = open.state.lock();
                let st = &mut *st;
                st.faults
                    .as_mut()
                    .expect("fault state installed")
                    .begin(kind);
                match kind {
                    FaultKind::LinkDown { node } => {
                        st.tracer
                            .record(sim.now(), TracePoint::LinkDown, node.0, None, 1);
                    }
                    FaultKind::Brownout { .. } => {
                        st.tracer
                            .record(sim.now(), TracePoint::LinkDown, SWITCH_NODE, None, 2);
                    }
                    _ => {}
                }
            });
            let close = self.clone();
            self.sim
                .call_at_as(EventClass::Fabric, w.at + w.duration, move |sim| {
                    let mut st = close.state.lock();
                    let st = &mut *st;
                    st.faults.as_mut().expect("fault state installed").end(kind);
                    match kind {
                        FaultKind::LinkDown { node } => {
                            st.tracer
                                .record(sim.now(), TracePoint::LinkUp, node.0, None, 1);
                        }
                        FaultKind::Brownout { .. } => {
                            st.tracer
                                .record(sim.now(), TracePoint::LinkUp, SWITCH_NODE, None, 2);
                        }
                        _ => {}
                    }
                });
        }
    }

    /// Install a tracer recording wire tx/rx/drop points. Pass
    /// [`Tracer::disabled`] to detach.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.state.lock().tracer = tracer;
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.state.lock().handlers.len()
    }

    /// The network parameters this SAN was built with.
    pub fn params(&self) -> NetParams {
        self.state.lock().params
    }

    /// Largest frame payload the links accept; callers fragment above this.
    pub fn max_frame_payload(&self) -> u32 {
        self.state.lock().params.link.mtu
    }

    /// Install the receive handler for `node` (the NIC's rx path).
    pub fn attach(&self, node: NodeId, handler: RxHandler) {
        let mut st = self.state.lock();
        st.handlers[node.index()] = Some(handler);
    }

    /// Inject a frame. Panics if the payload exceeds the link MTU (upper
    /// layers own fragmentation) or if src == dst (no loopback path in the
    /// paper's testbed; VIA loopback short-circuits above the fabric).
    pub fn send(&self, src: NodeId, dst: NodeId, payload_bytes: u32, body: Box<dyn Any + Send>) {
        self.send_inner(src, dst, payload_bytes, body, true, None)
    }

    /// Like [`San::send`], but tagged with the message the frame belongs
    /// to, so wire-level trace records correlate with the upper layers.
    pub fn send_msg(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        msg: Option<MsgId>,
    ) {
        self.send_inner(src, dst, payload_bytes, body, true, msg)
    }

    /// Like [`San::send`], but exempt from loss injection. Connection
    /// managers use this: real VIA implementations run their connection
    /// dialogs over a reliable (kernel-mediated) control channel even when
    /// the data path is unreliable.
    pub fn send_control(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
    ) {
        self.send_inner(src, dst, payload_bytes, body, false, None)
    }

    fn send_inner(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        lossy: bool,
        msg: Option<MsgId>,
    ) {
        assert_ne!(src, dst, "fabric has no loopback path");
        let now = self.sim.now();
        let (arrive_switch, dropped) = {
            let mut st = self.state.lock();
            assert!(
                payload_bytes <= st.params.link.mtu,
                "frame payload {} exceeds link MTU {}",
                payload_bytes,
                st.params.link.mtu
            );
            st.stats.frames_sent += 1;
            let ser = st.params.link.serialization(payload_bytes);
            let prop = st.params.link.propagation;
            let link = &mut st.uplinks[src.index()];
            let start = link.busy_until.max(now);
            link.busy_until = start + ser;
            // Cut-through: the switch starts forwarding once the header is
            // in (the egress link still pays a full serialization, so the
            // unloaded path costs one serialization overall). Store-and-
            // forward: the whole frame must land first.
            let mut at_switch = if st.params.switch.cut_through {
                start + prop + st.params.switch.latency
            } else {
                start + ser + prop + st.params.switch.latency
            };
            let model = st.params.loss;
            let st_ref = &mut *st;
            let mut dropped = lossy
                && st_ref.uplinks[src.index()]
                    .loss
                    .roll(&mut st_ref.rng, model);
            st_ref
                .tracer
                .record(now, TracePoint::WireTx, src.0, msg, payload_bytes as u64);
            if dropped {
                st_ref.stats.frames_dropped += 1;
                // aux = 1: dropped on the source uplink.
                st_ref
                    .tracer
                    .record(now, TracePoint::WireDrop, src.0, msg, 1);
            } else if let Some(f) = st_ref.faults.as_mut() {
                match f.on_uplink(src, lossy) {
                    HopFault::Pass { extra } => at_switch += extra,
                    HopFault::Down => {
                        dropped = true;
                        st_ref.stats.frames_faulted += 1;
                        // aux = 3: the source's link was down.
                        st_ref
                            .tracer
                            .record(now, TracePoint::WireDrop, src.0, msg, 3);
                    }
                    HopFault::Corrupt => {
                        dropped = true;
                        st_ref.stats.frames_corrupted += 1;
                        st_ref.tracer.record(
                            now,
                            TracePoint::FrameCorrupt,
                            src.0,
                            msg,
                            payload_bytes as u64,
                        );
                    }
                    HopFault::Lost => {
                        dropped = true;
                        st_ref.stats.frames_dropped += 1;
                        // aux = 5: degradation-burst loss on the uplink.
                        st_ref
                            .tracer
                            .record(now, TracePoint::WireDrop, src.0, msg, 5);
                    }
                }
            }
            (at_switch, dropped)
        };
        if dropped {
            return;
        }
        let san = self.clone();
        self.sim
            .call_at_as(EventClass::Fabric, arrive_switch, move |_| {
                san.forward(src, dst, payload_bytes, body, lossy, msg);
            });
    }

    /// Switch egress stage: occupy the destination downlink, then deliver.
    fn forward(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        lossy: bool,
        msg: Option<MsgId>,
    ) {
        let now = self.sim.now();
        let (arrive_nic, dropped) = {
            let mut st = self.state.lock();
            let ser = st.params.link.serialization(payload_bytes);
            let prop = st.params.link.propagation;
            let link = &mut st.downlinks[dst.index()];
            let start = link.busy_until.max(now);
            link.busy_until = start + ser;
            let mut arrive = start + ser + prop;
            let model = st.params.loss;
            let st_ref = &mut *st;
            let mut dropped = lossy
                && st_ref.downlinks[dst.index()]
                    .loss
                    .roll(&mut st_ref.rng, model);
            if dropped {
                st_ref.stats.frames_dropped += 1;
                // aux = 2: dropped on the destination downlink.
                st_ref
                    .tracer
                    .record(now, TracePoint::WireDrop, dst.0, msg, 2);
            } else if let Some(f) = st_ref.faults.as_mut() {
                match f.on_downlink(dst, lossy) {
                    HopFault::Pass { extra } => arrive += extra,
                    HopFault::Down => {
                        dropped = true;
                        st_ref.stats.frames_faulted += 1;
                        // aux = 4: the destination's link was down.
                        st_ref
                            .tracer
                            .record(now, TracePoint::WireDrop, dst.0, msg, 4);
                    }
                    // Corruption is rolled once per frame, at ingress.
                    HopFault::Corrupt => unreachable!("corruption rolls at ingress"),
                    HopFault::Lost => {
                        dropped = true;
                        st_ref.stats.frames_dropped += 1;
                        // aux = 6: degradation-burst loss on the downlink.
                        st_ref
                            .tracer
                            .record(now, TracePoint::WireDrop, dst.0, msg, 6);
                    }
                }
            }
            (arrive, dropped)
        };
        if dropped {
            return;
        }
        let san = self.clone();
        self.sim
            .call_at_as(EventClass::Fabric, arrive_nic, move |sim| {
                let handler = {
                    let mut st = san.state.lock();
                    st.stats.frames_delivered += 1;
                    st.stats.bytes_delivered += payload_bytes as u64;
                    st.tracer.record(
                        sim.now(),
                        TracePoint::WireRx,
                        dst.0,
                        msg,
                        payload_bytes as u64,
                    );
                    st.handlers[dst.index()].clone()
                };
                let handler = handler.unwrap_or_else(|| {
                    panic!("frame delivered to node {dst} with no handler attached")
                });
                handler(
                    sim,
                    Delivery {
                        src,
                        dst,
                        payload_bytes,
                        body,
                    },
                );
            });
    }

    /// Unloaded one-way frame latency for a given payload (no queueing):
    /// one serialization on a cut-through path, two when the switch stores
    /// and forwards, plus two propagations and the switch traversal.
    pub fn unloaded_latency(&self, payload_bytes: u32) -> SimDuration {
        let st = self.state.lock();
        let ser = st.params.link.serialization(payload_bytes);
        let sers = if st.params.switch.cut_through {
            ser
        } else {
            ser * 2
        };
        sers + st.params.link.propagation * 2 + st.params.switch.latency
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> SanStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn collect_arrivals(san: &San, node: NodeId) -> Arc<Mutex<Vec<(SimTime, u32)>>> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        san.attach(
            node,
            Arc::new(move |sim, d| {
                log2.lock().push((sim.now(), d.payload_bytes));
            }),
        );
        log
    }

    #[test]
    fn single_frame_latency_matches_model() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let expected = san.unloaded_latency(1024);
        assert_eq!(log[0].0, SimTime::ZERO + expected);
    }

    #[test]
    fn back_to_back_frames_queue_on_uplink() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::gigabit_ethernet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        for _ in 0..3 {
            san.send(NodeId(0), NodeId(1), 1500, Box::new(()));
        }
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 3);
        // Arrivals are spaced by exactly one serialization time (pipelined).
        let ser = NetParams::gigabit_ethernet().link.serialization(1500);
        let gap1 = log[1].0 - log[0].0;
        let gap2 = log[2].0 - log[1].0;
        assert_eq!(gap1, ser);
        assert_eq!(gap2, ser);
    }

    #[test]
    fn two_senders_contend_on_shared_downlink() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 1);
        let log = collect_arrivals(&san, NodeId(2));
        san.send(NodeId(0), NodeId(2), 8192, Box::new(()));
        san.send(NodeId(1), NodeId(2), 8192, Box::new(()));
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 2);
        // The second frame had to wait for the first on node 2's downlink.
        let ser = NetParams::myrinet().link.serialization(8192);
        assert_eq!(log[1].0 - log[0].0, ser);
    }

    #[test]
    fn distinct_destinations_do_not_contend_at_egress() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 1);
        let log1 = collect_arrivals(&san, NodeId(1));
        let log2 = collect_arrivals(&san, NodeId(2));
        // One sender, two destinations: uplink is shared, downlinks are not.
        san.send(NodeId(0), NodeId(1), 4096, Box::new(()));
        san.send(NodeId(0), NodeId(2), 4096, Box::new(()));
        sim.run_to_completion();
        let t1 = log1.lock()[0].0;
        let t2 = log2.lock()[0].0;
        // Second frame trails by one uplink serialization only.
        let ser = NetParams::myrinet().link.serialization(4096);
        assert_eq!(t2 - t1, ser);
    }

    #[test]
    #[should_panic(expected = "exceeds link MTU")]
    fn oversized_frame_panics() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::gigabit_ethernet(), 2, 1);
        san.send(NodeId(0), NodeId(1), 9000, Box::new(()));
    }

    #[test]
    #[should_panic(expected = "no loopback")]
    fn loopback_panics() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        san.send(NodeId(0), NodeId(0), 64, Box::new(()));
    }

    #[test]
    fn loss_injection_drops_frames() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.5), 2, 99);
        let log = collect_arrivals(&san, NodeId(1));
        for _ in 0..200 {
            san.send(NodeId(0), NodeId(1), 64, Box::new(()));
        }
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 200);
        let delivered = log.lock().len() as u64;
        assert_eq!(stats.frames_delivered, delivered);
        // p(survive both hops) = 0.25: expect ~50 of 200 through.
        assert!(delivered > 20 && delivered < 120, "delivered={delivered}");
        assert!(stats.frames_dropped > 0);
    }

    #[test]
    fn lossless_network_delivers_everything() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::clan(), 4, 7);
        let log = collect_arrivals(&san, NodeId(3));
        for src in 0..3u32 {
            for _ in 0..10 {
                san.send(NodeId(src), NodeId(3), 256, Box::new(()));
            }
        }
        sim.run_to_completion();
        assert_eq!(log.lock().len(), 30);
        let stats = san.stats();
        assert_eq!(stats.frames_delivered, 30);
        assert_eq!(stats.bytes_delivered, 30 * 256);
        assert_eq!(stats.frames_dropped, 0);
    }

    #[test]
    fn burst_loss_drops_in_clusters() {
        // Compare the longest run of consecutive drops under burst loss vs
        // Bernoulli loss at the same mean rate (~9%).
        fn longest_drop_run(params: NetParams, seed: u64) -> (usize, u64) {
            let sim = Sim::new();
            let san = San::new(sim.clone(), params, 2, seed);
            let got = Arc::new(Mutex::new(Vec::new()));
            let g2 = Arc::clone(&got);
            san.attach(
                NodeId(1),
                Arc::new(move |_, d| {
                    let id = *d.body.downcast::<u64>().unwrap();
                    g2.lock().push(id);
                }),
            );
            for i in 0..2_000u64 {
                san.send(NodeId(0), NodeId(1), 64, Box::new(i));
            }
            sim.run_to_completion();
            let got = got.lock();
            let delivered: std::collections::HashSet<u64> = got.iter().copied().collect();
            let mut longest = 0;
            let mut run = 0;
            for i in 0..2_000u64 {
                if delivered.contains(&i) {
                    run = 0;
                } else {
                    run += 1;
                    longest = longest.max(run);
                }
            }
            (longest, san.stats().frames_dropped)
        }
        let burst = NetParams::myrinet().with_burst_loss(0.005, 0.10, 0.0, 0.95);
        let (burst_run, burst_drops) = longest_drop_run(burst, 5);
        let bern = NetParams::myrinet().with_loss(burst.loss.mean_loss());
        let (bern_run, bern_drops) = longest_drop_run(bern, 5);
        // Comparable totals, radically different structure.
        assert!(burst_drops > 50 && bern_drops > 50);
        assert!(
            burst_run >= bern_run * 2,
            "burst runs ({burst_run}) must dwarf Bernoulli runs ({bern_run})"
        );
    }

    #[test]
    fn tracer_records_wire_tx_rx_with_msgid() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        let id = MsgId {
            src_node: 0,
            vi: 2,
            seq: 9,
        };
        san.send_msg(NodeId(0), NodeId(1), 512, Box::new(()), Some(id));
        sim.run_to_completion();
        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].point, TracePoint::WireTx);
        assert_eq!(recs[0].node, 0);
        assert_eq!(recs[0].msg, Some(id));
        assert_eq!(recs[0].aux, 512);
        assert_eq!(recs[1].point, TracePoint::WireRx);
        assert_eq!(recs[1].node, 1);
        assert_eq!(recs[1].msg, Some(id));
        // The rx stamp is the delivery time, strictly after the tx stamp.
        assert!(recs[1].at_ns > recs[0].at_ns);
    }

    #[test]
    fn tracer_records_drops_with_hop_tag() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.5), 2, 99);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        for _ in 0..100 {
            san.send(NodeId(0), NodeId(1), 64, Box::new(()));
        }
        sim.run_to_completion();
        let drops = tracer.count(TracePoint::WireDrop);
        assert_eq!(drops, san.stats().frames_dropped);
        assert!(drops > 0);
        let recs = tracer.records();
        // Hop tags: 1 = uplink (recorded on src), 2 = downlink (on dst).
        assert!(recs
            .iter()
            .filter(|r| r.point == TracePoint::WireDrop)
            .all(|r| (r.aux == 1 && r.node == 0) || (r.aux == 2 && r.node == 1)));
        assert_eq!(tracer.count(TracePoint::WireTx), 100);
    }

    #[test]
    fn empty_fault_plan_installs_nothing() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        san.install_faults(&FaultPlan::new());
        assert!(san.state.lock().faults.is_none());
    }

    #[test]
    fn link_flap_window_drops_frames_and_recovers() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        let flap_at = SimTime::ZERO + SimDuration::from_micros(100);
        let plan = FaultPlan::new().link_flap(NodeId(0), flap_at, SimDuration::from_micros(50));
        san.install_faults(&plan);
        // One frame before, one inside, one after the window.
        for delay_us in [0u64, 120, 300] {
            let san2 = san.clone();
            sim.call_in_as(
                EventClass::Fabric,
                SimDuration::from_micros(delay_us),
                move |_| {
                    san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
                },
            );
        }
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 3);
        assert_eq!(stats.frames_delivered, 2);
        assert_eq!(stats.frames_faulted, 1);
        assert_eq!(stats.frames_dropped, 0);
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn link_down_kills_control_frames_too() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let plan =
            FaultPlan::new().link_flap(NodeId(1), SimTime::ZERO, SimDuration::from_micros(50));
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send_control(NodeId(0), NodeId(1), 64, Box::new(()));
        });
        sim.run_to_completion();
        assert_eq!(san.stats().frames_faulted, 1);
        assert_eq!(san.stats().frames_delivered, 0);
    }

    #[test]
    fn corruption_has_its_own_counter() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 9);
        let log = collect_arrivals(&san, NodeId(1));
        let plan = FaultPlan::new().corrupt(SimTime::ZERO, SimDuration::from_millis(10), 0.5);
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            for _ in 0..200 {
                san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
            }
        });
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 200);
        assert!(stats.frames_corrupted > 50, "{stats:?}");
        // Corruption is not loss: the loss counter stays clean.
        assert_eq!(stats.frames_dropped, 0);
        assert_eq!(stats.frames_faulted, 0);
        assert_eq!(
            stats.frames_delivered + stats.frames_corrupted,
            200,
            "{stats:?}"
        );
        assert_eq!(log.lock().len() as u64, stats.frames_delivered);
    }

    #[test]
    fn degradation_burst_adds_latency_and_loss() {
        let sim = Sim::new();
        let params = NetParams::myrinet();
        let san = San::new(sim.clone(), params, 2, 3);
        let log = collect_arrivals(&san, NodeId(1));
        let extra = SimDuration::from_micros(7);
        let plan = FaultPlan::new().degrade(
            NodeId(0),
            SimTime::ZERO,
            SimDuration::from_millis(10),
            extra,
            0.0,
        );
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send(NodeId(0), NodeId(1), 1024, Box::new(()));
        });
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let base = SimTime::ZERO + SimDuration::from_micros(1) + san.unloaded_latency(1024);
        // Degrading the source's link delays the one (uplink) traversal.
        assert_eq!(log[0].0, base + extra);
    }

    #[test]
    fn brownout_slows_the_switch_for_everyone() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 3);
        let log = collect_arrivals(&san, NodeId(2));
        let extra = SimDuration::from_micros(11);
        let plan = FaultPlan::new().brownout(SimTime::ZERO, SimDuration::from_millis(10), extra);
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send(NodeId(1), NodeId(2), 512, Box::new(()));
        });
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let base = SimTime::ZERO + SimDuration::from_micros(1) + san.unloaded_latency(512);
        assert_eq!(log[0].0, base + extra);
    }

    #[test]
    fn fault_edges_are_traced() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        let at = SimTime::ZERO + SimDuration::from_micros(5);
        let plan = FaultPlan::new().link_flap(NodeId(0), at, SimDuration::from_micros(10));
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(8), move |_| {
            san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
        });
        sim.run_to_completion();
        assert_eq!(tracer.count(TracePoint::LinkDown), 1);
        assert_eq!(tracer.count(TracePoint::LinkUp), 1);
        let recs = tracer.records();
        let down = recs
            .iter()
            .find(|r| r.point == TracePoint::LinkDown)
            .unwrap();
        assert_eq!(down.node, 0);
        assert_eq!(down.aux, 1);
        // The frame sent mid-window died with the link-down hop tag.
        assert!(recs
            .iter()
            .any(|r| r.point == TracePoint::WireDrop && r.aux == 3));
    }

    #[test]
    fn fault_rng_leaves_the_loss_stream_untouched() {
        // Same seed, same traffic, same loss model: a corruption window
        // must not perturb which frames the loss model drops.
        fn delivered_ids(with_corruption: bool) -> Vec<u64> {
            let sim = Sim::new();
            let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.2), 2, 42);
            let got = Arc::new(Mutex::new(Vec::new()));
            let g2 = Arc::clone(&got);
            san.attach(
                NodeId(1),
                Arc::new(move |_, d| {
                    g2.lock().push(*d.body.downcast::<u64>().unwrap());
                }),
            );
            if with_corruption {
                // A window that has expired before any traffic flows: the
                // FaultState is installed (the Option branch is taken) but
                // no fault decision ever fires.
                san.install_faults(&FaultPlan::new().corrupt(
                    SimTime::ZERO,
                    SimDuration::from_nanos(1),
                    1.0,
                ));
            }
            let san2 = san.clone();
            sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
                for i in 0..500u64 {
                    san2.send(NodeId(0), NodeId(1), 64, Box::new(i));
                }
            });
            sim.run_to_completion();
            let got = got.lock().clone();
            got
        }
        assert_eq!(delivered_ids(false), delivered_ids(true));
    }

    #[test]
    fn payload_body_roundtrips() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let got = Arc::new(Mutex::new(None));
        let got2 = Arc::clone(&got);
        san.attach(
            NodeId(1),
            Arc::new(move |_, d| {
                let v = d.body.downcast::<String>().expect("string body");
                *got2.lock() = Some((*v).clone());
            }),
        );
        san.send(
            NodeId(0),
            NodeId(1),
            11,
            Box::new("hello world".to_string()),
        );
        sim.run_to_completion();
        assert_eq!(got.lock().as_deref(), Some("hello world"));
    }
}
