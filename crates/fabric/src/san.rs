//! The simulated System Area Network: a star of N nodes around one switch,
//! or — built over a multi-switch [`Topology`] — a routed fabric with
//! per-output-port buffered switches.
//!
//! Frames traverse `source uplink → switch → destination downlink`. Each
//! link direction is a FIFO resource with busy-until occupancy, so
//! back-to-back sends queue behind each other and bandwidth contention
//! emerges naturally. Loss injection (for the reliability benchmarks) drops
//! frames with a seeded RNG stream *per link direction*, so the draw a
//! frame sees depends only on the order of frames over its own link —
//! never on unrelated traffic elsewhere, and never on how nodes are
//! distributed over engine shards.
//!
//! # Multi-switch operation
//!
//! A SAN built with [`San::new_topo`] over a multi-switch [`Topology`]
//! replaces the single switch traversal with store-and-forward hops:
//! `uplink → edge switch → (trunk → switch)* → host port → NIC`. Every
//! switch output port is a bounded FIFO ([`crate::topo::PortLimits`]):
//! frames past `capacity` are *paused* — parked under link-level
//! backpressure and admitted FIFO as the wire frees slots — and dropped
//! only when the pause queue is also full, with per-port
//! `drops`/`pauses`/`hol_blocked` counters ([`San::port_stats`]) naming
//! every such loss. Routing is deterministic content-keyed ECMP
//! ([`Topology::next_hop`]); no RNG is consumed by forwarding. A
//! single-switch topology (e.g. [`Topology::star`]) is a true degenerate
//! case: construction falls through to the legacy path and every artifact
//! stays byte-identical.
//!
//! # Sharded operation
//!
//! A SAN built with [`San::new_sharded`] splits its link-layer state by
//! shard: node `n`'s uplink is touched only while `n`'s shard executes a
//! send, and its downlink only while `n`'s shard executes the switch
//! egress, so each shard owns the state it mutates. The uplink stage ends
//! by scheduling the egress stage on the *destination's* shard — same
//! shard: a direct local event (the exact serial path); different shard: a
//! [`simkit::ShardSender`] channel message. The scheduling delay is at
//! least `propagation + switch latency` ([`NetParams::min_cross_latency`]),
//! which is precisely the conservative lookahead the sharded engine
//! synchronizes on.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{EventClass, ShardMap, ShardSender, ShardedSim, Sim, SimDuration, SimRng, SimTime};
use trace::{MsgId, TracePoint, Tracer};

use crate::fault::{FaultKind, FaultPlan, FaultState, HopFault, SWITCH_NODE};
use crate::params::{LossModel, NetParams};
use crate::topo::{PortSnapshot, PortStats, PortTarget, Routes, Topology};

/// Index of a node attached to the SAN.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A frame arriving at a node's NIC.
pub struct Delivery {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node (the node whose handler is invoked).
    pub dst: NodeId,
    /// Payload size on the wire (excluding per-frame overhead), in bytes.
    pub payload_bytes: u32,
    /// Opaque upper-layer message (the VIA layer downcasts this).
    pub body: Box<dyn Any + Send>,
}

/// Handler invoked on the scheduler thread when a frame reaches a node.
pub type RxHandler = Arc<dyn Fn(&Sim, Delivery) + Send + Sync>;

struct DirLink {
    busy_until: SimTime,
    loss: LossState,
    /// Dedicated loss-draw stream for this link direction, derived from
    /// the SAN seed and the (node, direction) label. Per-link streams make
    /// drop decisions a function of the frame order on *this* link alone —
    /// the property that keeps seeded runs identical at any shard count.
    rng: SimRng,
    /// Virtual time of the last occupancy application. Occupancy chaining
    /// (`max(busy_until, at)`) is only exact when applications arrive in
    /// non-decreasing `at` order; the fused fast path applies occupancy
    /// *eagerly* (at post time, for a future wire time), so this tripwire
    /// turns any ordering inversion into a loud debug assertion instead of
    /// a silently divergent timeline.
    last_applied_at: SimTime,
}

impl DirLink {
    fn new(seed: u64, node: usize, up: bool) -> DirLink {
        let dir = if up { "up" } else { "down" };
        DirLink {
            busy_until: SimTime::ZERO,
            loss: LossState::new(),
            rng: SimRng::derive(seed, &format!("fabric-loss-{dir}-n{node}")),
            last_applied_at: SimTime::ZERO,
        }
    }

    /// Occupy this link direction for `ser` starting no earlier than `at`;
    /// returns the transmit start. Shared by the general stages (where
    /// `at` is the current virtual time) and the fused path (where `at`
    /// is a precomputed future wire time).
    fn occupy(&mut self, at: SimTime, ser: SimDuration) -> SimTime {
        debug_assert!(
            at >= self.last_applied_at,
            "link occupancy applied out of time order: {:?} < {:?}",
            at,
            self.last_applied_at,
        );
        self.last_applied_at = at;
        let start = self.busy_until.max(at);
        self.busy_until = start + ser;
        start
    }
}

/// Per-link loss-channel state: the Gilbert–Elliott good/bad automaton
/// (trivial for the memoryless models). One instance lives on every link
/// direction; it is public so tests can pin the state-transition-then-draw
/// order against the model's analytic stationary loss rate.
#[derive(Clone, Copy, Debug, Default)]
pub struct LossState {
    /// Gilbert–Elliott channel state (false = Good, true = Bad).
    bad: bool,
}

impl LossState {
    /// Fresh channel in the Good state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the channel sits in the Bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// Advance the channel state and roll one per-frame drop decision.
    ///
    /// Draw order is load-bearing for seeded reproducibility: the state
    /// transition consumes its RNG draw(s) *before* the loss draw, every
    /// frame, so a trace of `rng` calls maps 1:1 onto frames.
    pub fn roll(&mut self, rng: &mut SimRng, model: LossModel) -> bool {
        match model {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // State transition first, then the per-frame loss draw.
                if self.bad {
                    if rng.chance(p_b2g) {
                        self.bad = false;
                    }
                } else if rng.chance(p_g2b) {
                    self.bad = true;
                }
                rng.chance(if self.bad { loss_bad } else { loss_good })
            }
        }
    }
}

/// Aggregate traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanStats {
    /// Frames handed to the fabric.
    pub frames_sent: u64,
    /// Frames delivered to a receive handler.
    pub frames_delivered: u64,
    /// Frames dropped by loss injection (the configured [`LossModel`] plus
    /// any degradation-burst loss from an installed fault plan).
    pub frames_dropped: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Frames dropped by corruption injection (failed CRC) — distinct
    /// from loss-model drops.
    pub frames_corrupted: u64,
    /// Frames dropped because a fault plan had the link down.
    pub frames_faulted: u64,
    /// Frames dropped at a switch output port whose buffer *and* pause
    /// queue were full (multi-switch topologies only; the per-port
    /// counters in [`San::port_stats`] attribute each one to its port).
    /// Includes pause-queue frames drained by watchdog storm trips — the
    /// per-port split is `drops` vs `storm_dropped`.
    pub frames_port_dropped: u64,
    /// Frames dropped by a switch-scoped fault window: flushed from a dead
    /// switch's port FIFOs, refused at a dead switch's ingress, refused at
    /// a downed trunk's port, or stranded with no surviving route. Trunk
    /// refusals are additionally attributed to their port's
    /// `fault_dropped`; switch-wide kills have no single port to blame.
    pub frames_fault_dropped: u64,
}

/// Per-shard link-layer state. Vectors span *all* nodes for simple
/// indexing, but a shard only ever touches the entries of nodes it owns
/// (uplinks at send, downlinks at switch egress), so the replicated
/// entries of foreign nodes stay untouched and cost only idle memory.
struct LinkShard {
    uplinks: Vec<DirLink>,
    downlinks: Vec<DirLink>,
    /// Present only once a non-empty [`FaultPlan`] is installed, so the
    /// fault-free send path pays exactly one `Option` branch. Window state
    /// is replicated per shard (edges are scheduled on every shard's
    /// engine); the per-node fault RNG streams inside are only ever drawn
    /// from on the owning shard, so replication never skews a draw.
    faults: Option<Box<FaultState>>,
}

/// Who can write a node's downlink. Registered at VIA connect time —
/// before any frame of the flow can possibly be on the wire — so a fused
/// sender can prove it is the *sole* writer of the destination downlink
/// and apply that downlink's occupancy eagerly without reordering anyone
/// else's frames.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WriterSet {
    /// No flow targets this downlink yet.
    Empty,
    /// Exactly one source has registered a flow to this node.
    One(NodeId),
    /// Two or more distinct sources target this node (fan-in).
    Many,
}

/// Order-independent state shared by every shard: pure counters, the
/// tracer, and the rx-handler table (written at topology setup, read at
/// delivery).
struct SharedState {
    handlers: Vec<Option<RxHandler>>,
    stats: SanStats,
    tracer: Tracer,
    /// Per-destination writer registry for the fused fast path.
    writers: Vec<WriterSet>,
    /// Per-node split of [`SanStats::frames_fault_dropped`] attributable
    /// to node-scoped windows: frames that died because this node was
    /// crashed (as sender, receiver, or in-flight destination).
    node_fault_dropped: Vec<u64>,
}

/// Callback fired at a node-scoped fault window edge, on the victim
/// node's owning shard's engine. `open` is true at window open (the host
/// crashes: wipe NIC and VI state) and false at window close (the host
/// reboots). The [`FaultKind`] is the window's kind
/// ([`FaultKind::NodeDown`] or [`FaultKind::NicReset`]).
pub type NodeFaultHook = Arc<dyn Fn(&Sim, FaultKind, bool) + Send + Sync>;

/// A frame in flight inside the multi-switch fabric: everything the next
/// switch hop needs, owned by whichever shard currently holds the frame.
struct TopoFrame {
    src: NodeId,
    dst: NodeId,
    payload_bytes: u32,
    body: Box<dyn Any + Send>,
    msg: Option<MsgId>,
    lossy: bool,
}

/// One switch output port: a bounded FIFO in front of a FIFO wire. Only
/// the switch's owning shard ever touches it.
///
/// Arrivals and slot frees are not applied at their event's instant:
/// they are *staged* and applied by a resolver event one nanosecond
/// later, in a canonical content order (see [`San::topo_resolve`]). The
/// engine executes same-timestamp events in insertion order, and with a
/// sharded engine that order depends on how switches map to shards — so
/// any admit/pause/drop decision made directly in event order would make
/// artifact bytes a function of the shard count. Staging makes every
/// port decision a pure function of virtual time and frame content.
struct Port {
    /// Egress-wire occupancy chain (monotone: admissions happen in this
    /// shard's resolver order, and each admission extends it).
    busy_until: SimTime,
    /// Frames admitted — buffered or serializing — bounded by `capacity`.
    queued: u32,
    /// Final destination of the last admitted frame, for head-of-line
    /// attribution when a later frame has to pause behind it.
    last_dst: u32,
    /// Paused frames parked under backpressure, admitted FIFO as the wire
    /// frees slots; bounded by `pause_depth`.
    waiting: VecDeque<TopoFrame>,
    /// Arrivals staged for the next resolver tick, with their landing
    /// instant; consumed only by a resolver running strictly later.
    staged: Vec<(SimTime, TopoFrame)>,
    /// Slot-free tokens (departed frames) staged the same way.
    freed: Vec<SimTime>,
    /// Latest resolver instant already scheduled; stagings at or past it
    /// schedule a fresh resolver, earlier ones are already covered.
    next_resolve: SimTime,
    /// Start of the current consecutive-pause streak: set by the first
    /// resolver that leaves `waiting` non-empty, cleared by the first that
    /// drains it (or by a watchdog trip). Streak length is only observed
    /// at resolver instants, so its granularity is one serialization —
    /// bounded, because a non-empty pause queue implies a full buffer,
    /// which implies a frame serializing, whose depart stages a resolver.
    paused_since: Option<SimTime>,
    stats: PortStats,
}

/// How far after a staged port operation its resolver runs. One
/// nanosecond — the clock's quantum — so the resolver is the very next
/// representable instant and adds the minimum possible latency per hop.
const RESOLVE_TICK: SimDuration = SimDuration::from_nanos(1);

impl Port {
    /// Record that something was staged at `now`; returns true when the
    /// caller must schedule a resolver at `now + RESOLVE_TICK` (at most
    /// one resolver per port per instant — `<=` and not `<`, so a staging
    /// at exactly the last covered instant still gets a fresh resolver).
    fn schedule_resolver(&mut self, now: SimTime) -> bool {
        if self.next_resolve <= now {
            self.next_resolve = now + RESOLVE_TICK;
            true
        } else {
            false
        }
    }
}

/// Per-shard replica of the reconverged routing table plus the failure
/// bookkeeping behind it. Every shard applies the same routing updates at
/// the same virtual times (the update events are scheduled on every
/// shard's engine at install time, in plan order), so all replicas hold
/// identical state whenever any frame consults them — routing stays a
/// pure function of virtual time and topology state at any shard count.
#[derive(Default)]
struct RoutingState {
    /// Active [`FaultKind::SwitchDown`] windows per switch (overlapping
    /// windows on one switch stack as a count).
    switch_down: Vec<(u32, u32)>,
    /// Active [`FaultKind::TrunkDown`] windows per normalized trunk pair.
    trunk_down: Vec<((u32, u32), u32)>,
    /// Reconvergence epoch: bumped on every apply *and* revert, folding
    /// into the ECMP salt so each convergence re-spreads flows.
    epoch: u64,
    /// The current reconverged table; `None` until the first update (the
    /// baseline [`Topology::next_hop`] applies — byte-identical to the
    /// pre-fault fabric).
    routes: Option<Routes>,
}

/// Multi-switch fabric state. Present only for genuinely multi-switch
/// topologies — single-switch SANs carry `None` and run the legacy path
/// untouched.
struct TopoState {
    topo: Topology,
    /// Per-switch output-port state, indexed like [`Topology::ports`].
    /// Only the owning shard (`switch_shard`) touches a switch's entry.
    switches: Vec<Mutex<Vec<Port>>>,
    /// Switch → owning shard.
    switch_shard: Vec<usize>,
    /// Per-shard routing replicas (see [`RoutingState`]).
    routing: Vec<Mutex<RoutingState>>,
}

struct SanInner {
    params: NetParams,
    seed: u64,
    nodes: usize,
    map: ShardMap,
    /// Multi-switch routing and port state; `None` for single-switch SANs.
    topo: Option<TopoState>,
    /// One engine per shard; a serial SAN has exactly one.
    sims: Vec<Sim>,
    /// Cross-shard schedulers, indexed by source shard. Empty for a serial
    /// SAN, whose map sends every node to shard 0 and therefore never
    /// takes the cross-shard branch.
    senders: Vec<ShardSender>,
    links: Vec<Mutex<LinkShard>>,
    shared: Mutex<SharedState>,
    /// Master switch for the fabric-side event folds (`VIBE_FUSE`). The
    /// VIA layer sets it at cluster build; folding never changes virtual
    /// times or counters, only how many scheduler events carry a frame.
    fuse: AtomicBool,
    /// Set once a plan containing switch-scoped windows ([`SwitchDown`],
    /// [`TrunkDown`], [`PortDegrade`]) is installed. The multi-switch data
    /// plane checks fault state and reconverged routes only under this
    /// flag, so fault-free topologies pay one relaxed load per hop.
    ///
    /// [`SwitchDown`]: FaultKind::SwitchDown
    /// [`TrunkDown`]: FaultKind::TrunkDown
    /// [`PortDegrade`]: FaultKind::PortDegrade
    switch_faults: AtomicBool,
    /// Set once a plan containing node-scoped windows ([`NodeDown`],
    /// [`NicReset`]) is installed. The delivery funnel checks the
    /// destination's liveness only under this flag, so crash-free runs
    /// pay one relaxed load per delivery.
    ///
    /// [`NodeDown`]: FaultKind::NodeDown
    /// [`NicReset`]: FaultKind::NicReset
    node_faults: AtomicBool,
    /// Per-node crash/reboot hooks (registered by the attached provider
    /// layer); invoked on the victim's owning shard at window edges.
    node_hooks: Mutex<Vec<Option<NodeFaultHook>>>,
}

/// What the uplink or downlink stage decided about one frame.
#[derive(Clone, Copy, PartialEq)]
enum HopOutcome {
    Pass,
    LossDrop,
    FaultDown,
    Corrupt,
    FaultLost,
    /// The endpoint host is crashed (node-scoped fault window).
    NodeDead,
}

/// Handle to the SAN; cheap to clone.
#[derive(Clone)]
pub struct San {
    inner: Arc<SanInner>,
}

impl San {
    /// Build a SAN with `nodes` endpoints, all joined through one switch,
    /// driven by a single serial engine. `seed` feeds the per-link
    /// loss-injection RNG streams.
    pub fn new(sim: Sim, params: NetParams, nodes: usize, seed: u64) -> Self {
        Self::build(
            vec![sim],
            Vec::new(),
            ShardMap::new(1),
            params,
            nodes,
            seed,
            None,
        )
    }

    /// Build a SAN over an explicit [`Topology`], driven by a single
    /// serial engine. A single-switch topology (e.g. [`Topology::star`])
    /// degenerates to exactly [`San::new`]; multi-switch shapes route
    /// frames hop by hop through buffered, backpressured switch ports.
    pub fn new_topo(sim: Sim, params: NetParams, topo: Topology, seed: u64) -> Self {
        let nodes = topo.nodes();
        Self::build(
            vec![sim],
            Vec::new(),
            ShardMap::new(1),
            params,
            nodes,
            seed,
            Some(topo),
        )
    }

    /// Build a SAN over an explicit [`Topology`] distributed over the
    /// shards of a [`ShardedSim`]. The engine must have been built with
    /// this topology's [`Topology::shard_map`] (so switch neighborhoods
    /// are co-sharded and only trunk hops cross shards) and a lookahead no
    /// larger than [`Topology::shard_lookahead`] — the minimum trunk
    /// traversal, which every cross-shard hop strictly exceeds.
    pub fn new_sharded_topo(
        sharded: &ShardedSim,
        params: NetParams,
        topo: Topology,
        seed: u64,
    ) -> Self {
        assert!(
            sharded.lookahead() <= topo.shard_lookahead(&params),
            "engine lookahead {:?} exceeds the topology's minimum trunk traversal {:?}",
            sharded.lookahead(),
            topo.shard_lookahead(&params),
        );
        assert_eq!(
            sharded.map(),
            topo.shard_map(sharded.shards()),
            "sharded engine must use the topology's node→shard map",
        );
        let nodes = topo.nodes();
        let senders = (0..sharded.shards()).map(|s| sharded.sender(s)).collect();
        Self::build(
            sharded.sims().to_vec(),
            senders,
            sharded.map(),
            params,
            nodes,
            seed,
            Some(topo),
        )
    }

    /// Build a SAN whose nodes are distributed over the shards of a
    /// [`ShardedSim`] by its content-keyed map. The engine's lookahead
    /// must not exceed [`NetParams::min_cross_latency`] — the fastest any
    /// frame can cross between nodes — or conservative synchronization
    /// would be unsound.
    pub fn new_sharded(sharded: &ShardedSim, params: NetParams, nodes: usize, seed: u64) -> Self {
        assert!(
            sharded.lookahead() <= params.min_cross_latency(),
            "engine lookahead {:?} exceeds the fabric's minimum cross-node latency {:?}",
            sharded.lookahead(),
            params.min_cross_latency(),
        );
        let senders = (0..sharded.shards()).map(|s| sharded.sender(s)).collect();
        Self::build(
            sharded.sims().to_vec(),
            senders,
            sharded.map(),
            params,
            nodes,
            seed,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        sims: Vec<Sim>,
        senders: Vec<ShardSender>,
        map: ShardMap,
        params: NetParams,
        nodes: usize,
        seed: u64,
        topo: Option<Topology>,
    ) -> Self {
        // Single-switch topologies (the star) are a true degenerate case:
        // drop the description and take the legacy path verbatim.
        let topo = topo.filter(|t| !t.is_single_switch()).map(|t| {
            assert_eq!(t.nodes(), nodes, "topology node count mismatch");
            let shards = sims.len();
            for n in 0..nodes as u32 {
                assert_eq!(
                    map.assign(n),
                    t.switch_shard(t.edge_of(n), shards),
                    "node {n} must share its edge switch's shard",
                );
            }
            let switch_shard = (0..t.switches())
                .map(|s| t.switch_shard(s as u32, shards))
                .collect();
            let switches = (0..t.switches() as u32)
                .map(|s| {
                    for p in t.ports(s) {
                        if let Some(l) = p.trunk {
                            // Upper layers fragment to the access MTU; a
                            // narrower trunk would strand frames mid-path.
                            assert!(
                                l.mtu >= params.link.mtu,
                                "trunk MTU {} below access MTU {}",
                                l.mtu,
                                params.link.mtu,
                            );
                        }
                    }
                    Mutex::new(
                        t.ports(s)
                            .iter()
                            .map(|_| Port {
                                busy_until: SimTime::ZERO,
                                queued: 0,
                                last_dst: u32::MAX,
                                waiting: VecDeque::new(),
                                staged: Vec::new(),
                                freed: Vec::new(),
                                next_resolve: SimTime::ZERO,
                                paused_since: None,
                                stats: PortStats::default(),
                            })
                            .collect(),
                    )
                })
                .collect();
            let routing = (0..sims.len())
                .map(|_| Mutex::new(RoutingState::default()))
                .collect();
            TopoState {
                topo: t,
                switches,
                switch_shard,
                routing,
            }
        });
        let links = (0..sims.len())
            .map(|_| {
                Mutex::new(LinkShard {
                    uplinks: (0..nodes).map(|n| DirLink::new(seed, n, true)).collect(),
                    downlinks: (0..nodes).map(|n| DirLink::new(seed, n, false)).collect(),
                    faults: None,
                })
            })
            .collect();
        San {
            inner: Arc::new(SanInner {
                params,
                seed,
                nodes,
                map,
                topo,
                sims,
                senders,
                links,
                shared: Mutex::new(SharedState {
                    handlers: (0..nodes).map(|_| None).collect(),
                    stats: SanStats::default(),
                    tracer: Tracer::disabled(),
                    writers: vec![WriterSet::Empty; nodes],
                    node_fault_dropped: vec![0; nodes],
                }),
                fuse: AtomicBool::new(true),
                switch_faults: AtomicBool::new(false),
                node_faults: AtomicBool::new(false),
                node_hooks: Mutex::new((0..nodes).map(|_| None).collect()),
            }),
        }
    }

    /// Enable or disable the fabric-side event folds (the switch-egress
    /// fold in the send path and the fused injection entry point's fold).
    /// Folding is timeline-neutral; the knob exists so `VIBE_FUSE=0` runs
    /// measure the genuinely unfused scheduler.
    pub fn set_fuse(&self, on: bool) {
        self.inner.fuse.store(on, Ordering::Relaxed);
    }

    fn fuse_on(&self) -> bool {
        self.inner.fuse.load(Ordering::Relaxed)
    }

    /// Install a fault plan: schedule every window's open/close edge on
    /// the timer core of *every* shard (window state is per shard, so each
    /// engine flips its own replica at the right virtual time). An empty
    /// plan is a no-op — the send path stays on its fault-free fast path.
    /// May be called more than once; plans accumulate.
    ///
    /// Fault decisions draw from dedicated per-node `"fabric-fault-n*"`
    /// RNG streams derived from the SAN seed, so the loss-injection
    /// streams are untouched and fault-free timelines are bit-identical
    /// with or without this subsystem compiled in.
    pub fn install_faults(&self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        if plan.has_switch_faults() {
            let ts = self
                .inner
                .topo
                .as_ref()
                .expect("switch-scoped fault windows require a multi-switch topology");
            let trunks = ts.topo.trunk_pairs();
            for w in plan.events() {
                match w.kind {
                    FaultKind::SwitchDown { switch } | FaultKind::PortDegrade { switch, .. } => {
                        assert!(
                            (switch as usize) < ts.topo.switches(),
                            "fault window names switch {switch} outside the topology"
                        );
                    }
                    FaultKind::TrunkDown { a, b } => {
                        assert!(
                            trunks.contains(&(a, b)),
                            "fault window names trunk {a}-{b} which does not exist"
                        );
                    }
                    _ => {}
                }
            }
            self.inner.switch_faults.store(true, Ordering::Relaxed);
        }
        if plan.has_node_faults() {
            for w in plan.events() {
                if let Some(n) = w.kind.node_scope() {
                    assert!(
                        (n.0 as usize) < self.inner.nodes,
                        "fault window names node {n} outside the fabric"
                    );
                }
            }
            self.inner.node_faults.store(true, Ordering::Relaxed);
        }
        let reroute = plan.reroute();
        for shard in 0..self.inner.sims.len() {
            {
                let mut ls = self.inner.links[shard].lock();
                if ls.faults.is_none() {
                    ls.faults = Some(Box::new(FaultState::new(self.inner.seed, self.inner.nodes)));
                }
            }
            // Edge trace records are global (one logical window), so only
            // shard 0's replica emits them.
            let trace_edges = shard == 0;
            for w in plan.events() {
                let kind = w.kind;
                let open = self.clone();
                self.inner.sims[shard].call_at_as(EventClass::Fabric, w.at, move |sim| {
                    open.inner.links[shard]
                        .lock()
                        .faults
                        .as_mut()
                        .expect("fault state installed")
                        .begin(kind);
                    // A switch or trunk dying takes its parked frames with
                    // it; only the owning shard holds (and flushes) them.
                    open.flush_fault_ports(shard, kind, sim.now());
                    if trace_edges {
                        let sh = open.inner.shared.lock();
                        match kind {
                            FaultKind::LinkDown { node } => {
                                sh.tracer
                                    .record(sim.now(), TracePoint::LinkDown, node.0, None, 1);
                            }
                            FaultKind::Brownout { .. } => {
                                sh.tracer.record(
                                    sim.now(),
                                    TracePoint::LinkDown,
                                    SWITCH_NODE,
                                    None,
                                    2,
                                );
                            }
                            FaultKind::SwitchDown { .. } => {
                                sh.tracer.record(
                                    sim.now(),
                                    TracePoint::LinkDown,
                                    SWITCH_NODE,
                                    None,
                                    3,
                                );
                            }
                            FaultKind::TrunkDown { .. } => {
                                sh.tracer.record(
                                    sim.now(),
                                    TracePoint::LinkDown,
                                    SWITCH_NODE,
                                    None,
                                    4,
                                );
                            }
                            FaultKind::PortDegrade { .. } => {
                                sh.tracer.record(
                                    sim.now(),
                                    TracePoint::LinkDown,
                                    SWITCH_NODE,
                                    None,
                                    5,
                                );
                            }
                            FaultKind::NodeDown { node } => {
                                sh.tracer
                                    .record(sim.now(), TracePoint::LinkDown, node.0, None, 6);
                            }
                            FaultKind::NicReset { node } => {
                                sh.tracer
                                    .record(sim.now(), TracePoint::LinkDown, node.0, None, 7);
                            }
                            _ => {}
                        }
                    }
                    // The victim's provider crashes on its owning shard
                    // only, after the fabric-side window state is in place
                    // (so the hook observes the node as already dead).
                    open.fire_node_hook(sim, shard, kind, true);
                });
                let close = self.clone();
                self.inner.sims[shard].call_at_as(
                    EventClass::Fabric,
                    w.at + w.duration,
                    move |sim| {
                        close.inner.links[shard]
                            .lock()
                            .faults
                            .as_mut()
                            .expect("fault state installed")
                            .end(kind);
                        if trace_edges {
                            let sh = close.inner.shared.lock();
                            match kind {
                                FaultKind::LinkDown { node } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        node.0,
                                        None,
                                        1,
                                    );
                                }
                                FaultKind::Brownout { .. } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        SWITCH_NODE,
                                        None,
                                        2,
                                    );
                                }
                                FaultKind::SwitchDown { .. } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        SWITCH_NODE,
                                        None,
                                        3,
                                    );
                                }
                                FaultKind::TrunkDown { .. } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        SWITCH_NODE,
                                        None,
                                        4,
                                    );
                                }
                                FaultKind::PortDegrade { .. } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        SWITCH_NODE,
                                        None,
                                        5,
                                    );
                                }
                                FaultKind::NodeDown { node } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        node.0,
                                        None,
                                        6,
                                    );
                                }
                                FaultKind::NicReset { node } => {
                                    sh.tracer.record(
                                        sim.now(),
                                        TracePoint::LinkUp,
                                        node.0,
                                        None,
                                        7,
                                    );
                                }
                                _ => {}
                            }
                        }
                        // Reboot: fired after the window state is retired,
                        // so the hook observes a live fabric edge.
                        close.fire_node_hook(sim, shard, kind, false);
                    },
                );
                // Routing reconverges a configurable detection +
                // reconvergence delay after each edge of a topology-
                // affecting window — scheduled at install time on every
                // shard, so all replicas flip identically and before any
                // same-instant traffic event.
                if kind.triggers_reroute() {
                    let apply = self.clone();
                    self.inner.sims[shard].call_at_as(
                        EventClass::Fabric,
                        w.at + reroute.total(),
                        move |_| apply.routing_update(shard, kind, true),
                    );
                    let revert = self.clone();
                    self.inner.sims[shard].call_at_as(
                        EventClass::Fabric,
                        w.at + w.duration + reroute.total(),
                        move |_| revert.routing_update(shard, kind, false),
                    );
                }
            }
        }
    }

    /// Flush every frame parked (`waiting`) or staged-but-unapplied at
    /// ports a just-opened [`SwitchDown`]/[`TrunkDown`] window covers, on
    /// the shard that owns them. Admitted frames — already buffered into
    /// the forwarding pipeline or serializing on the wire — complete their
    /// hop; only queue occupants die. Staged frames are drained in the
    /// resolver's canonical content order so the trace bytes cannot depend
    /// on engine event order.
    ///
    /// [`SwitchDown`]: FaultKind::SwitchDown
    /// [`TrunkDown`]: FaultKind::TrunkDown
    fn flush_fault_ports(&self, shard: usize, kind: FaultKind, now: SimTime) {
        let inner = &self.inner;
        let Some(ts) = inner.topo.as_ref() else {
            return;
        };
        // (switch, port) targets this shard owns: every port of a dead
        // switch, or the two directed ports of a dead trunk.
        let mut targets: Vec<(u32, Option<usize>)> = Vec::new();
        match kind {
            FaultKind::SwitchDown { switch } => {
                if ts.switch_shard[switch as usize] == shard {
                    targets.push((switch, None));
                }
            }
            FaultKind::TrunkDown { a, b } => {
                if ts.switch_shard[a as usize] == shard {
                    targets.push((a, Some(ts.topo.port_to_switch(a, b))));
                }
                if ts.switch_shard[b as usize] == shard {
                    targets.push((b, Some(ts.topo.port_to_switch(b, a))));
                }
            }
            _ => return,
        }
        let mut flushed: Vec<Option<MsgId>> = Vec::new();
        for (sw, only) in targets {
            let mut ports = ts.switches[sw as usize].lock();
            let idxs: Vec<usize> = match only {
                Some(i) => vec![i],
                None => (0..ports.len()).collect(),
            };
            for i in idxs {
                let port = &mut ports[i];
                while let Some(f) = port.waiting.pop_front() {
                    port.stats.fault_dropped += 1;
                    flushed.push(f.msg);
                }
                port.staged.sort_by_key(|(at, f)| {
                    let (vi, seq) = f.msg.map_or((u32::MAX, u64::MAX), |m| (m.vi, m.seq));
                    (*at, f.src.0, f.dst.0, vi, seq, f.payload_bytes)
                });
                for (_, f) in port.staged.drain(..) {
                    port.stats.fault_dropped += 1;
                    flushed.push(f.msg);
                }
                port.paused_since = None;
            }
        }
        if !flushed.is_empty() {
            let mut sh = inner.shared.lock();
            for msg in flushed {
                sh.stats.frames_fault_dropped += 1;
                // aux = 8: frame killed by a switch/trunk fault window.
                sh.tracer
                    .record(now, TracePoint::WireDrop, SWITCH_NODE, msg, 8);
            }
        }
    }

    /// Apply (or revert) one topology-affecting fault window to this
    /// shard's routing replica and recompute the reconverged table. Both
    /// edges bump the epoch, so every convergence — including fail-back —
    /// re-salts ECMP identically on every shard.
    fn routing_update(&self, shard: usize, kind: FaultKind, apply: bool) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let mut rs = ts.routing[shard].lock();
        fn bump<K: PartialEq + Copy>(set: &mut Vec<(K, u32)>, key: K, apply: bool) {
            match set.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) if apply => *n += 1,
                Some((_, n)) => *n = n.checked_sub(1).expect("revert without apply"),
                None if apply => set.push((key, 1)),
                None => panic!("revert without apply"),
            }
        }
        match kind {
            FaultKind::SwitchDown { switch } => bump(&mut rs.switch_down, switch, apply),
            FaultKind::TrunkDown { a, b } => bump(&mut rs.trunk_down, (a, b), apply),
            _ => return,
        }
        rs.epoch += 1;
        let failed_sw: Vec<u32> = rs
            .switch_down
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(s, _)| s)
            .collect();
        let failed_tr: Vec<(u32, u32)> = rs
            .trunk_down
            .iter()
            .filter(|&&(_, n)| n > 0)
            .map(|&(t, _)| t)
            .collect();
        rs.routes = Some(ts.topo.compute_routes(&failed_sw, &failed_tr, rs.epoch));
    }

    /// The ECMP next hop the current routing state picks from `sw` toward
    /// `dst_sw`, or `None` when no surviving path exists. Reads this
    /// shard's replica only under the switch-fault flag; pristine fabrics
    /// take the baseline precomputed table with zero locking.
    fn route_next_hop(&self, shard: usize, sw: u32, dst_sw: u32, key: u64) -> Option<u32> {
        let ts = self.inner.topo.as_ref().expect("multi-switch state");
        if !self.inner.switch_faults.load(Ordering::Relaxed) {
            return Some(ts.topo.next_hop(sw, dst_sw, key));
        }
        let rs = ts.routing[shard].lock();
        match &rs.routes {
            Some(r) => r.next_hop(sw, dst_sw, key),
            None => Some(ts.topo.next_hop(sw, dst_sw, key)),
        }
    }

    /// Invoke the registered crash/reboot hook for a node-scoped window
    /// edge — on the victim's owning shard only, so the host-side wipe
    /// and reboot happen exactly once per logical edge regardless of how
    /// many shard replicas flip their window state.
    fn fire_node_hook(&self, sim: &Sim, shard: usize, kind: FaultKind, open: bool) {
        let Some(node) = kind.node_scope() else {
            return;
        };
        if self.inner.map.assign(node.0) != shard {
            return;
        }
        let hook = self.inner.node_hooks.lock()[node.index()].clone();
        if let Some(h) = hook {
            h(sim, kind, open);
        }
    }

    /// Register `node`'s crash/reboot hook, replacing any previous one.
    /// The attached provider layer calls this at cluster build; the hook
    /// fires on the node's owning shard at every node-scoped window edge
    /// scheduled by [`San::install_faults`] — registration must precede
    /// the window's virtual time.
    pub fn on_node_fault(&self, node: NodeId, hook: NodeFaultHook) {
        self.inner.node_hooks.lock()[node.index()] = Some(hook);
    }

    /// True once a plan containing switch-scoped windows is installed.
    /// The fused fast path de-fuses on this (`DefuseCause::Reroute`): a
    /// reconvergence can move any flow's path mid-message, so only the
    /// hop-by-hop general path may carry traffic.
    pub fn switch_faults_installed(&self) -> bool {
        self.inner.switch_faults.load(Ordering::Relaxed)
    }

    /// True once a plan containing node-scoped windows (node crash / NIC
    /// reset) is installed. The fused fast path de-fuses on this
    /// (`DefuseCause::NodeFault`), and the delivery funnel starts
    /// checking destination liveness at arrival time.
    pub fn node_faults_installed(&self) -> bool {
        self.inner.node_faults.load(Ordering::Relaxed)
    }

    /// Per-node split of [`SanStats::frames_fault_dropped`] attributable
    /// to node-scoped fault windows, indexed by node id.
    pub fn node_fault_dropped(&self) -> Vec<u64> {
        self.inner.shared.lock().node_fault_dropped.clone()
    }

    /// True once a non-empty fault plan has been installed on any shard.
    /// The fused fast path de-fuses whenever this holds: fault windows can
    /// open anywhere inside a message's time envelope, so only the general
    /// hop-by-hop path may carry traffic.
    pub fn faults_installed(&self) -> bool {
        self.inner.links.iter().any(|l| l.lock().faults.is_some())
    }

    /// True when the configured loss model never drops a frame (and hence
    /// never draws from the per-link RNG streams). Lossy links de-fuse:
    /// preserving per-link draw *order* requires the general path.
    pub fn is_lossless(&self) -> bool {
        matches!(self.inner.params.loss, LossModel::None)
    }

    /// True while a wire tracer is attached (trace record order is
    /// byte-relevant, so fused sends are disabled while tracing).
    pub fn tracer_attached(&self) -> bool {
        self.inner.shared.lock().tracer.enabled()
    }

    /// True when `node`'s uplink has no in-progress or queued serialization
    /// at its shard's current virtual time. Call only for nodes owned by
    /// the executing shard.
    pub fn uplink_idle(&self, node: NodeId) -> bool {
        let shard = self.inner.map.assign(node.0);
        let now = self.inner.sims[shard].now();
        self.inner.links[shard].lock().uplinks[node.index()].busy_until <= now
    }

    /// True when `node`'s downlink has no in-progress or queued
    /// serialization at its shard's current virtual time. Call only for
    /// nodes owned by the executing shard.
    pub fn downlink_idle(&self, node: NodeId) -> bool {
        let shard = self.inner.map.assign(node.0);
        let now = self.inner.sims[shard].now();
        self.inner.links[shard].lock().downlinks[node.index()].busy_until <= now
    }

    /// Record that `src` opens a flow toward `dst`. VIA connection setup
    /// calls this for both directions *before* the first control frame is
    /// sent, so by the time any frame can be on the wire the registry
    /// already names every possible writer of each downlink.
    pub fn register_flow(&self, src: NodeId, dst: NodeId) {
        let mut sh = self.inner.shared.lock();
        let w = &mut sh.writers[dst.index()];
        *w = match *w {
            WriterSet::Empty => WriterSet::One(src),
            WriterSet::One(s) if s == src => WriterSet::One(s),
            _ => WriterSet::Many,
        };
    }

    /// True when `src` is the only source ever registered toward `dst`'s
    /// downlink — the precondition for eagerly applying that downlink's
    /// occupancy from the sender (fan-in de-fuses the forward hop).
    pub fn sole_writer(&self, src: NodeId, dst: NodeId) -> bool {
        self.inner.shared.lock().writers[dst.index()] == WriterSet::One(src)
    }

    /// Install a tracer recording wire tx/rx/drop points. Pass
    /// [`Tracer::disabled`] to detach.
    pub fn set_tracer(&self, tracer: Tracer) {
        self.inner.shared.lock().tracer = tracer;
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes
    }

    /// The network parameters this SAN was built with.
    pub fn params(&self) -> NetParams {
        self.inner.params
    }

    /// Largest frame payload the links accept; callers fragment above this.
    pub fn max_frame_payload(&self) -> u32 {
        self.inner.params.link.mtu
    }

    /// Install the receive handler for `node` (the NIC's rx path).
    pub fn attach(&self, node: NodeId, handler: RxHandler) {
        self.inner.shared.lock().handlers[node.index()] = Some(handler);
    }

    /// Inject a frame. Panics if the payload exceeds the link MTU (upper
    /// layers own fragmentation) or if src == dst (no loopback path in the
    /// paper's testbed; VIA loopback short-circuits above the fabric).
    pub fn send(&self, src: NodeId, dst: NodeId, payload_bytes: u32, body: Box<dyn Any + Send>) {
        self.send_inner(src, dst, payload_bytes, body, true, None)
    }

    /// Like [`San::send`], but tagged with the message the frame belongs
    /// to, so wire-level trace records correlate with the upper layers.
    pub fn send_msg(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        msg: Option<MsgId>,
    ) {
        self.send_inner(src, dst, payload_bytes, body, true, msg)
    }

    /// Like [`San::send`], but exempt from loss injection. Connection
    /// managers use this: real VIA implementations run their connection
    /// dialogs over a reliable (kernel-mediated) control channel even when
    /// the data path is unreliable.
    pub fn send_control(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
    ) {
        self.send_inner(src, dst, payload_bytes, body, false, None)
    }

    fn send_inner(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        lossy: bool,
        msg: Option<MsgId>,
    ) {
        assert_ne!(src, dst, "fabric has no loopback path");
        let inner = &self.inner;
        assert!(
            payload_bytes <= inner.params.link.mtu,
            "frame payload {} exceeds link MTU {}",
            payload_bytes,
            inner.params.link.mtu
        );
        if inner.topo.is_some() {
            return self.topo_send(src, dst, payload_bytes, body, lossy, msg);
        }
        let src_shard = inner.map.assign(src.0);
        let sim = &inner.sims[src_shard];
        let now = sim.now();
        // Stage 1, under the source shard's link lock: uplink occupancy,
        // the per-link loss roll, and fault decisions.
        let (at_switch, outcome, no_faults) = {
            let mut ls = inner.links[src_shard].lock();
            let ls = &mut *ls;
            let no_faults = ls.faults.is_none();
            let ser = inner.params.link.serialization(payload_bytes);
            let prop = inner.params.link.propagation;
            let link = &mut ls.uplinks[src.index()];
            let start = link.occupy(now, ser);
            // Cut-through: the switch starts forwarding once the header is
            // in (the egress link still pays a full serialization, so the
            // unloaded path costs one serialization overall). Store-and-
            // forward: the whole frame must land first.
            let mut at_switch = if inner.params.switch.cut_through {
                start + prop + inner.params.switch.latency
            } else {
                start + ser + prop + inner.params.switch.latency
            };
            let mut outcome = if lossy && link.loss.roll(&mut link.rng, inner.params.loss) {
                HopOutcome::LossDrop
            } else {
                HopOutcome::Pass
            };
            if outcome == HopOutcome::Pass {
                if let Some(f) = ls.faults.as_mut() {
                    match f.on_uplink(src, lossy) {
                        HopFault::Pass { extra } => at_switch += extra,
                        HopFault::Down => outcome = HopOutcome::FaultDown,
                        HopFault::Corrupt => outcome = HopOutcome::Corrupt,
                        HopFault::Lost => outcome = HopOutcome::FaultLost,
                        HopFault::NodeDead => outcome = HopOutcome::NodeDead,
                    }
                }
            }
            (at_switch, outcome, no_faults)
        };
        let dst_shard = inner.map.assign(dst.0);
        // Stage 2, under the shared lock: counters and trace records. The
        // switch-egress fold decision reads the writer registry and tracer
        // state under the same lock acquisition.
        let fold_forward = {
            let mut sh = self.inner.shared.lock();
            let fold = outcome == HopOutcome::Pass
                && dst_shard == src_shard
                && no_faults
                && matches!(inner.params.loss, LossModel::None)
                && self.fuse_on()
                && !sh.tracer.enabled()
                && sh.writers[dst.index()] == WriterSet::One(src);
            sh.stats.frames_sent += 1;
            sh.tracer
                .record(now, TracePoint::WireTx, src.0, msg, payload_bytes as u64);
            match outcome {
                HopOutcome::Pass => {}
                HopOutcome::LossDrop => {
                    sh.stats.frames_dropped += 1;
                    // aux = 1: dropped on the source uplink.
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 1);
                }
                HopOutcome::FaultDown => {
                    sh.stats.frames_faulted += 1;
                    // aux = 3: the source's link was down.
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 3);
                }
                HopOutcome::Corrupt => {
                    sh.stats.frames_corrupted += 1;
                    sh.tracer.record(
                        now,
                        TracePoint::FrameCorrupt,
                        src.0,
                        msg,
                        payload_bytes as u64,
                    );
                }
                HopOutcome::FaultLost => {
                    sh.stats.frames_dropped += 1;
                    // aux = 5: degradation-burst loss on the uplink.
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 5);
                }
                HopOutcome::NodeDead => {
                    sh.stats.frames_fault_dropped += 1;
                    sh.node_fault_dropped[src.index()] += 1;
                    // aux = 10: the source host is crashed.
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 10);
                }
            }
            fold
        };
        if outcome != HopOutcome::Pass {
            return;
        }
        if fold_forward {
            // Switch-egress fold: with a lossless, fault-free fabric the
            // forward stage is a pure function of the downlink occupancy,
            // and with `src` the sole registered writer of `dst`'s downlink
            // its applications arrive in non-decreasing `at_switch` order
            // (they all chain through `src`'s uplink). Apply the occupancy
            // now and schedule the arrival directly, eliding one Fabric
            // event — the logical ledger stays exact via `note_elided`.
            let arrive = {
                let mut ls = inner.links[src_shard].lock();
                let link = &mut ls.downlinks[dst.index()];
                let ser = inner.params.link.serialization(payload_bytes);
                let start = link.occupy(at_switch, ser);
                start + ser + inner.params.link.propagation
            };
            sim.note_elided(EventClass::Fabric, 1);
            self.schedule_delivery(sim, src, dst, payload_bytes, body, msg, arrive);
            return;
        }
        // Stage 3: hand off to the switch-egress stage on the destination's
        // shard. Same shard: a plain local event — the exact serial path.
        // Different shard: a cross-shard channel send, legal because
        // `at_switch - now >= min_cross_latency >= lookahead`.
        let san = self.clone();
        let deliver = move |_: &Sim| san.forward(src, dst, payload_bytes, body, lossy, msg);
        if dst_shard == src_shard {
            sim.call_at_as(EventClass::Fabric, at_switch, deliver);
        } else {
            inner.senders[src_shard].send(dst_shard, at_switch, EventClass::Fabric, deliver);
        }
    }

    /// Switch egress stage: occupy the destination downlink, then deliver.
    fn forward(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        lossy: bool,
        msg: Option<MsgId>,
    ) {
        let inner = &self.inner;
        let dst_shard = inner.map.assign(dst.0);
        let sim = &inner.sims[dst_shard];
        let now = sim.now();
        let (arrive_nic, outcome) = {
            let mut ls = inner.links[dst_shard].lock();
            let ls = &mut *ls;
            let ser = inner.params.link.serialization(payload_bytes);
            let prop = inner.params.link.propagation;
            let link = &mut ls.downlinks[dst.index()];
            let start = link.occupy(now, ser);
            let mut arrive = start + ser + prop;
            let mut outcome = if lossy && link.loss.roll(&mut link.rng, inner.params.loss) {
                HopOutcome::LossDrop
            } else {
                HopOutcome::Pass
            };
            if outcome == HopOutcome::Pass {
                if let Some(f) = ls.faults.as_mut() {
                    match f.on_downlink(dst, lossy) {
                        HopFault::Pass { extra } => arrive += extra,
                        HopFault::Down => outcome = HopOutcome::FaultDown,
                        // Corruption is rolled once per frame, at ingress.
                        HopFault::Corrupt => unreachable!("corruption rolls at ingress"),
                        HopFault::Lost => outcome = HopOutcome::FaultLost,
                        HopFault::NodeDead => outcome = HopOutcome::NodeDead,
                    }
                }
            }
            (arrive, outcome)
        };
        match outcome {
            HopOutcome::Pass => {}
            HopOutcome::LossDrop => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_dropped += 1;
                // aux = 2: dropped on the destination downlink.
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, msg, 2);
                return;
            }
            HopOutcome::FaultDown => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_faulted += 1;
                // aux = 4: the destination's link was down.
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, msg, 4);
                return;
            }
            HopOutcome::Corrupt => unreachable!("corruption rolls at ingress"),
            HopOutcome::FaultLost => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_dropped += 1;
                // aux = 6: degradation-burst loss on the downlink.
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, msg, 6);
                return;
            }
            HopOutcome::NodeDead => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_fault_dropped += 1;
                sh.node_fault_dropped[dst.index()] += 1;
                // aux = 10: the destination host is crashed.
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, msg, 10);
                return;
            }
        }
        self.schedule_delivery(sim, src, dst, payload_bytes, body, msg, arrive_nic);
    }

    /// Final hop: schedule the NIC arrival event at `arrive` on the
    /// destination's engine. Shared by the general forward stage and the
    /// fused sender (which computes `arrive` eagerly).
    #[allow(clippy::too_many_arguments)]
    fn schedule_delivery(
        &self,
        sim: &Sim,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        msg: Option<MsgId>,
        arrive: SimTime,
    ) {
        let san = self.clone();
        sim.call_at_as(EventClass::Fabric, arrive, move |sim| {
            // Frames already past the downlink when a node-scoped window
            // opened still arrive during it: the dead NIC sinks them.
            // Liveness at the arrival instant is a pure function of
            // virtual time (window edges flip every shard's replica), so
            // this decision is shard-count-invariant.
            if san.inner.node_faults.load(Ordering::Relaxed) {
                let dst_shard = san.inner.map.assign(dst.0);
                let dead = san.inner.links[dst_shard]
                    .lock()
                    .faults
                    .as_ref()
                    .is_some_and(|fs| fs.node_dead(dst));
                if dead {
                    let mut sh = san.inner.shared.lock();
                    sh.stats.frames_fault_dropped += 1;
                    sh.node_fault_dropped[dst.index()] += 1;
                    // aux = 10: the destination host is crashed.
                    sh.tracer
                        .record(sim.now(), TracePoint::WireDrop, dst.0, msg, 10);
                    return;
                }
            }
            let handler = {
                let mut sh = san.inner.shared.lock();
                sh.stats.frames_delivered += 1;
                sh.stats.bytes_delivered += payload_bytes as u64;
                sh.tracer.record(
                    sim.now(),
                    TracePoint::WireRx,
                    dst.0,
                    msg,
                    payload_bytes as u64,
                );
                sh.handlers[dst.index()].clone()
            };
            let handler = handler.unwrap_or_else(|| {
                panic!("frame delivered to node {dst} with no handler attached")
            });
            handler(
                sim,
                Delivery {
                    src,
                    dst,
                    payload_bytes,
                    body,
                },
            );
        });
    }

    /// Multi-switch injection stage: uplink occupancy, the per-link loss
    /// roll, and fault decisions — the legacy stage 1/2, except the frame
    /// lands at the *edge switch* (store-and-forward: multi-hop fabrics
    /// need the whole frame before a routing decision exists, so the
    /// single-switch cut-through shortcut does not apply) and the switch
    /// traversal latency is paid per hop at ingress, not here.
    fn topo_send(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        lossy: bool,
        msg: Option<MsgId>,
    ) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let src_shard = inner.map.assign(src.0);
        let sim = &inner.sims[src_shard];
        let now = sim.now();
        let (at_edge, outcome) = {
            let mut ls = inner.links[src_shard].lock();
            let ls = &mut *ls;
            let ser = inner.params.link.serialization(payload_bytes);
            let link = &mut ls.uplinks[src.index()];
            let start = link.occupy(now, ser);
            let mut at_edge = start + ser + inner.params.link.propagation;
            let mut outcome = if lossy && link.loss.roll(&mut link.rng, inner.params.loss) {
                HopOutcome::LossDrop
            } else {
                HopOutcome::Pass
            };
            if outcome == HopOutcome::Pass {
                if let Some(f) = ls.faults.as_mut() {
                    match f.on_uplink(src, lossy) {
                        HopFault::Pass { extra } => at_edge += extra,
                        HopFault::Down => outcome = HopOutcome::FaultDown,
                        HopFault::Corrupt => outcome = HopOutcome::Corrupt,
                        HopFault::Lost => outcome = HopOutcome::FaultLost,
                        HopFault::NodeDead => outcome = HopOutcome::NodeDead,
                    }
                }
            }
            (at_edge, outcome)
        };
        {
            let mut sh = inner.shared.lock();
            sh.stats.frames_sent += 1;
            sh.tracer
                .record(now, TracePoint::WireTx, src.0, msg, payload_bytes as u64);
            match outcome {
                HopOutcome::Pass => {}
                HopOutcome::LossDrop => {
                    sh.stats.frames_dropped += 1;
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 1);
                }
                HopOutcome::FaultDown => {
                    sh.stats.frames_faulted += 1;
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 3);
                }
                HopOutcome::Corrupt => {
                    sh.stats.frames_corrupted += 1;
                    sh.tracer.record(
                        now,
                        TracePoint::FrameCorrupt,
                        src.0,
                        msg,
                        payload_bytes as u64,
                    );
                }
                HopOutcome::FaultLost => {
                    sh.stats.frames_dropped += 1;
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 5);
                }
                HopOutcome::NodeDead => {
                    sh.stats.frames_fault_dropped += 1;
                    sh.node_fault_dropped[src.index()] += 1;
                    // aux = 10: the source host is crashed.
                    sh.tracer.record(now, TracePoint::WireDrop, src.0, msg, 10);
                }
            }
        }
        if outcome != HopOutcome::Pass {
            return;
        }
        // The edge-ingress event is always shard-local: every node shares
        // its edge switch's shard by construction.
        let edge = ts.topo.edge_of(src.0);
        let san = self.clone();
        let frame = TopoFrame {
            src,
            dst,
            payload_bytes,
            body,
            msg,
            lossy,
        };
        sim.call_at_as(EventClass::Fabric, at_edge, move |_| {
            san.topo_ingress(edge, frame)
        });
    }

    /// A whole frame has landed at switch `sw`: pick the output port
    /// (deterministic ECMP for trunk hops, the host port when this is the
    /// destination's edge) and stage it for the port's next resolver tick.
    ///
    /// The admit/pause/drop decision deliberately does NOT happen here.
    /// Same-instant arrivals reach this event in engine insertion order —
    /// which the shard map reshuffles — so deciding inline would make the
    /// outcome a function of the shard count. Staging defers the decision
    /// to [`San::topo_resolve`] one nanosecond later, where the whole
    /// same-instant batch is ordered by frame content.
    fn topo_ingress(&self, sw: u32, f: TopoFrame) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let shard = ts.switch_shard[sw as usize];
        let sim = &inner.sims[shard];
        let now = sim.now();
        let switch_faults = inner.switch_faults.load(Ordering::Relaxed);
        if switch_faults {
            // A dead switch accepts nothing: frames still converging on it
            // (sent before routing detected the failure) die here, with no
            // single output port to blame.
            let down = inner.links[shard]
                .lock()
                .faults
                .as_ref()
                .is_some_and(|fs| fs.switch_down(sw));
            if down {
                let mut sh = inner.shared.lock();
                sh.stats.frames_fault_dropped += 1;
                // aux = 8: frame killed by a switch/trunk fault window.
                sh.tracer
                    .record(now, TracePoint::WireDrop, SWITCH_NODE, f.msg, 8);
                return;
            }
        }
        let dst_sw = ts.topo.edge_of(f.dst.0);
        let port_idx = if sw == dst_sw {
            ts.topo.port_to_node(sw, f.dst.0)
        } else {
            let key = Topology::flow_key(f.src, f.dst, f.msg.as_ref());
            let Some(next) = self.route_next_hop(shard, sw, dst_sw, key) else {
                // The surviving fabric has no path: an honest fault drop
                // rather than a stall (the fabric may be partitioned).
                let mut sh = inner.shared.lock();
                sh.stats.frames_fault_dropped += 1;
                sh.tracer
                    .record(now, TracePoint::WireDrop, SWITCH_NODE, f.msg, 8);
                return;
            };
            if switch_faults {
                // Routing may still point over a downed trunk during the
                // detection window; the port refuses the frame and owns it
                // in its counters.
                let cut = inner.links[shard]
                    .lock()
                    .faults
                    .as_ref()
                    .is_some_and(|fs| fs.trunk_down(sw, next));
                if cut {
                    let pi = ts.topo.port_to_switch(sw, next);
                    ts.switches[sw as usize].lock()[pi].stats.fault_dropped += 1;
                    let mut sh = inner.shared.lock();
                    sh.stats.frames_fault_dropped += 1;
                    sh.tracer
                        .record(now, TracePoint::WireDrop, SWITCH_NODE, f.msg, 8);
                    return;
                }
            }
            ts.topo.port_to_switch(sw, next)
        };
        let need_resolver = {
            let mut ports = ts.switches[sw as usize].lock();
            let port = &mut ports[port_idx];
            port.staged.push((now, f));
            port.schedule_resolver(now)
        };
        if need_resolver {
            let san = self.clone();
            sim.call_at_as(EventClass::Fabric, now + RESOLVE_TICK, move |_| {
                san.topo_resolve(sw, port_idx)
            });
        }
    }

    /// Apply everything staged at port `(sw, port_idx)` strictly before
    /// `now`, in canonical order: slot frees first, then paused frames
    /// refill freed slots FIFO, then the arrival batch sorted by frame
    /// content — (src, dst, VI, seq, bytes), a total order because two
    /// frames of one flow can never land at one port at one instant (the
    /// upstream wire serialized them apart). The outcome is a pure
    /// function of virtual time, port state and frame content — never of
    /// engine event order, so it cannot depend on the shard count.
    fn topo_resolve(&self, sw: u32, port_idx: usize) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let shard = ts.switch_shard[sw as usize];
        let sim = &inner.sims[shard];
        let now = sim.now();
        let limits = ts.topo.limits();
        // PortDegrade stretches the switch traversal of every admission at
        // this switch. Queried from the link-fault lock strictly before
        // the ports lock (the shared-stats lock is likewise never taken
        // inside it) — lock order is links → ports → shared, always.
        let degrade_extra = if inner.switch_faults.load(Ordering::Relaxed) {
            inner.links[shard]
                .lock()
                .faults
                .as_ref()
                .map_or(SimDuration::ZERO, |fs| fs.port_degrade_extra(sw))
        } else {
            SimDuration::ZERO
        };
        let mut admit: Vec<TopoFrame> = Vec::new();
        let mut dropped: Vec<Option<MsgId>> = Vec::new();
        let mut stormed: Vec<Option<MsgId>> = Vec::new();
        {
            let mut ports = ts.switches[sw as usize].lock();
            let port = &mut ports[port_idx];
            // 1. Slot frees: departures staged strictly before this tick.
            let freed = port.freed.iter().filter(|&&t| t < now).count() as u32;
            port.freed.retain(|&t| t >= now);
            debug_assert!(port.queued >= freed, "depart without an admitted frame");
            port.queued -= freed;
            // 2. Paused frames refill freed slots first, strict FIFO.
            // `q` tracks slots this resolver has already committed — the
            // admissions themselves happen in `topo_transmit` below, after
            // the lock drops (the shared-stats lock is never taken inside
            // the switch lock).
            let mut q = port.queued;
            while q < limits.capacity {
                match port.waiting.pop_front() {
                    Some(f) => {
                        q += 1;
                        port.last_dst = f.dst.0;
                        admit.push(f);
                    }
                    None => break,
                }
            }
            // 3. The same-instant arrival batch, in content order.
            let mut batch: Vec<(SimTime, TopoFrame)> = Vec::new();
            let mut i = 0;
            while i < port.staged.len() {
                if port.staged[i].0 < now {
                    batch.push(port.staged.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            batch.sort_by_key(|(at, f)| {
                let (vi, seq) = f.msg.map_or((u32::MAX, u64::MAX), |m| (m.vi, m.seq));
                (*at, f.src.0, f.dst.0, vi, seq, f.payload_bytes)
            });
            for (_, f) in batch {
                // `q < capacity` implies the pause queue is empty (frees
                // refill from the queue first, above), but the explicit
                // check keeps FIFO order visibly non-negotiable.
                if q < limits.capacity && port.waiting.is_empty() {
                    q += 1;
                    port.last_dst = f.dst.0;
                    admit.push(f);
                } else if (port.waiting.len() as u32) < limits.pause_depth {
                    port.stats.pauses += 1;
                    if port.last_dst != f.dst.0 {
                        // Parked behind traffic bound for a different final
                        // destination: a head-of-line blocking victim.
                        port.stats.hol_blocked += 1;
                    }
                    port.waiting.push_back(f);
                    port.stats.pause_highwater =
                        port.stats.pause_highwater.max(port.waiting.len() as u32);
                } else {
                    port.stats.drops += 1;
                    dropped.push(f.msg);
                }
            }
            // 4. Pause-storm watchdog: track the consecutive time this
            // port has held frames paused; past `max_pause`, trip — drain
            // the pause queue into honest drops so the HOL cascade breaks
            // instead of propagating upstream forever. Streaks are
            // observed at resolver instants, which a non-empty pause
            // queue guarantees recur (full buffer ⇒ frame serializing ⇒
            // depart stages a resolver), so the bound holds within one
            // serialization granule.
            if port.waiting.is_empty() {
                if let Some(since) = port.paused_since.take() {
                    port.stats.max_pause_ns = port.stats.max_pause_ns.max((now - since).as_nanos());
                }
            } else {
                let since = *port.paused_since.get_or_insert(now);
                let streak = now - since;
                port.stats.max_pause_ns = port.stats.max_pause_ns.max(streak.as_nanos());
                if let Some(bound) = limits.max_pause {
                    if streak >= bound {
                        port.stats.storm_trips += 1;
                        while let Some(f) = port.waiting.pop_front() {
                            port.stats.storm_dropped += 1;
                            stormed.push(f.msg);
                        }
                        port.paused_since = None;
                    }
                }
            }
        }
        // Admitted frames pay the switch traversal before occupying the
        // output wire, chained in the canonical order fixed above.
        for f in admit {
            self.topo_transmit(
                sw,
                port_idx,
                f,
                now + inner.params.switch.latency + degrade_extra,
            );
        }
        if !dropped.is_empty() || !stormed.is_empty() {
            let mut sh = inner.shared.lock();
            for msg in dropped {
                sh.stats.frames_port_dropped += 1;
                // aux = 7: switch output-port buffer overflow.
                sh.tracer
                    .record(now, TracePoint::WireDrop, SWITCH_NODE, msg, 7);
            }
            for msg in stormed {
                sh.stats.frames_port_dropped += 1;
                // aux = 9: pause-storm watchdog trip drained this frame.
                sh.tracer
                    .record(now, TracePoint::WireDrop, SWITCH_NODE, msg, 9);
            }
        }
    }

    /// Put an admitted frame on switch `sw`'s output port `port_idx`: chain
    /// the port's wire occupancy from `t_ready`, schedule the local depart
    /// event (slot free + waiter pop), and schedule the frame's onward
    /// arrival — next-switch ingress for trunks (the only cross-shard hop
    /// in a topology SAN), NIC delivery for host ports.
    fn topo_transmit(&self, sw: u32, port_idx: usize, f: TopoFrame, t_ready: SimTime) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let shard = ts.switch_shard[sw as usize];
        let sim = &inner.sims[shard];
        let spec = ts.topo.ports(sw)[port_idx];
        let link = spec.trunk.unwrap_or(inner.params.link);
        let ser = link.serialization(f.payload_bytes);
        let depart = {
            let mut ports = ts.switches[sw as usize].lock();
            let port = &mut ports[port_idx];
            port.queued += 1;
            port.stats.admitted += 1;
            port.stats.highwater = port.stats.highwater.max(port.queued);
            port.last_dst = f.dst.0;
            let start = port.busy_until.max(t_ready);
            port.busy_until = start + ser;
            start + ser
        };
        let san = self.clone();
        sim.call_at_as(EventClass::Fabric, depart, move |_| {
            san.topo_depart(sw, port_idx)
        });
        match spec.target {
            PortTarget::Switch(next) => {
                // Scheduling from the admission event keeps every
                // cross-shard delay at `switch latency + serialization +
                // propagation` — strictly above the sharded lookahead
                // (`switch latency + min trunk propagation`).
                let arrive = depart + link.propagation;
                let dst_shard = ts.switch_shard[next as usize];
                let san = self.clone();
                let go = move |_: &Sim| san.topo_ingress(next, f);
                if dst_shard == shard {
                    sim.call_at_as(EventClass::Fabric, arrive, go);
                } else {
                    inner.senders[shard].send(dst_shard, arrive, EventClass::Fabric, go);
                }
            }
            PortTarget::Node(node) => {
                debug_assert_eq!(node, f.dst.0, "host port target mismatch");
                self.topo_deliver(f, depart, shard);
            }
        }
    }

    /// A frame finished serializing out of a port: stage the freed buffer
    /// slot for the next resolver tick, which applies it and — if paused
    /// frames are parked — admits the head of the pause queue. A popped
    /// frame re-pays the switch traversal (the forwarding pipeline
    /// restarts for parked frames), preserving the per-hop delay floor
    /// the sharded lookahead relies on. The free is staged rather than
    /// applied inline for the same reason arrivals are (see
    /// [`San::topo_resolve`]): a depart and an arrival at one instant
    /// must not race in engine order.
    fn topo_depart(&self, sw: u32, port_idx: usize) {
        let inner = &self.inner;
        let ts = inner.topo.as_ref().expect("multi-switch state");
        let shard = ts.switch_shard[sw as usize];
        let sim = &inner.sims[shard];
        let now = sim.now();
        let need_resolver = {
            let mut ports = ts.switches[sw as usize].lock();
            let port = &mut ports[port_idx];
            port.freed.push(now);
            port.schedule_resolver(now)
        };
        if need_resolver {
            let san = self.clone();
            sim.call_at_as(EventClass::Fabric, now + RESOLVE_TICK, move |_| {
                san.topo_resolve(sw, port_idx)
            });
        }
    }

    /// Final hop of the multi-switch path: the host port's egress *is* the
    /// destination downlink. Roll the downlink loss and fault decisions in
    /// port-admission order (this shard's event order — the downlink RNG
    /// stream stays a pure function of frame order on this link), then
    /// schedule the NIC arrival.
    fn topo_deliver(&self, f: TopoFrame, depart: SimTime, shard: usize) {
        let inner = &self.inner;
        let sim = &inner.sims[shard];
        let now = sim.now();
        let dst = f.dst;
        let (arrive, outcome) = {
            let mut ls = inner.links[shard].lock();
            let ls = &mut *ls;
            let link = &mut ls.downlinks[dst.index()];
            let mut arrive = depart + inner.params.link.propagation;
            let mut outcome = if f.lossy && link.loss.roll(&mut link.rng, inner.params.loss) {
                HopOutcome::LossDrop
            } else {
                HopOutcome::Pass
            };
            if outcome == HopOutcome::Pass {
                if let Some(fs) = ls.faults.as_mut() {
                    match fs.on_downlink(dst, f.lossy) {
                        HopFault::Pass { extra } => arrive += extra,
                        HopFault::Down => outcome = HopOutcome::FaultDown,
                        HopFault::Corrupt => unreachable!("corruption rolls at ingress"),
                        HopFault::Lost => outcome = HopOutcome::FaultLost,
                        HopFault::NodeDead => outcome = HopOutcome::NodeDead,
                    }
                }
            }
            (arrive, outcome)
        };
        match outcome {
            HopOutcome::Pass => {}
            HopOutcome::LossDrop => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_dropped += 1;
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, f.msg, 2);
                return;
            }
            HopOutcome::FaultDown => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_faulted += 1;
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, f.msg, 4);
                return;
            }
            HopOutcome::Corrupt => unreachable!("corruption rolls at ingress"),
            HopOutcome::FaultLost => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_dropped += 1;
                sh.tracer.record(now, TracePoint::WireDrop, dst.0, f.msg, 6);
                return;
            }
            HopOutcome::NodeDead => {
                let mut sh = inner.shared.lock();
                sh.stats.frames_fault_dropped += 1;
                sh.node_fault_dropped[dst.index()] += 1;
                // aux = 10: the destination host is crashed.
                sh.tracer
                    .record(now, TracePoint::WireDrop, dst.0, f.msg, 10);
                return;
            }
        }
        self.schedule_delivery(sim, f.src, dst, f.payload_bytes, f.body, f.msg, arrive);
    }

    /// True for single-switch SANs (whether built plainly or through a
    /// degenerate [`Topology::star`]). Multi-switch fabrics route hop by
    /// hop, so the fused fast path — whose arithmetic assumes the one-
    /// switch traversal — must de-fuse when this is false.
    pub fn is_single_switch(&self) -> bool {
        self.inner.topo.is_none()
    }

    /// The topology this SAN routes over; `None` for single-switch SANs
    /// (including degenerate stars, which keep no routing state).
    pub fn topology(&self) -> Option<&Topology> {
        self.inner.topo.as_ref().map(|t| &t.topo)
    }

    /// Snapshot of every switch output port's counters, in `(switch, port)`
    /// order. Empty for single-switch SANs.
    pub fn port_stats(&self) -> Vec<PortSnapshot> {
        let Some(ts) = &self.inner.topo else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for s in 0..ts.topo.switches() as u32 {
            let ports = ts.switches[s as usize].lock();
            for (i, p) in ports.iter().enumerate() {
                out.push(PortSnapshot {
                    switch: s,
                    target: ts.topo.ports(s)[i].target,
                    stats: p.stats,
                });
            }
        }
        out
    }

    /// Fused-path injection: put a frame on the wire exactly as
    /// [`San::send_msg`] executed at virtual time `at` (the precomputed
    /// wire time, `at >= now`) would have. Callers must have verified the
    /// fabric-side fuse guard first — lossless loss model and no fault
    /// plan — so the frame cannot drop and no RNG stream is consumed,
    /// which is what makes computing the occupancy ahead of time exact.
    ///
    /// Uplink occupancy chains from `max(busy_until, at)`, identical to
    /// the general stage running at `at`: the caller's NIC ring serializes
    /// all sends of the source node, so no other frame can claim this
    /// uplink between now and `at`.
    ///
    /// When the destination is on the same engine shard *and* the source
    /// is provably the sole writer of the destination downlink
    /// ([`San::sole_writer`]), the switch-egress hop is folded in eagerly:
    /// downlink occupancy is applied now (sole-writer frames have strictly
    /// monotone switch-arrival times, so eager application preserves the
    /// general path's FIFO chaining bit-exactly) and the NIC arrival event
    /// is scheduled directly; the elided Fabric hop is credited to the
    /// engine's logical ledger here. Returns `true` in that case and
    /// `false` when the general forward event had to be scheduled.
    pub fn send_msg_at(
        &self,
        src: NodeId,
        dst: NodeId,
        payload_bytes: u32,
        body: Box<dyn Any + Send>,
        msg: Option<MsgId>,
        at: SimTime,
    ) -> bool {
        assert_ne!(src, dst, "fabric has no loopback path");
        let inner = &self.inner;
        assert!(
            payload_bytes <= inner.params.link.mtu,
            "frame payload {} exceeds link MTU {}",
            payload_bytes,
            inner.params.link.mtu
        );
        debug_assert!(
            self.is_lossless() && !self.faults_installed(),
            "fused injection requires a lossless, fault-free fabric"
        );
        debug_assert!(
            self.is_single_switch(),
            "fused injection requires the single-switch fabric"
        );
        let src_shard = inner.map.assign(src.0);
        let sim = &inner.sims[src_shard];
        debug_assert!(at >= sim.now(), "fused wire time lies in the past");
        let ser = inner.params.link.serialization(payload_bytes);
        let prop = inner.params.link.propagation;
        let at_switch = {
            let mut ls = inner.links[src_shard].lock();
            let link = &mut ls.uplinks[src.index()];
            let start = link.occupy(at, ser);
            if inner.params.switch.cut_through {
                start + prop + inner.params.switch.latency
            } else {
                start + ser + prop + inner.params.switch.latency
            }
        };
        {
            let mut sh = inner.shared.lock();
            sh.stats.frames_sent += 1;
            sh.tracer
                .record(at, TracePoint::WireTx, src.0, msg, payload_bytes as u64);
        }
        let dst_shard = inner.map.assign(dst.0);
        if dst_shard == src_shard && self.sole_writer(src, dst) {
            // Fold the switch-egress hop: apply the downlink occupancy
            // eagerly and schedule the arrival directly.
            let arrive = {
                let mut ls = inner.links[src_shard].lock();
                let link = &mut ls.downlinks[dst.index()];
                let start = link.occupy(at_switch, ser);
                start + ser + prop
            };
            sim.note_elided(EventClass::Fabric, 1);
            self.schedule_delivery(sim, src, dst, payload_bytes, body, msg, arrive);
            true
        } else {
            let san = self.clone();
            let deliver = move |_: &Sim| san.forward(src, dst, payload_bytes, body, true, msg);
            if dst_shard == src_shard {
                sim.call_at_as(EventClass::Fabric, at_switch, deliver);
            } else {
                inner.senders[src_shard].send(dst_shard, at_switch, EventClass::Fabric, deliver);
            }
            false
        }
    }

    /// Unloaded one-way frame latency for a given payload (no queueing):
    /// one serialization on a cut-through path, two when the switch stores
    /// and forwards, plus two propagations and the switch traversal.
    pub fn unloaded_latency(&self, payload_bytes: u32) -> SimDuration {
        let p = &self.inner.params;
        let ser = p.link.serialization(payload_bytes);
        let sers = if p.switch.cut_through { ser } else { ser * 2 };
        sers + p.link.propagation * 2 + p.switch.latency
    }

    /// Snapshot of traffic counters.
    pub fn stats(&self) -> SanStats {
        self.inner.shared.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    fn collect_arrivals(san: &San, node: NodeId) -> Arc<Mutex<Vec<(SimTime, u32)>>> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        san.attach(
            node,
            Arc::new(move |sim, d| {
                log2.lock().push((sim.now(), d.payload_bytes));
            }),
        );
        log
    }

    #[test]
    fn single_frame_latency_matches_model() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let expected = san.unloaded_latency(1024);
        assert_eq!(log[0].0, SimTime::ZERO + expected);
    }

    #[test]
    fn back_to_back_frames_queue_on_uplink() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::gigabit_ethernet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        for _ in 0..3 {
            san.send(NodeId(0), NodeId(1), 1500, Box::new(()));
        }
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 3);
        // Arrivals are spaced by exactly one serialization time (pipelined).
        let ser = NetParams::gigabit_ethernet().link.serialization(1500);
        let gap1 = log[1].0 - log[0].0;
        let gap2 = log[2].0 - log[1].0;
        assert_eq!(gap1, ser);
        assert_eq!(gap2, ser);
    }

    #[test]
    fn two_senders_contend_on_shared_downlink() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 1);
        let log = collect_arrivals(&san, NodeId(2));
        san.send(NodeId(0), NodeId(2), 8192, Box::new(()));
        san.send(NodeId(1), NodeId(2), 8192, Box::new(()));
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 2);
        // The second frame had to wait for the first on node 2's downlink.
        let ser = NetParams::myrinet().link.serialization(8192);
        assert_eq!(log[1].0 - log[0].0, ser);
    }

    #[test]
    fn distinct_destinations_do_not_contend_at_egress() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 1);
        let log1 = collect_arrivals(&san, NodeId(1));
        let log2 = collect_arrivals(&san, NodeId(2));
        // One sender, two destinations: uplink is shared, downlinks are not.
        san.send(NodeId(0), NodeId(1), 4096, Box::new(()));
        san.send(NodeId(0), NodeId(2), 4096, Box::new(()));
        sim.run_to_completion();
        let t1 = log1.lock()[0].0;
        let t2 = log2.lock()[0].0;
        // Second frame trails by one uplink serialization only.
        let ser = NetParams::myrinet().link.serialization(4096);
        assert_eq!(t2 - t1, ser);
    }

    #[test]
    #[should_panic(expected = "exceeds link MTU")]
    fn oversized_frame_panics() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::gigabit_ethernet(), 2, 1);
        san.send(NodeId(0), NodeId(1), 9000, Box::new(()));
    }

    #[test]
    #[should_panic(expected = "no loopback")]
    fn loopback_panics() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        san.send(NodeId(0), NodeId(0), 64, Box::new(()));
    }

    #[test]
    fn loss_injection_drops_frames() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.5), 2, 99);
        let log = collect_arrivals(&san, NodeId(1));
        for _ in 0..200 {
            san.send(NodeId(0), NodeId(1), 64, Box::new(()));
        }
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 200);
        let delivered = log.lock().len() as u64;
        assert_eq!(stats.frames_delivered, delivered);
        // p(survive both hops) = 0.25: expect ~50 of 200 through.
        assert!(delivered > 20 && delivered < 120, "delivered={delivered}");
        assert!(stats.frames_dropped > 0);
    }

    #[test]
    fn lossless_network_delivers_everything() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::clan(), 4, 7);
        let log = collect_arrivals(&san, NodeId(3));
        for src in 0..3u32 {
            for _ in 0..10 {
                san.send(NodeId(src), NodeId(3), 256, Box::new(()));
            }
        }
        sim.run_to_completion();
        assert_eq!(log.lock().len(), 30);
        let stats = san.stats();
        assert_eq!(stats.frames_delivered, 30);
        assert_eq!(stats.bytes_delivered, 30 * 256);
        assert_eq!(stats.frames_dropped, 0);
    }

    #[test]
    fn burst_loss_drops_in_clusters() {
        // Compare the longest run of consecutive drops under burst loss vs
        // Bernoulli loss at the same mean rate (~9%).
        fn longest_drop_run(params: NetParams, seed: u64) -> (usize, u64) {
            let sim = Sim::new();
            let san = San::new(sim.clone(), params, 2, seed);
            let got = Arc::new(Mutex::new(Vec::new()));
            let g2 = Arc::clone(&got);
            san.attach(
                NodeId(1),
                Arc::new(move |_, d| {
                    let id = *d.body.downcast::<u64>().unwrap();
                    g2.lock().push(id);
                }),
            );
            for i in 0..2_000u64 {
                san.send(NodeId(0), NodeId(1), 64, Box::new(i));
            }
            sim.run_to_completion();
            let got = got.lock();
            let delivered: std::collections::HashSet<u64> = got.iter().copied().collect();
            let mut longest = 0;
            let mut run = 0;
            for i in 0..2_000u64 {
                if delivered.contains(&i) {
                    run = 0;
                } else {
                    run += 1;
                    longest = longest.max(run);
                }
            }
            (longest, san.stats().frames_dropped)
        }
        let burst = NetParams::myrinet().with_burst_loss(0.005, 0.10, 0.0, 0.95);
        let (burst_run, burst_drops) = longest_drop_run(burst, 5);
        let bern = NetParams::myrinet().with_loss(burst.loss.mean_loss());
        let (bern_run, bern_drops) = longest_drop_run(bern, 5);
        // Comparable totals, radically different structure.
        assert!(burst_drops > 50 && bern_drops > 50);
        assert!(
            burst_run >= bern_run * 2,
            "burst runs ({burst_run}) must dwarf Bernoulli runs ({bern_run})"
        );
    }

    #[test]
    fn tracer_records_wire_tx_rx_with_msgid() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        let id = MsgId {
            src_node: 0,
            vi: 2,
            seq: 9,
        };
        san.send_msg(NodeId(0), NodeId(1), 512, Box::new(()), Some(id));
        sim.run_to_completion();
        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].point, TracePoint::WireTx);
        assert_eq!(recs[0].node, 0);
        assert_eq!(recs[0].msg, Some(id));
        assert_eq!(recs[0].aux, 512);
        assert_eq!(recs[1].point, TracePoint::WireRx);
        assert_eq!(recs[1].node, 1);
        assert_eq!(recs[1].msg, Some(id));
        // The rx stamp is the delivery time, strictly after the tx stamp.
        assert!(recs[1].at_ns > recs[0].at_ns);
    }

    #[test]
    fn tracer_records_drops_with_hop_tag() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.5), 2, 99);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        for _ in 0..100 {
            san.send(NodeId(0), NodeId(1), 64, Box::new(()));
        }
        sim.run_to_completion();
        let drops = tracer.count(TracePoint::WireDrop);
        assert_eq!(drops, san.stats().frames_dropped);
        assert!(drops > 0);
        let recs = tracer.records();
        // Hop tags: 1 = uplink (recorded on src), 2 = downlink (on dst).
        assert!(recs
            .iter()
            .filter(|r| r.point == TracePoint::WireDrop)
            .all(|r| (r.aux == 1 && r.node == 0) || (r.aux == 2 && r.node == 1)));
        assert_eq!(tracer.count(TracePoint::WireTx), 100);
    }

    #[test]
    fn empty_fault_plan_installs_nothing() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        san.install_faults(&FaultPlan::new());
        assert!(!san.faults_installed());
    }

    #[test]
    fn link_flap_window_drops_frames_and_recovers() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let log = collect_arrivals(&san, NodeId(1));
        let flap_at = SimTime::ZERO + SimDuration::from_micros(100);
        let plan = FaultPlan::new().link_flap(NodeId(0), flap_at, SimDuration::from_micros(50));
        san.install_faults(&plan);
        // One frame before, one inside, one after the window.
        for delay_us in [0u64, 120, 300] {
            let san2 = san.clone();
            sim.call_in_as(
                EventClass::Fabric,
                SimDuration::from_micros(delay_us),
                move |_| {
                    san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
                },
            );
        }
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 3);
        assert_eq!(stats.frames_delivered, 2);
        assert_eq!(stats.frames_faulted, 1);
        assert_eq!(stats.frames_dropped, 0);
        assert_eq!(log.lock().len(), 2);
    }

    #[test]
    fn link_down_kills_control_frames_too() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let plan =
            FaultPlan::new().link_flap(NodeId(1), SimTime::ZERO, SimDuration::from_micros(50));
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send_control(NodeId(0), NodeId(1), 64, Box::new(()));
        });
        sim.run_to_completion();
        assert_eq!(san.stats().frames_faulted, 1);
        assert_eq!(san.stats().frames_delivered, 0);
    }

    #[test]
    fn corruption_has_its_own_counter() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 9);
        let log = collect_arrivals(&san, NodeId(1));
        let plan = FaultPlan::new().corrupt(SimTime::ZERO, SimDuration::from_millis(10), 0.5);
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            for _ in 0..200 {
                san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
            }
        });
        sim.run_to_completion();
        let stats = san.stats();
        assert_eq!(stats.frames_sent, 200);
        assert!(stats.frames_corrupted > 50, "{stats:?}");
        // Corruption is not loss: the loss counter stays clean.
        assert_eq!(stats.frames_dropped, 0);
        assert_eq!(stats.frames_faulted, 0);
        assert_eq!(
            stats.frames_delivered + stats.frames_corrupted,
            200,
            "{stats:?}"
        );
        assert_eq!(log.lock().len() as u64, stats.frames_delivered);
    }

    #[test]
    fn degradation_burst_adds_latency_and_loss() {
        let sim = Sim::new();
        let params = NetParams::myrinet();
        let san = San::new(sim.clone(), params, 2, 3);
        let log = collect_arrivals(&san, NodeId(1));
        let extra = SimDuration::from_micros(7);
        let plan = FaultPlan::new().degrade(
            NodeId(0),
            SimTime::ZERO,
            SimDuration::from_millis(10),
            extra,
            0.0,
        );
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send(NodeId(0), NodeId(1), 1024, Box::new(()));
        });
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let base = SimTime::ZERO + SimDuration::from_micros(1) + san.unloaded_latency(1024);
        // Degrading the source's link delays the one (uplink) traversal.
        assert_eq!(log[0].0, base + extra);
    }

    #[test]
    fn brownout_slows_the_switch_for_everyone() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 3, 3);
        let log = collect_arrivals(&san, NodeId(2));
        let extra = SimDuration::from_micros(11);
        let plan = FaultPlan::new().brownout(SimTime::ZERO, SimDuration::from_millis(10), extra);
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
            san2.send(NodeId(1), NodeId(2), 512, Box::new(()));
        });
        sim.run_to_completion();
        let log = log.lock();
        assert_eq!(log.len(), 1);
        let base = SimTime::ZERO + SimDuration::from_micros(1) + san.unloaded_latency(512);
        assert_eq!(log[0].0, base + extra);
    }

    #[test]
    fn fault_edges_are_traced() {
        use trace::TraceConfig;
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let _log = collect_arrivals(&san, NodeId(1));
        let tracer = Tracer::new(TraceConfig::default());
        san.set_tracer(tracer.clone());
        let at = SimTime::ZERO + SimDuration::from_micros(5);
        let plan = FaultPlan::new().link_flap(NodeId(0), at, SimDuration::from_micros(10));
        san.install_faults(&plan);
        let san2 = san.clone();
        sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(8), move |_| {
            san2.send(NodeId(0), NodeId(1), 64, Box::new(()));
        });
        sim.run_to_completion();
        assert_eq!(tracer.count(TracePoint::LinkDown), 1);
        assert_eq!(tracer.count(TracePoint::LinkUp), 1);
        let recs = tracer.records();
        let down = recs
            .iter()
            .find(|r| r.point == TracePoint::LinkDown)
            .unwrap();
        assert_eq!(down.node, 0);
        assert_eq!(down.aux, 1);
        // The frame sent mid-window died with the link-down hop tag.
        assert!(recs
            .iter()
            .any(|r| r.point == TracePoint::WireDrop && r.aux == 3));
    }

    #[test]
    fn fault_rng_leaves_the_loss_stream_untouched() {
        // Same seed, same traffic, same loss model: a corruption window
        // must not perturb which frames the loss model drops.
        fn delivered_ids(with_corruption: bool) -> Vec<u64> {
            let sim = Sim::new();
            let san = San::new(sim.clone(), NetParams::myrinet().with_loss(0.2), 2, 42);
            let got = Arc::new(Mutex::new(Vec::new()));
            let g2 = Arc::clone(&got);
            san.attach(
                NodeId(1),
                Arc::new(move |_, d| {
                    g2.lock().push(*d.body.downcast::<u64>().unwrap());
                }),
            );
            if with_corruption {
                // A window that has expired before any traffic flows: the
                // FaultState is installed (the Option branch is taken) but
                // no fault decision ever fires.
                san.install_faults(&FaultPlan::new().corrupt(
                    SimTime::ZERO,
                    SimDuration::from_nanos(1),
                    1.0,
                ));
            }
            let san2 = san.clone();
            sim.call_in_as(EventClass::Fabric, SimDuration::from_micros(1), move |_| {
                for i in 0..500u64 {
                    san2.send(NodeId(0), NodeId(1), 64, Box::new(i));
                }
            });
            sim.run_to_completion();
            let got = got.lock().clone();
            got
        }
        assert_eq!(delivered_ids(false), delivered_ids(true));
    }

    #[test]
    fn sharded_san_matches_serial_timeline() {
        use simkit::ShardedSim;
        type Log = Arc<Mutex<Vec<(u64, u32, u32)>>>;
        fn attach_all(san: &San, nodes: u32) -> Log {
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            for n in 0..nodes {
                let l2 = Arc::clone(&log);
                san.attach(
                    NodeId(n),
                    Arc::new(move |sim, d| {
                        l2.lock()
                            .push((sim.now().as_nanos(), d.dst.0, d.payload_bytes));
                    }),
                );
            }
            log
        }
        // Every node sends to every other at staggered, tie-free offsets.
        fn schedule(san: &San, sim: &Sim, src: u32, nodes: u32) {
            for k in 0..6u64 {
                let dst = NodeId((src + 1 + (k as u32 % (nodes - 1))) % nodes);
                let s = NodeId(src);
                let san2 = san.clone();
                let at = SimDuration::from_nanos(911 * (k + 1) + src as u64 * 137);
                let bytes = 300 + 111 * k as u32;
                sim.call_in_as(EventClass::Fabric, at, move |_| {
                    san2.send(s, dst, bytes, Box::new(()));
                });
            }
        }
        let params = NetParams::clan().with_loss(0.15);
        let nodes = 5u32;

        let sim = Sim::new();
        let serial_san = San::new(sim.clone(), params, nodes as usize, 42);
        let serial_log = attach_all(&serial_san, nodes);
        for src in 0..nodes {
            schedule(&serial_san, &sim, src, nodes);
        }
        sim.run_to_completion();
        let mut serial: Vec<_> = serial_log.lock().clone();
        serial.sort_unstable();
        let serial_stats = serial_san.stats();
        assert!(serial_stats.frames_dropped > 0, "{serial_stats:?}");
        assert!(serial_stats.frames_delivered > 0, "{serial_stats:?}");

        for shards in [2usize, 3] {
            let eng = ShardedSim::new(shards, params.min_cross_latency());
            let san = San::new_sharded(&eng, params, nodes as usize, 42);
            let log = attach_all(&san, nodes);
            for src in 0..nodes {
                schedule(&san, eng.sim_for_node(src), src, nodes);
            }
            let rep = eng.run_to_completion();
            assert_eq!(rep.causality_violations, 0);
            let mut got: Vec<_> = log.lock().clone();
            got.sort_unstable();
            assert_eq!(got, serial, "delivery log diverged at shards={shards}");
            assert_eq!(
                san.stats(),
                serial_stats,
                "stats diverged at shards={shards}"
            );
        }
    }

    #[test]
    fn sharded_san_faults_match_serial() {
        use simkit::ShardedSim;
        fn run(shards: usize) -> (SanStats, Vec<u64>) {
            let params = NetParams::myrinet();
            let nodes = 4u32;
            let plan = FaultPlan::new()
                .link_flap(
                    NodeId(1),
                    SimTime::ZERO + SimDuration::from_micros(20),
                    SimDuration::from_micros(30),
                )
                .degrade(
                    NodeId(2),
                    SimTime::ZERO + SimDuration::from_micros(5),
                    SimDuration::from_micros(120),
                    SimDuration::from_micros(2),
                    0.3,
                );
            let got = Arc::new(Mutex::new(Vec::new()));
            let setup = |san: &San| {
                for n in 0..nodes {
                    let g2 = Arc::clone(&got);
                    san.attach(
                        NodeId(n),
                        Arc::new(move |sim, _| g2.lock().push(sim.now().as_nanos())),
                    );
                }
                san.install_faults(&plan.clone());
            };
            let sends = |san: &San, sim: &Sim, src: u32| {
                for k in 0..20u64 {
                    let dst = NodeId((src + 1) % nodes);
                    let s = NodeId(src);
                    let san2 = san.clone();
                    sim.call_in_as(
                        EventClass::Fabric,
                        SimDuration::from_micros(1 + 3 * k) + SimDuration::from_nanos(src as u64),
                        move |_| san2.send(s, dst, 256, Box::new(())),
                    );
                }
            };
            let stats = if shards == 1 {
                let sim = Sim::new();
                let san = San::new(sim.clone(), params, nodes as usize, 9);
                setup(&san);
                for src in 0..nodes {
                    sends(&san, &sim, src);
                }
                sim.run_to_completion();
                san.stats()
            } else {
                let eng = ShardedSim::new(shards, params.min_cross_latency());
                let san = San::new_sharded(&eng, params, nodes as usize, 9);
                setup(&san);
                for src in 0..nodes {
                    sends(&san, eng.sim_for_node(src), src);
                }
                eng.run_to_completion();
                san.stats()
            };
            let mut arrivals = got.lock().clone();
            arrivals.sort_unstable();
            (stats, arrivals)
        }
        let (serial_stats, serial_arrivals) = run(1);
        assert!(serial_stats.frames_faulted > 0, "{serial_stats:?}");
        for shards in [2usize, 4] {
            let (stats, arrivals) = run(shards);
            assert_eq!(stats, serial_stats, "stats diverged at shards={shards}");
            assert_eq!(arrivals, serial_arrivals);
        }
    }

    fn test_trunk(bandwidth_bps: u64) -> crate::params::LinkParams {
        crate::params::LinkParams {
            bandwidth_bps,
            propagation: SimDuration::from_nanos(600),
            frame_overhead_bytes: 8,
            mtu: 64 * 1024,
        }
    }

    /// Satellite regression: a San built through `Topology::star` must be
    /// indistinguishable from the legacy constructor — same timeline, same
    /// stats, same RNG draws — under loss, where any divergence in draw
    /// order would show immediately.
    #[test]
    fn star_topology_is_byte_identical_to_legacy() {
        use crate::topo::Topology;
        type Log = Arc<Mutex<Vec<(u64, u32, u32)>>>;
        fn run(star: bool) -> (Vec<(u64, u32, u32)>, SanStats) {
            let params = NetParams::clan().with_loss(0.2);
            let nodes = 4u32;
            let sim = Sim::new();
            let san = if star {
                San::new_topo(sim.clone(), params, Topology::star(nodes as usize), 7)
            } else {
                San::new(sim.clone(), params, nodes as usize, 7)
            };
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            for n in 0..nodes {
                let l2 = Arc::clone(&log);
                san.attach(
                    NodeId(n),
                    Arc::new(move |sim, d| {
                        l2.lock()
                            .push((sim.now().as_nanos(), d.dst.0, d.payload_bytes));
                    }),
                );
            }
            for src in 0..nodes {
                for k in 0..8u64 {
                    let dst = NodeId((src + 1 + (k as u32 % (nodes - 1))) % nodes);
                    let s = NodeId(src);
                    let san2 = san.clone();
                    let at = SimDuration::from_nanos(701 * (k + 1) + src as u64 * 97);
                    sim.call_in_as(EventClass::Fabric, at, move |_| {
                        san2.send(s, dst, 200 + 64 * k as u32, Box::new(()));
                    });
                }
            }
            sim.run_to_completion();
            assert!(san.is_single_switch());
            assert!(san.port_stats().is_empty());
            assert!(san.topology().is_none());
            let l = log.lock().clone();
            (l, san.stats())
        }
        let (legacy_log, legacy_stats) = run(false);
        let (star_log, star_stats) = run(true);
        assert!(legacy_stats.frames_dropped > 0, "{legacy_stats:?}");
        assert_eq!(star_log, legacy_log);
        assert_eq!(star_stats, legacy_stats);
    }

    #[test]
    fn multi_hop_latency_matches_model() {
        use crate::topo::{PortLimits, Topology};
        let params = NetParams::clan();
        let trunk = test_trunk(440_000_000);
        // dumbbell(4): nodes 0,1 on switch 0; nodes 2,3 on switch 1.
        let topo = Topology::dumbbell(4, trunk, PortLimits::default());
        let sim = Sim::new();
        let san = San::new_topo(sim.clone(), params, topo, 1);
        let log = collect_arrivals(&san, NodeId(2));
        let local = collect_arrivals(&san, NodeId(1));
        san.send(NodeId(0), NodeId(2), 1024, Box::new(()));
        sim.run_to_completion();
        // uplink (store-and-forward) → edge switch → trunk → far switch →
        // host port; the switch latency is paid once per switch, and each
        // switch adds the one-tick port-resolver delay (RESOLVE_TICK).
        let ser = params.link.serialization(1024);
        let tser = trunk.serialization(1024);
        let sw = params.switch.latency + SimDuration::from_nanos(1);
        let expected = (ser + params.link.propagation)
            + (sw + tser + trunk.propagation)
            + (sw + ser + params.link.propagation);
        assert_eq!(log.lock()[0].0, SimTime::ZERO + expected);

        // Same-switch traffic never touches the trunk.
        san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
        sim.run_to_completion();
        let start = san.stats().bytes_delivered; // just force quiesce above
        let _ = start;
        let expected_local = (ser + params.link.propagation) + (sw + ser + params.link.propagation);
        let t0 = local.lock()[0].0;
        assert!(t0 >= SimTime::ZERO + expected_local);
        // The trunk ports saw exactly one frame (the 0→2 one).
        let trunk_admitted: u64 = san
            .port_stats()
            .iter()
            .filter(|p| matches!(p.target, PortTarget::Switch(_)))
            .map(|p| p.stats.admitted)
            .sum();
        assert_eq!(trunk_admitted, 1);
    }

    #[test]
    fn port_backpressure_pauses_then_drops_with_conservation() {
        use crate::topo::{PortLimits, PortTarget, Topology};
        let params = NetParams::clan();
        // A slow trunk (half the access bandwidth) with a tiny buffer: two
        // senders at line rate must overflow capacity 1 + pause depth 2.
        let topo = Topology::dumbbell(
            4,
            test_trunk(55_000_000),
            PortLimits {
                capacity: 1,
                pause_depth: 2,
                max_pause: None,
            },
        );
        let sim = Sim::new();
        let san = San::new_topo(sim.clone(), params, topo, 3);
        // Two flows through the one trunk port but to *different* far-side
        // hosts, so pauses behind the other flow count as HOL blocking.
        let log = collect_arrivals(&san, NodeId(2));
        let log3 = collect_arrivals(&san, NodeId(3));
        for k in 0..8u32 {
            san.send(NodeId(0), NodeId(2), 4096 + k, Box::new(()));
            san.send(NodeId(1), NodeId(3), 8192 + k, Box::new(()));
        }
        sim.run_to_completion();
        let stats = san.stats();
        let ports = san.port_stats();
        let trunk_port = ports
            .iter()
            .find(|p| p.switch == 0 && matches!(p.target, PortTarget::Switch(1)))
            .expect("trunk port");
        assert!(trunk_port.stats.pauses > 0, "{:?}", trunk_port.stats);
        assert!(trunk_port.stats.drops > 0, "{:?}", trunk_port.stats);
        assert!(trunk_port.stats.hol_blocked > 0, "{:?}", trunk_port.stats);
        assert!(trunk_port.stats.pause_highwater <= 2);
        assert!(trunk_port.stats.highwater <= 1);
        // Honest attribution: every port drop is in the aggregate counter,
        // and frames are conserved.
        let port_drops: u64 = ports.iter().map(|p| p.stats.drops).sum();
        assert_eq!(port_drops, stats.frames_port_dropped);
        assert_eq!(
            stats.frames_sent,
            stats.frames_delivered + stats.frames_port_dropped,
            "{stats:?}"
        );
        assert_eq!(
            (log.lock().len() + log3.lock().len()) as u64,
            stats.frames_delivered
        );
        // FIFO survived backpressure: each flow's frames arrive in order.
        let a: Vec<u32> = log.lock().iter().map(|&(_, b)| b).collect();
        let b: Vec<u32> = log3.lock().iter().map(|&(_, b)| b).collect();
        assert!(a.windows(2).all(|w| w[0] < w[1]), "{a:?}");
        assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
    }

    #[test]
    fn sharded_topo_matches_serial_timeline() {
        use crate::topo::{PortLimits, Topology};
        use simkit::ShardedSim;
        type Log = Arc<Mutex<Vec<(u64, u32, u32)>>>;
        let params = NetParams::clan().with_loss(0.15);
        let make_topo =
            || Topology::fat_tree(3, 2, 2, test_trunk(440_000_000), PortLimits::default());
        let nodes = 6u32;
        fn attach_all(san: &San, nodes: u32) -> Log {
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            for n in 0..nodes {
                let l2 = Arc::clone(&log);
                san.attach(
                    NodeId(n),
                    Arc::new(move |sim, d| {
                        l2.lock()
                            .push((sim.now().as_nanos(), d.dst.0, d.payload_bytes));
                    }),
                );
            }
            log
        }
        fn schedule(san: &San, sim: &Sim, src: u32, nodes: u32) {
            for k in 0..6u64 {
                let dst = NodeId((src + 1 + (k as u32 % (nodes - 1))) % nodes);
                let s = NodeId(src);
                let san2 = san.clone();
                let at = SimDuration::from_nanos(911 * (k + 1) + src as u64 * 137);
                let bytes = 300 + 111 * k as u32 + 13 * src;
                sim.call_in_as(EventClass::Fabric, at, move |_| {
                    san2.send(s, dst, bytes, Box::new(()));
                });
            }
        }
        let sim = Sim::new();
        let serial_san = San::new_topo(sim.clone(), params, make_topo(), 42);
        let serial_log = attach_all(&serial_san, nodes);
        for src in 0..nodes {
            schedule(&serial_san, &sim, src, nodes);
        }
        sim.run_to_completion();
        let mut serial: Vec<_> = serial_log.lock().clone();
        serial.sort_unstable();
        let serial_stats = serial_san.stats();
        assert!(serial_stats.frames_dropped > 0, "{serial_stats:?}");
        assert!(serial_stats.frames_delivered > 0, "{serial_stats:?}");
        let serial_ports: Vec<_> = serial_san.port_stats().iter().map(|p| p.stats).collect();

        for shards in [2usize, 3, 4] {
            let topo = make_topo();
            let eng =
                ShardedSim::new_with_map(topo.shard_map(shards), topo.shard_lookahead(&params));
            let san = San::new_sharded_topo(&eng, params, topo, 42);
            let log = attach_all(&san, nodes);
            for src in 0..nodes {
                schedule(&san, eng.sim_for_node(src), src, nodes);
            }
            let rep = eng.run_to_completion();
            assert_eq!(rep.causality_violations, 0);
            let mut got: Vec<_> = log.lock().clone();
            got.sort_unstable();
            assert_eq!(got, serial, "delivery log diverged at shards={shards}");
            assert_eq!(
                san.stats(),
                serial_stats,
                "stats diverged at shards={shards}"
            );
            let ports: Vec<_> = san.port_stats().iter().map(|p| p.stats).collect();
            assert_eq!(
                ports, serial_ports,
                "port stats diverged at shards={shards}"
            );
        }
    }

    /// Satellite regression: switch-scoped fault windows must replicate
    /// their edges to every shard owning an attached link — the same
    /// pattern as per-node fault streams — so stats, delivery timelines
    /// and per-port counters are identical at shard counts 1..5.
    #[test]
    fn sharded_switch_faults_match_serial() {
        use crate::fault::RerouteParams;
        use crate::topo::{PortLimits, Topology};
        use simkit::ShardedSim;
        type Log = Arc<Mutex<Vec<(u64, u32, u32)>>>;
        let params = NetParams::clan();
        let t0 = SimTime::ZERO;
        let plan = FaultPlan::new()
            .switch_down(
                3,
                t0 + SimDuration::from_micros(200),
                SimDuration::from_micros(300),
            )
            .trunk_down(
                0,
                4,
                t0 + SimDuration::from_micros(600),
                SimDuration::from_micros(100),
            )
            .with_reroute(RerouteParams {
                detection: SimDuration::from_micros(20),
                reconvergence: SimDuration::from_micros(30),
            });
        let make_topo =
            || Topology::fat_tree(3, 2, 2, test_trunk(440_000_000), PortLimits::default());
        let nodes = 6u32;
        fn attach_all(san: &San, nodes: u32) -> Log {
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            for n in 0..nodes {
                let l2 = Arc::clone(&log);
                san.attach(
                    NodeId(n),
                    Arc::new(move |sim, d| {
                        l2.lock()
                            .push((sim.now().as_nanos(), d.dst.0, d.payload_bytes));
                    }),
                );
            }
            log
        }
        fn schedule(san: &San, sim: &Sim, src: u32, nodes: u32) {
            for k in 0..16u64 {
                let dst = NodeId((src + 1 + (k as u32 % (nodes - 1))) % nodes);
                let s = NodeId(src);
                let san2 = san.clone();
                let at = SimDuration::from_micros(50 * k)
                    + SimDuration::from_nanos(701 + src as u64 * 137);
                let bytes = 256 + 16 * src;
                sim.call_in_as(EventClass::Fabric, at, move |_| {
                    san2.send(s, dst, bytes, Box::new(()));
                });
            }
        }
        let run = |shards: usize| -> (SanStats, Vec<(u64, u32, u32)>, Vec<PortStats>) {
            let topo = make_topo();
            let (san, log, rep_ok) = if shards == 1 {
                let sim = Sim::new();
                let san = San::new_topo(sim.clone(), params, topo, 42);
                let log = attach_all(&san, nodes);
                san.install_faults(&plan);
                for src in 0..nodes {
                    schedule(&san, &sim, src, nodes);
                }
                sim.run_to_completion();
                (san, log, true)
            } else {
                let eng =
                    ShardedSim::new_with_map(topo.shard_map(shards), topo.shard_lookahead(&params));
                let san = San::new_sharded_topo(&eng, params, topo, 42);
                let log = attach_all(&san, nodes);
                san.install_faults(&plan);
                for src in 0..nodes {
                    schedule(&san, eng.sim_for_node(src), src, nodes);
                }
                let rep = eng.run_to_completion();
                (san, log, rep.causality_violations == 0)
            };
            assert!(rep_ok, "causality violation at shards={shards}");
            let mut got = log.lock().clone();
            got.sort_unstable();
            let ports = san.port_stats().iter().map(|p| p.stats).collect();
            (san.stats(), got, ports)
        };
        let (serial, arrivals, ports) = run(1);
        // The fault windows bit: some frames died to the dead spine (no
        // port attribution) and some were refused at the downed trunk's
        // port (attributed).
        assert!(serial.frames_fault_dropped > 0, "{serial:?}");
        let port_attributed: u64 = ports.iter().map(|p| p.fault_dropped).sum();
        assert!(port_attributed > 0, "trunk refusals must blame their port");
        assert!(
            port_attributed < serial.frames_fault_dropped,
            "switch-wide kills have no port to blame"
        );
        // Reconvergence: traffic sent after the window + reroute delay
        // flows again (the last send round lands well past all windows).
        assert!(serial.frames_delivered > 0, "{serial:?}");
        let last_arrival = arrivals.last().expect("deliveries exist").0;
        assert!(
            last_arrival > 700_000,
            "post-failback traffic must deliver (last arrival {last_arrival} ns)"
        );
        // Conservation with the new term (lossless params: no loss drops).
        assert_eq!(
            serial.frames_sent,
            serial.frames_delivered
                + serial.frames_dropped
                + serial.frames_faulted
                + serial.frames_corrupted
                + serial.frames_port_dropped
                + serial.frames_fault_dropped,
            "{serial:?}"
        );
        for shards in [2usize, 3, 4, 5] {
            let (stats, got, p) = run(shards);
            assert_eq!(stats, serial, "stats diverged at shards={shards}");
            assert_eq!(got, arrivals, "timeline diverged at shards={shards}");
            assert_eq!(p, ports, "port stats diverged at shards={shards}");
        }
    }

    /// The pause-storm watchdog bounds consecutive pause time per port:
    /// sustained fan-in overload past `max_pause` trips the watchdog,
    /// drains the pause queue into honest drops, and keeps the observed
    /// streak within one serialization granule of the bound.
    #[test]
    fn pause_storm_watchdog_bounds_pause_time() {
        use crate::topo::{PortLimits, PortTarget, Topology};
        let params = NetParams::clan();
        let bound = SimDuration::from_micros(60);
        let topo = Topology::dumbbell(
            4,
            test_trunk(55_000_000),
            PortLimits {
                capacity: 1,
                pause_depth: 2,
                max_pause: Some(bound),
            },
        );
        let sim = Sim::new();
        let san = San::new_topo(sim.clone(), params, topo, 3);
        let delivered = Arc::new(Mutex::new(0u64));
        for n in 0..4 {
            let d2 = Arc::clone(&delivered);
            san.attach(NodeId(n), Arc::new(move |_, _| *d2.lock() += 1));
        }
        // Two hosts on switch 0 blast the one trunk port at line rate.
        for k in 0..40u64 {
            for src in 0..2u32 {
                let s = NodeId(src);
                let dst = NodeId(2 + src);
                let san2 = san.clone();
                sim.call_in_as(
                    EventClass::Fabric,
                    SimDuration::from_micros(5 * k) + SimDuration::from_nanos(src as u64),
                    move |_| san2.send(s, dst, 256, Box::new(())),
                );
            }
        }
        sim.run_to_completion();
        let stats = san.stats();
        let trunk_port = san
            .port_stats()
            .into_iter()
            .find(|p| p.switch == 0 && p.target == PortTarget::Switch(1))
            .expect("trunk port exists");
        let ps = trunk_port.stats;
        assert!(
            ps.storm_trips > 0,
            "overload must trip the watchdog: {ps:?}"
        );
        assert!(ps.storm_dropped > 0, "{ps:?}");
        // The observed streak stays within one resolver granule of the
        // bound: a trip can only be noticed at the next resolver, at most
        // one trunk serialization (plus the switch hop) later.
        let granule = test_trunk(55_000_000).serialization(256) + params.switch.latency;
        assert!(ps.max_pause_ns >= bound.as_nanos(), "{ps:?}");
        assert!(
            ps.max_pause_ns <= (bound + granule).as_nanos() + 1_000,
            "watchdog failed to bound the streak: {ps:?}"
        );
        // Storm drops fold into the port-dropped total, and conservation
        // holds.
        let port_total: u64 = san
            .port_stats()
            .iter()
            .map(|p| p.stats.drops + p.stats.storm_dropped)
            .sum();
        assert_eq!(port_total, stats.frames_port_dropped, "{stats:?}");
        assert_eq!(
            stats.frames_sent,
            stats.frames_delivered + stats.frames_port_dropped,
            "{stats:?}"
        );
        assert_eq!(*delivered.lock(), stats.frames_delivered);
    }

    #[test]
    fn payload_body_roundtrips() {
        let sim = Sim::new();
        let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
        let got = Arc::new(Mutex::new(None));
        let got2 = Arc::clone(&got);
        san.attach(
            NodeId(1),
            Arc::new(move |_, d| {
                let v = d.body.downcast::<String>().expect("string body");
                *got2.lock() = Some((*v).clone());
            }),
        );
        san.send(
            NodeId(0),
            NodeId(1),
            11,
            Box::new("hello world".to_string()),
        );
        sim.run_to_completion();
        assert_eq!(got.lock().as_deref(), Some("hello world"));
    }
}
