//! Scripted, seeded fault injection for the SAN.
//!
//! A [`FaultPlan`] is a list of sim-time-scheduled fault windows — link
//! down/up flaps, per-link degradation bursts (extra latency and loss),
//! frame corruption (CRC-fail drops, counted separately from congestion
//! loss), and switch brownouts. [`crate::San::install_faults`] schedules
//! the window edges on the engine's slab timer core; inside a window the
//! send path consults the active fault set on every frame.
//!
//! Determinism: all fault drop decisions come from dedicated per-node
//! `SimRng::derive(seed, "fabric-fault-n*")` streams (a frame's decision
//! draws from the stream of the endpoint whose hop it is crossing), so
//! the per-link loss-injection streams see exactly the draws they see
//! without a plan, and a draw depends only on the frame order through
//! that endpoint — never on unrelated traffic or on how nodes are
//! distributed over engine shards. With no plan installed the per-frame
//! cost is a single `Option` branch and the timeline is bit-identical to
//! a fault-free build.

use simkit::{SimDuration, SimRng, SimTime};

use crate::san::NodeId;
use crate::topo::Topology;

/// Trace-record node id used for switch-scope fault edges (brownouts),
/// which belong to no attached node.
pub const SWITCH_NODE: u32 = u32::MAX;

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The node's link (both directions) is down: every frame entering or
    /// leaving the node during the window is dropped.
    LinkDown {
        /// The node whose link flaps.
        node: NodeId,
    },
    /// The node's link degrades: frames crossing it pay `extra_latency`
    /// and are dropped with probability `extra_loss` (on top of the
    /// configured loss model).
    Degrade {
        /// The node whose link degrades.
        node: NodeId,
        /// Added one-way latency per traversal.
        extra_latency: SimDuration,
        /// Added drop probability per traversal.
        extra_loss: f64,
    },
    /// Frames are corrupted (and dropped at CRC check) with probability
    /// `p`, network-wide. Checked once per frame at fabric ingress and
    /// counted in [`crate::SanStats::frames_corrupted`], distinct from
    /// loss-model drops.
    Corrupt {
        /// Per-frame corruption probability.
        p: f64,
    },
    /// Switch brownout: every frame traversing the switch pays
    /// `extra_latency` on top of the configured switch latency.
    Brownout {
        /// Added switch traversal latency.
        extra_latency: SimDuration,
    },
    /// A whole switch is dead (multi-switch topologies only): frames
    /// parked in its port FIFOs at window open are flushed, and every
    /// frame arriving at it during the window is dropped — both counted
    /// in [`crate::SanStats::frames_fault_dropped`]. Routing reconverges
    /// around it after the plan's [`RerouteParams`] delay.
    SwitchDown {
        /// The dead switch.
        switch: u32,
    },
    /// One undirected trunk is severed (multi-switch topologies only):
    /// the two trunk-port FIFOs are flushed at window open and frames
    /// routed onto the trunk during the window are dropped. Routing
    /// reconverges around it after the plan's [`RerouteParams`] delay.
    TrunkDown {
        /// Lower-numbered endpoint switch.
        a: u32,
        /// Higher-numbered endpoint switch.
        b: u32,
    },
    /// Every output port of one switch degrades: admitted frames pay
    /// `extra_latency` on top of the switch traversal. Paths stay valid,
    /// so no reroute is triggered.
    PortDegrade {
        /// The degraded switch.
        switch: u32,
        /// Added per-traversal latency on every port of the switch.
        extra_latency: SimDuration,
    },
    /// The whole host is down: its NIC rings, translation tables, and VI
    /// state are wiped at window open (the attached provider's crash hook
    /// fires), every frame to or from the node during the window drains to
    /// [`crate::SanStats::frames_fault_dropped`] and the per-node
    /// fault-drop counter, and at window close the node reboots with a
    /// freshly initialized NIC.
    NodeDown {
        /// The crashed node.
        node: NodeId,
    },
    /// The node's NIC resets: device state (rings, translations, VI
    /// connection state) is wiped and the link is dead for the window,
    /// but the host itself stays up. Wire behavior matches
    /// [`FaultKind::NodeDown`]; the two differ in the error cause the
    /// attached provider reports and in crash accounting.
    NicReset {
        /// The node whose NIC resets.
        node: NodeId,
    },
}

impl FaultKind {
    /// True for the kinds that target switch-fabric elements rather than
    /// host links — the kinds only a multi-switch SAN can apply.
    pub fn is_switch_scoped(&self) -> bool {
        matches!(
            self,
            FaultKind::SwitchDown { .. }
                | FaultKind::TrunkDown { .. }
                | FaultKind::PortDegrade { .. }
        )
    }

    /// True for the kinds that invalidate routes and trigger deterministic
    /// reconvergence (a degraded port still forwards, so it does not).
    pub fn triggers_reroute(&self) -> bool {
        matches!(
            self,
            FaultKind::SwitchDown { .. } | FaultKind::TrunkDown { .. }
        )
    }

    /// True for the kinds that kill a host outright (node crash / NIC
    /// reset) — the kinds whose window edges fire the attached provider's
    /// crash and reboot hooks.
    pub fn is_node_scoped(&self) -> bool {
        matches!(
            self,
            FaultKind::NodeDown { .. } | FaultKind::NicReset { .. }
        )
    }

    /// The crashed/resetting node, for node-scoped kinds.
    pub fn node_scope(&self) -> Option<NodeId> {
        match self {
            FaultKind::NodeDown { node } | FaultKind::NicReset { node } => Some(*node),
            _ => None,
        }
    }
}

/// Detection + reconvergence delays for route recomputation after a
/// [`FaultKind::SwitchDown`] or [`FaultKind::TrunkDown`] edge. Routing
/// keeps steering frames into the dead element (a blackhole, dropped with
/// honest counters) for `detection + reconvergence` after each edge, then
/// flips to BFS routes excluding every currently failed element — on every
/// shard at the same virtual instant, so the chosen paths are a pure
/// function of virtual time at any shard count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RerouteParams {
    /// Time for the control plane to notice the failed element.
    pub detection: SimDuration,
    /// Time to recompute and install routes once detected.
    pub reconvergence: SimDuration,
}

impl Default for RerouteParams {
    fn default() -> Self {
        RerouteParams {
            detection: SimDuration::from_micros(20),
            reconvergence: SimDuration::from_micros(30),
        }
    }
}

impl RerouteParams {
    /// Total delay between a fault edge and the routing flip.
    pub fn total(&self) -> SimDuration {
        self.detection + self.reconvergence
    }
}

/// One scheduled fault window: `kind` is active on `[at, at + duration)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// Sim time the fault begins.
    pub at: SimTime,
    /// How long the fault lasts.
    pub duration: SimDuration,
    /// What happens during the window.
    pub kind: FaultKind,
}

/// A script of fault windows, applied to a [`crate::San`] via
/// [`crate::San::install_faults`]. Windows may overlap; effects stack
/// (latencies add, drop probabilities add with a cap at 1.0).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultWindow>,
    /// Reroute delays for switch-scoped windows; `None` uses
    /// [`RerouteParams::default`].
    reroute: Option<RerouteParams>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; provably free on the send path).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan schedules no fault windows.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled windows, in insertion order.
    pub fn events(&self) -> &[FaultWindow] {
        &self.events
    }

    /// Add an arbitrary window.
    pub fn window(mut self, at: SimTime, duration: SimDuration, kind: FaultKind) -> Self {
        assert!(
            duration > SimDuration::ZERO,
            "fault window must have extent"
        );
        self.events.push(FaultWindow { at, duration, kind });
        self
    }

    /// Take `node`'s link down for `duration` starting at `at`.
    pub fn link_flap(self, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        self.window(at, duration, FaultKind::LinkDown { node })
    }

    /// Degrade `node`'s link for `duration` starting at `at`.
    pub fn degrade(
        self,
        node: NodeId,
        at: SimTime,
        duration: SimDuration,
        extra_latency: SimDuration,
        extra_loss: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&extra_loss),
            "probability out of range"
        );
        self.window(
            at,
            duration,
            FaultKind::Degrade {
                node,
                extra_latency,
                extra_loss,
            },
        )
    }

    /// Corrupt frames network-wide with probability `p` during the window.
    pub fn corrupt(self, at: SimTime, duration: SimDuration, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.window(at, duration, FaultKind::Corrupt { p })
    }

    /// Brown the switch out (add `extra_latency` per traversal) during the
    /// window.
    pub fn brownout(self, at: SimTime, duration: SimDuration, extra_latency: SimDuration) -> Self {
        self.window(at, duration, FaultKind::Brownout { extra_latency })
    }

    /// Kill switch `switch` for `duration` starting at `at` (multi-switch
    /// SANs only; installation validates the id against the topology).
    pub fn switch_down(self, switch: u32, at: SimTime, duration: SimDuration) -> Self {
        self.window(at, duration, FaultKind::SwitchDown { switch })
    }

    /// Sever the undirected trunk between switches `a` and `b` for
    /// `duration` starting at `at` (the pair is normalized, so either
    /// endpoint order names the same trunk).
    pub fn trunk_down(self, a: u32, b: u32, at: SimTime, duration: SimDuration) -> Self {
        assert!(a != b, "a trunk joins two distinct switches");
        self.window(
            at,
            duration,
            FaultKind::TrunkDown {
                a: a.min(b),
                b: a.max(b),
            },
        )
    }

    /// Degrade every output port of switch `switch` by `extra_latency` per
    /// traversal during the window.
    pub fn port_degrade(
        self,
        switch: u32,
        at: SimTime,
        duration: SimDuration,
        extra_latency: SimDuration,
    ) -> Self {
        self.window(
            at,
            duration,
            FaultKind::PortDegrade {
                switch,
                extra_latency,
            },
        )
    }

    /// Crash node `node` for `duration` starting at `at`: NIC and VI state
    /// wiped at window open, all frames to/from the node dropped during
    /// the window, reboot at window close.
    pub fn node_down(self, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        self.window(at, duration, FaultKind::NodeDown { node })
    }

    /// Reset node `node`'s NIC for `duration` starting at `at`: device
    /// state wiped and link dead for the window, host survives.
    pub fn nic_reset(self, node: NodeId, at: SimTime, duration: SimDuration) -> Self {
        self.window(at, duration, FaultKind::NicReset { node })
    }

    /// Override the reroute delays applied to this plan's switch-scoped
    /// windows (default: [`RerouteParams::default`]).
    pub fn with_reroute(mut self, reroute: RerouteParams) -> Self {
        self.reroute = Some(reroute);
        self
    }

    /// The reroute delays switch-scoped windows in this plan reconverge
    /// under.
    pub fn reroute(&self) -> RerouteParams {
        self.reroute.unwrap_or_default()
    }

    /// True when any window targets a switch-fabric element (switch,
    /// trunk, or switch-port degrade) — installation requires a
    /// multi-switch topology.
    pub fn has_switch_faults(&self) -> bool {
        self.events.iter().any(|w| w.kind.is_switch_scoped())
    }

    /// True when any window triggers route reconvergence.
    pub fn has_reroute_faults(&self) -> bool {
        self.events.iter().any(|w| w.kind.triggers_reroute())
    }

    /// True when any window kills a host (node crash or NIC reset).
    pub fn has_node_faults(&self) -> bool {
        self.events.iter().any(|w| w.kind.is_node_scoped())
    }

    /// Compose a randomized plan from a seeded RNG stream: zero to four
    /// fault windows of mixed kinds, each starting inside
    /// `[base, base + span)` with a duration of at most half the span and
    /// at least one microsecond. Every decision — window count, kind,
    /// placement, severity, victim node — draws from `rng` in a fixed
    /// order, so a given (seed, base, span, nodes) tuple always yields
    /// the same plan; the chaos harness's reproducibility hangs on this.
    /// All draws are integer-nanosecond, keeping the plan exactly
    /// representable at any worker count.
    pub fn randomized(rng: &mut SimRng, base: SimTime, span: SimDuration, nodes: u32) -> Self {
        assert!(nodes > 0, "need at least one node to fault");
        assert!(
            span >= SimDuration::from_micros(2),
            "need a usable span to place windows in"
        );
        let mut plan = FaultPlan::new();
        let windows = rng.below(5);
        for _ in 0..windows {
            let at = base + SimDuration::from_nanos(rng.below(span.as_nanos()));
            let duration = SimDuration::from_nanos(rng.below(span.as_nanos() / 2).max(1_000));
            let node = NodeId(rng.below(nodes as u64) as u32);
            plan = match rng.below(4) {
                0 => plan.link_flap(node, at, duration),
                1 => plan.degrade(
                    node,
                    at,
                    duration,
                    SimDuration::from_micros(1 + rng.below(20)),
                    rng.unit() * 0.3,
                ),
                2 => plan.corrupt(at, duration, rng.unit() * 0.3),
                _ => plan.brownout(at, duration, SimDuration::from_micros(1 + rng.below(30))),
            };
        }
        plan
    }

    /// Topology-aware [`FaultPlan::randomized`]: on a single-switch shape
    /// it delegates verbatim (identical draw sequence, so existing seeded
    /// plans do not move by a byte); on a multi-switch shape the kind draw
    /// widens to eight and may schedule [`FaultKind::SwitchDown`] and
    /// [`FaultKind::TrunkDown`] windows against the topology's actual
    /// switches and trunks, plus [`FaultKind::NodeDown`] and
    /// [`FaultKind::NicReset`] host-kill windows. Switch/trunk/node
    /// windows are capped at a quarter of the span so transports with
    /// bounded retry budgets — and hosts that must reboot before a
    /// post-plan recovery arc — can ride out the gap.
    pub fn randomized_topo(
        rng: &mut SimRng,
        base: SimTime,
        span: SimDuration,
        topo: &Topology,
    ) -> Self {
        if topo.is_single_switch() {
            return Self::randomized(rng, base, span, topo.nodes() as u32);
        }
        let nodes = topo.nodes() as u32;
        let trunks = topo.trunk_pairs();
        assert!(!trunks.is_empty(), "multi-switch topology has trunks");
        let mut plan = FaultPlan::new();
        let windows = rng.below(5);
        for _ in 0..windows {
            let at = base + SimDuration::from_nanos(rng.below(span.as_nanos()));
            let duration = SimDuration::from_nanos(rng.below(span.as_nanos() / 2).max(1_000));
            let short = SimDuration::from_nanos(duration.as_nanos().div_ceil(2).max(1_000));
            let node = NodeId(rng.below(nodes as u64) as u32);
            plan = match rng.below(8) {
                0 => plan.link_flap(node, at, duration),
                1 => plan.degrade(
                    node,
                    at,
                    duration,
                    SimDuration::from_micros(1 + rng.below(20)),
                    rng.unit() * 0.3,
                ),
                2 => plan.corrupt(at, duration, rng.unit() * 0.3),
                3 => plan.brownout(at, duration, SimDuration::from_micros(1 + rng.below(30))),
                4 => {
                    let sw = rng.below(topo.switches() as u64) as u32;
                    plan.switch_down(sw, at, short)
                }
                5 => {
                    let (a, b) = trunks[rng.below(trunks.len() as u64) as usize];
                    plan.trunk_down(a, b, at, short)
                }
                6 => plan.node_down(node, at, short),
                _ => plan.nic_reset(node, at, short),
            };
        }
        plan
    }
}

/// What the active fault set did to one frame on one hop.
pub(crate) enum HopFault {
    /// Frame passes, delayed by `extra` (degradation + brownout).
    Pass {
        /// Added latency on this hop.
        extra: SimDuration,
    },
    /// Frame dropped: the link is down.
    Down,
    /// Frame dropped: corrupted (failed CRC).
    Corrupt,
    /// Frame dropped: degradation-burst loss.
    Lost,
    /// Frame dropped: the endpoint host is crashed (node down / NIC
    /// reset) — no NIC exists to source or sink the frame.
    NodeDead,
}

/// Runtime fault state, boxed into the SAN once a non-empty plan is
/// installed. Holds the currently active windows (window edges push/pop
/// entries) and one dedicated fault RNG stream per node.
pub(crate) struct FaultState {
    active: Vec<FaultKind>,
    rngs: Vec<SimRng>,
}

impl FaultState {
    pub(crate) fn new(seed: u64, nodes: usize) -> Self {
        FaultState {
            active: Vec::new(),
            rngs: (0..nodes)
                .map(|n| SimRng::derive(seed, &format!("fabric-fault-n{n}")))
                .collect(),
        }
    }

    /// A window opened.
    pub(crate) fn begin(&mut self, kind: FaultKind) {
        self.active.push(kind);
    }

    /// A window closed: retire one matching active entry.
    pub(crate) fn end(&mut self, kind: FaultKind) {
        if let Some(pos) = self.active.iter().position(|k| *k == kind) {
            self.active.remove(pos);
        }
    }

    /// True while any window is open (used by tests).
    #[cfg(test)]
    fn any_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// True while a node-scoped window ([`FaultKind::NodeDown`] or
    /// [`FaultKind::NicReset`]) covers `node` — the node has no working
    /// NIC, so frames to or from it die at the fabric edge.
    pub(crate) fn node_dead(&self, node: NodeId) -> bool {
        self.active.iter().any(|k| k.node_scope() == Some(node))
    }

    /// True while a [`FaultKind::SwitchDown`] window covers switch `sw`.
    pub(crate) fn switch_down(&self, sw: u32) -> bool {
        self.active
            .iter()
            .any(|k| matches!(k, FaultKind::SwitchDown { switch } if *switch == sw))
    }

    /// True while a [`FaultKind::TrunkDown`] window covers the undirected
    /// trunk between `x` and `y` (order-insensitive).
    pub(crate) fn trunk_down(&self, x: u32, y: u32) -> bool {
        let (lo, hi) = (x.min(y), x.max(y));
        self.active
            .iter()
            .any(|k| matches!(k, FaultKind::TrunkDown { a, b } if *a == lo && *b == hi))
    }

    /// Summed [`FaultKind::PortDegrade`] latency currently active on
    /// switch `sw`'s ports (overlapping windows stack).
    pub(crate) fn port_degrade_extra(&self, sw: u32) -> SimDuration {
        self.active
            .iter()
            .filter_map(|k| match k {
                FaultKind::PortDegrade {
                    switch,
                    extra_latency,
                } if *switch == sw => Some(*extra_latency),
                _ => None,
            })
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Evaluate the active set for a frame entering the fabric on `src`'s
    /// uplink. Corruption is checked here (once per frame, at ingress);
    /// brownout latency is charged here too, since the uplink hop ends at
    /// the switch. `lossy` is false for loss-exempt control frames: a
    /// downed link still kills them (the wire is physically gone), but
    /// corruption and degradation loss honor the control channel's
    /// reliable-transport fiction, exactly like the configured loss model.
    pub(crate) fn on_uplink(&mut self, src: NodeId, lossy: bool) -> HopFault {
        self.on_hop(src, true, lossy)
    }

    /// Evaluate the active set for a frame leaving the switch on `dst`'s
    /// downlink.
    pub(crate) fn on_downlink(&mut self, dst: NodeId, lossy: bool) -> HopFault {
        self.on_hop(dst, false, lossy)
    }

    fn on_hop(&mut self, endpoint: NodeId, ingress: bool, lossy: bool) -> HopFault {
        let mut extra = SimDuration::ZERO;
        let mut corrupt_p = 0.0f64;
        let mut loss_p = 0.0f64;
        for k in &self.active {
            match *k {
                FaultKind::LinkDown { node } if node == endpoint => return HopFault::Down,
                FaultKind::NodeDown { node } | FaultKind::NicReset { node } if node == endpoint => {
                    return HopFault::NodeDead
                }
                FaultKind::Degrade {
                    node,
                    extra_latency,
                    extra_loss,
                } if node == endpoint => {
                    extra += extra_latency;
                    if lossy {
                        loss_p += extra_loss;
                    }
                }
                FaultKind::Corrupt { p } if ingress && lossy => corrupt_p += p,
                FaultKind::Brownout { extra_latency } if ingress => extra += extra_latency,
                _ => {}
            }
        }
        let rng = &mut self.rngs[endpoint.index()];
        if corrupt_p > 0.0 && rng.chance(corrupt_p.min(1.0)) {
            return HopFault::Corrupt;
        }
        if loss_p > 0.0 && rng.chance(loss_p.min(1.0)) {
            return HopFault::Lost;
        }
        HopFault::Pass { extra }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::default(), FaultPlan::new());
    }

    #[test]
    fn builders_append_windows() {
        let t0 = SimTime::ZERO + SimDuration::from_micros(10);
        let plan = FaultPlan::new()
            .link_flap(NodeId(0), t0, SimDuration::from_micros(50))
            .degrade(
                NodeId(1),
                t0,
                SimDuration::from_micros(5),
                SimDuration::from_micros(1),
                0.25,
            )
            .corrupt(t0, SimDuration::from_micros(5), 0.1)
            .brownout(t0, SimDuration::from_micros(5), SimDuration::from_micros(2));
        assert_eq!(plan.events().len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::LinkDown { node: NodeId(0) }
        );
    }

    #[test]
    fn randomized_is_deterministic_and_bounded() {
        let base = SimTime::ZERO + SimDuration::from_micros(100);
        let span = SimDuration::from_millis(2);
        let gen = |seed| {
            let mut rng = SimRng::derive(seed, "chaos-test");
            FaultPlan::randomized(&mut rng, base, span, 2)
        };
        // Same seed, same plan — across as many windows as it schedules.
        assert_eq!(gen(11), gen(11));
        // Different seeds eventually differ.
        assert!((0..32).any(|s| gen(s) != gen(s + 100)));
        for seed in 0..32 {
            let plan = gen(seed);
            assert!(plan.events().len() <= 4);
            for w in plan.events() {
                assert!(w.at >= base);
                assert!(w.at < base + span);
                assert!(w.duration >= SimDuration::from_micros(1));
                assert!(w.duration <= span);
                match w.kind {
                    FaultKind::LinkDown { node } | FaultKind::Degrade { node, .. } => {
                        assert!(node.0 < 2)
                    }
                    FaultKind::Corrupt { p } => assert!((0.0..=0.3).contains(&p)),
                    FaultKind::Brownout { .. } => {}
                    _ => panic!("randomized never draws switch-scoped kinds"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn corrupt_rejects_bad_probability() {
        let _ = FaultPlan::new().corrupt(SimTime::ZERO, SimDuration::from_micros(1), 1.5);
    }

    #[test]
    #[should_panic(expected = "must have extent")]
    fn zero_length_window_rejected() {
        let _ = FaultPlan::new().corrupt(SimTime::ZERO, SimDuration::ZERO, 0.5);
    }

    #[test]
    fn link_down_beats_everything_on_its_node_only() {
        let mut st = FaultState::new(1, 3);
        st.begin(FaultKind::LinkDown { node: NodeId(2) });
        assert!(matches!(st.on_uplink(NodeId(2), true), HopFault::Down));
        assert!(matches!(st.on_downlink(NodeId(2), true), HopFault::Down));
        // Control frames die on a downed link too.
        assert!(matches!(st.on_uplink(NodeId(2), false), HopFault::Down));
        assert!(matches!(
            st.on_uplink(NodeId(0), true),
            HopFault::Pass {
                extra: SimDuration::ZERO
            }
        ));
        st.end(FaultKind::LinkDown { node: NodeId(2) });
        assert!(!st.any_active());
        assert!(matches!(
            st.on_uplink(NodeId(2), true),
            HopFault::Pass { .. }
        ));
    }

    #[test]
    fn degradation_and_brownout_latencies_stack() {
        let mut st = FaultState::new(1, 3);
        st.begin(FaultKind::Degrade {
            node: NodeId(0),
            extra_latency: SimDuration::from_micros(3),
            extra_loss: 0.0,
        });
        st.begin(FaultKind::Brownout {
            extra_latency: SimDuration::from_micros(2),
        });
        match st.on_uplink(NodeId(0), true) {
            HopFault::Pass { extra } => assert_eq!(extra, SimDuration::from_micros(5)),
            _ => panic!("expected pass"),
        }
        // Brownout is charged at the switch (ingress hop) only.
        match st.on_downlink(NodeId(0), true) {
            HopFault::Pass { extra } => assert_eq!(extra, SimDuration::from_micros(3)),
            _ => panic!("expected pass"),
        }
    }

    #[test]
    fn corruption_only_rolls_at_ingress_on_lossy_frames() {
        let mut st = FaultState::new(7, 3);
        st.begin(FaultKind::Corrupt { p: 1.0 });
        assert!(matches!(st.on_uplink(NodeId(0), true), HopFault::Corrupt));
        assert!(matches!(
            st.on_downlink(NodeId(1), true),
            HopFault::Pass { .. }
        ));
        // Control frames keep their reliable-channel exemption.
        assert!(matches!(
            st.on_uplink(NodeId(0), false),
            HopFault::Pass { .. }
        ));
    }

    #[test]
    fn switch_scoped_builders_normalize_and_classify() {
        let t0 = SimTime::ZERO + SimDuration::from_micros(10);
        let d = SimDuration::from_micros(50);
        let plan = FaultPlan::new()
            .switch_down(3, t0, d)
            .trunk_down(5, 2, t0, d)
            .port_degrade(1, t0, d, SimDuration::from_micros(4));
        assert!(plan.has_switch_faults());
        assert!(plan.has_reroute_faults());
        assert_eq!(plan.events()[1].kind, FaultKind::TrunkDown { a: 2, b: 5 });
        assert!(plan.events()[0].kind.triggers_reroute());
        assert!(!plan.events()[2].kind.triggers_reroute());
        assert!(plan.events()[2].kind.is_switch_scoped());
        // Host-link kinds are neither switch-scoped nor reroute triggers.
        let host = FaultPlan::new().link_flap(NodeId(0), t0, d);
        assert!(!host.has_switch_faults());
        assert!(!host.has_reroute_faults());
        // Reroute defaults apply until overridden.
        assert_eq!(plan.reroute(), RerouteParams::default());
        let custom = RerouteParams {
            detection: SimDuration::from_micros(5),
            reconvergence: SimDuration::from_micros(7),
        };
        let plan = plan.with_reroute(custom);
        assert_eq!(plan.reroute().total(), SimDuration::from_micros(12));
    }

    #[test]
    fn fault_state_answers_switch_scoped_queries() {
        let mut st = FaultState::new(1, 2);
        st.begin(FaultKind::SwitchDown { switch: 4 });
        st.begin(FaultKind::TrunkDown { a: 1, b: 3 });
        st.begin(FaultKind::PortDegrade {
            switch: 2,
            extra_latency: SimDuration::from_micros(3),
        });
        st.begin(FaultKind::PortDegrade {
            switch: 2,
            extra_latency: SimDuration::from_micros(2),
        });
        assert!(st.switch_down(4));
        assert!(!st.switch_down(3));
        assert!(st.trunk_down(1, 3));
        assert!(st.trunk_down(3, 1), "trunk queries are order-insensitive");
        assert!(!st.trunk_down(1, 2));
        assert_eq!(st.port_degrade_extra(2), SimDuration::from_micros(5));
        assert_eq!(st.port_degrade_extra(4), SimDuration::ZERO);
        st.end(FaultKind::SwitchDown { switch: 4 });
        assert!(!st.switch_down(4));
        // Switch-scoped kinds never perturb host-link hop decisions.
        assert!(matches!(
            st.on_uplink(NodeId(0), true),
            HopFault::Pass {
                extra: SimDuration::ZERO
            }
        ));
    }

    #[test]
    fn randomized_topo_delegates_on_single_switch() {
        let base = SimTime::ZERO + SimDuration::from_micros(100);
        let span = SimDuration::from_millis(2);
        for seed in 0..16 {
            let mut a = SimRng::derive(seed, "topo-chaos");
            let mut b = SimRng::derive(seed, "topo-chaos");
            let star = Topology::star(2);
            assert_eq!(
                FaultPlan::randomized_topo(&mut a, base, span, &star),
                FaultPlan::randomized(&mut b, base, span, 2),
                "single-switch randomized_topo must not move a draw"
            );
        }
    }

    #[test]
    fn randomized_topo_draws_switch_windows_on_multi_switch() {
        use crate::params::LinkParams;
        let base = SimTime::ZERO + SimDuration::from_micros(100);
        let span = SimDuration::from_millis(2);
        let trunk = LinkParams {
            bandwidth_bps: 440_000_000,
            propagation: SimDuration::from_nanos(600),
            frame_overhead_bytes: 8,
            mtu: 64 * 1024,
        };
        let topo = Topology::fat_tree(3, 2, 2, trunk, crate::topo::PortLimits::default());
        let trunks = topo.trunk_pairs();
        let mut saw_switch_scoped = false;
        for seed in 0..64 {
            let mut rng = SimRng::derive(seed, "topo-chaos");
            let plan = FaultPlan::randomized_topo(&mut rng, base, span, &topo);
            let mut rng2 = SimRng::derive(seed, "topo-chaos");
            assert_eq!(
                plan,
                FaultPlan::randomized_topo(&mut rng2, base, span, &topo),
                "same seed, same plan"
            );
            for w in plan.events() {
                match w.kind {
                    FaultKind::SwitchDown { switch } => {
                        saw_switch_scoped = true;
                        assert!((switch as usize) < topo.switches());
                    }
                    FaultKind::TrunkDown { a, b } => {
                        saw_switch_scoped = true;
                        assert!(trunks.contains(&(a, b)), "trunk {a}-{b} must exist");
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_switch_scoped, "64 seeds must draw some switch windows");
    }

    #[test]
    fn node_scoped_builders_and_queries() {
        let t0 = SimTime::ZERO + SimDuration::from_micros(10);
        let d = SimDuration::from_micros(50);
        let plan = FaultPlan::new()
            .node_down(NodeId(1), t0, d)
            .nic_reset(NodeId(2), t0, d);
        assert!(plan.has_node_faults());
        assert!(!plan.has_switch_faults());
        assert!(!plan.has_reroute_faults());
        assert!(plan.events()[0].kind.is_node_scoped());
        assert_eq!(plan.events()[0].kind.node_scope(), Some(NodeId(1)));
        assert_eq!(plan.events()[1].kind.node_scope(), Some(NodeId(2)));
        assert!(!FaultKind::LinkDown { node: NodeId(1) }.is_node_scoped());

        let mut st = FaultState::new(1, 3);
        st.begin(FaultKind::NodeDown { node: NodeId(1) });
        assert!(st.node_dead(NodeId(1)));
        assert!(!st.node_dead(NodeId(0)));
        // Both directions die, control frames included: the NIC is gone.
        assert!(matches!(st.on_uplink(NodeId(1), true), HopFault::NodeDead));
        assert!(matches!(
            st.on_downlink(NodeId(1), false),
            HopFault::NodeDead
        ));
        assert!(matches!(
            st.on_uplink(NodeId(0), true),
            HopFault::Pass { .. }
        ));
        st.end(FaultKind::NodeDown { node: NodeId(1) });
        assert!(!st.node_dead(NodeId(1)));
        st.begin(FaultKind::NicReset { node: NodeId(2) });
        assert!(st.node_dead(NodeId(2)));
        assert!(matches!(
            st.on_downlink(NodeId(2), true),
            HopFault::NodeDead
        ));
        st.end(FaultKind::NicReset { node: NodeId(2) });
        assert!(!st.any_active());
    }

    #[test]
    fn randomized_topo_draws_node_windows_on_multi_switch() {
        use crate::params::LinkParams;
        let base = SimTime::ZERO + SimDuration::from_micros(100);
        let span = SimDuration::from_millis(2);
        let trunk = LinkParams {
            bandwidth_bps: 440_000_000,
            propagation: SimDuration::from_nanos(600),
            frame_overhead_bytes: 8,
            mtu: 64 * 1024,
        };
        let topo = Topology::fat_tree(3, 2, 2, trunk, crate::topo::PortLimits::default());
        let nodes = topo.nodes() as u32;
        let mut saw_node_scoped = false;
        for seed in 0..64 {
            let mut rng = SimRng::derive(seed, "topo-chaos-node");
            let plan = FaultPlan::randomized_topo(&mut rng, base, span, &topo);
            for w in plan.events() {
                if let Some(n) = w.kind.node_scope() {
                    saw_node_scoped = true;
                    assert!(n.0 < nodes, "victim node must exist");
                    // Host-kill windows are quarter-span-capped like
                    // switch windows, so recovery arcs can outlive them.
                    assert!(w.duration <= span / 4 + SimDuration::from_nanos(1));
                }
            }
        }
        assert!(saw_node_scoped, "64 seeds must draw some node windows");
    }

    #[test]
    fn overlapping_windows_retire_one_at_a_time() {
        let k = FaultKind::Corrupt { p: 1.0 };
        let mut st = FaultState::new(7, 3);
        st.begin(k);
        st.begin(k);
        st.end(k);
        assert!(st.any_active());
        st.end(k);
        assert!(!st.any_active());
    }
}
