//! # trace — deterministic message-lifecycle tracing and metrics
//!
//! A structured event recorder for the simulated VIA stack. Every layer
//! boundary a message crosses — doorbell ring, firmware scan, descriptor
//! fetch, address translation, DMA, wire, ACK, completion, interrupt — can
//! emit a fixed-size [`Record`] stamped with *sim time* (never wall clock),
//! correlated across layers and nodes by a stable [`MsgId`]. Because all
//! stamps are virtual and all seeds are content-keyed, a trace of a given
//! workload is byte-for-byte reproducible.
//!
//! ## Cost model
//!
//! A [`Tracer`] is either *attached* (it holds shared state) or *disabled*
//! (it holds nothing). Disabled is the default everywhere: every
//! [`Tracer::record`] call is then a single `Option` branch, so the hot
//! path of an untraced run stays allocation- and lock-free (pinned by the
//! `sim_perf` bench). When attached, lifecycle *counters* are always on,
//! while full span [`Record`]s go into a bounded ring buffer only when
//! [`TraceConfig::capture_spans`] is set.
//!
//! ## Consumers
//!
//! * [`chrome_trace_json`] renders records as Chrome trace-event JSON,
//!   loadable in Perfetto / `chrome://tracing`.
//! * [`Registry`] is a typed metrics registry (counters, gauges, and
//!   histograms built on [`simkit::stats::Histogram`]) with a single
//!   [`Registry::snapshot`] path; each attached tracer owns one.
//! * The `vibe` suite crate derives per-stage latency tables from records
//!   (the X-TRACE experiment), cross-validated against the probe-based
//!   X-BRK breakdown.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{EventClass, Histogram, SimDuration, SimTime};

/// Stable identity of one message across layers and nodes.
///
/// Correlation rule: a message is identified by the *sender's* coordinates
/// — the node that posted the send, the VI it was posted on, and the
/// sender-side sequence number. Receive-side records reconstruct the same
/// id from the frame header plus the fabric's source-node field, so tx and
/// rx records of one message always share a `MsgId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MsgId {
    /// Node that posted the send.
    pub src_node: u32,
    /// Sender-side VI index.
    pub vi: u32,
    /// Sender-side sequence number on that VI.
    pub seq: u64,
}

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}/vi{}/s{}", self.src_node, self.vi, self.seq)
    }
}

/// A layer-boundary event in a message's lifetime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum TracePoint {
    /// Descriptor validated and queued by `post_send`.
    SendPosted,
    /// Doorbell rung (MMIO write or kernel trap issued).
    DoorbellRing,
    /// NIC firmware picked the work queue up in its scan.
    FwScan,
    /// Descriptor DMA'd across the PCI bus into the NIC.
    DescFetch,
    /// Address translation served from NIC table / cache.
    XlateHit,
    /// Address translation missed the NIC cache (PTE fetched over PCI).
    XlateMiss,
    /// Payload DMA for one fragment began.
    DmaStart,
    /// Payload DMA for one fragment finished.
    DmaEnd,
    /// Fragment handed to the fabric.
    WireTx,
    /// Fragment delivered by the fabric to the destination NIC.
    WireRx,
    /// Fragment dropped by loss injection.
    WireDrop,
    /// Retransmit timer fired and the message was re-queued.
    Retransmit,
    /// ACK frame sent by the receiver.
    AckTx,
    /// ACK frame processed by the sender.
    AckRx,
    /// Last fragment landed in the receive buffer.
    RecvLanded,
    /// Completion written to a queue (send or receive side).
    CqCompletion,
    /// Interrupt delivered to wake a blocked waiter.
    Interrupt,
    /// A fault plan took a link (or the switch) down. aux = 1 for a node
    /// link, 2 for a switch brownout.
    LinkDown,
    /// The fault window closed and the link (or switch) came back.
    LinkUp,
    /// Frame dropped by CRC-failure corruption injection (distinct from
    /// congestion/loss drops).
    FrameCorrupt,
    /// The adaptive RTO backed off after a retransmit; aux = the new
    /// timeout in nanoseconds.
    RtoBackoff,
    /// A VI transitioned to the Error state; aux = descriptors flushed.
    ViError,
    /// One outstanding descriptor flushed with error status during the
    /// Error transition; aux = 0 for a send, 1 for a receive.
    ViFlush,
    /// A reliable send was parked by credit-based flow control (no receiver
    /// credits available); aux = the parked sequence number.
    CreditStall,
    /// An ACK-carried credit update released a parked send back onto the
    /// transmit path; aux = the released sequence number.
    CreditGrant,
}

impl TracePoint {
    /// Every point, in lifecycle order (fault/recovery points trail the
    /// message-lifecycle ones: new variants append so indices stay stable).
    pub const ALL: [TracePoint; 25] = [
        TracePoint::SendPosted,
        TracePoint::DoorbellRing,
        TracePoint::FwScan,
        TracePoint::DescFetch,
        TracePoint::XlateHit,
        TracePoint::XlateMiss,
        TracePoint::DmaStart,
        TracePoint::DmaEnd,
        TracePoint::WireTx,
        TracePoint::WireRx,
        TracePoint::WireDrop,
        TracePoint::Retransmit,
        TracePoint::AckTx,
        TracePoint::AckRx,
        TracePoint::RecvLanded,
        TracePoint::CqCompletion,
        TracePoint::Interrupt,
        TracePoint::LinkDown,
        TracePoint::LinkUp,
        TracePoint::FrameCorrupt,
        TracePoint::RtoBackoff,
        TracePoint::ViError,
        TracePoint::ViFlush,
        TracePoint::CreditStall,
        TracePoint::CreditGrant,
    ];

    /// The original message-lifecycle vocabulary (no fault/recovery
    /// points) — the stable row set of the X-TRACE lifecycle-count table.
    pub const LIFECYCLE: [TracePoint; 17] = [
        TracePoint::SendPosted,
        TracePoint::DoorbellRing,
        TracePoint::FwScan,
        TracePoint::DescFetch,
        TracePoint::XlateHit,
        TracePoint::XlateMiss,
        TracePoint::DmaStart,
        TracePoint::DmaEnd,
        TracePoint::WireTx,
        TracePoint::WireRx,
        TracePoint::WireDrop,
        TracePoint::Retransmit,
        TracePoint::AckTx,
        TracePoint::AckRx,
        TracePoint::RecvLanded,
        TracePoint::CqCompletion,
        TracePoint::Interrupt,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TracePoint::SendPosted => "send_posted",
            TracePoint::DoorbellRing => "doorbell_ring",
            TracePoint::FwScan => "fw_scan",
            TracePoint::DescFetch => "desc_fetch",
            TracePoint::XlateHit => "xlate_hit",
            TracePoint::XlateMiss => "xlate_miss",
            TracePoint::DmaStart => "dma_start",
            TracePoint::DmaEnd => "dma_end",
            TracePoint::WireTx => "wire_tx",
            TracePoint::WireRx => "wire_rx",
            TracePoint::WireDrop => "wire_drop",
            TracePoint::Retransmit => "retransmit",
            TracePoint::AckTx => "ack_tx",
            TracePoint::AckRx => "ack_rx",
            TracePoint::RecvLanded => "recv_landed",
            TracePoint::CqCompletion => "cq_completion",
            TracePoint::Interrupt => "interrupt",
            TracePoint::LinkDown => "link_down",
            TracePoint::LinkUp => "link_up",
            TracePoint::FrameCorrupt => "frame_corrupt",
            TracePoint::RtoBackoff => "rto_backoff",
            TracePoint::ViError => "vi_error",
            TracePoint::ViFlush => "vi_flush",
            TracePoint::CreditStall => "credit_stall",
            TracePoint::CreditGrant => "credit_grant",
        }
    }

    /// True for points that mark a fault/recovery rather than forward
    /// progress — rendered as instant markers, not span boundaries.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            TracePoint::WireDrop
                | TracePoint::Retransmit
                | TracePoint::XlateMiss
                | TracePoint::XlateHit
                | TracePoint::Interrupt
                | TracePoint::LinkDown
                | TracePoint::LinkUp
                | TracePoint::FrameCorrupt
                | TracePoint::RtoBackoff
                | TracePoint::ViError
                | TracePoint::ViFlush
                | TracePoint::CreditStall
                | TracePoint::CreditGrant
        )
    }
}

/// One fixed-size trace record. 40 bytes, `Copy`, no heap.
///
/// The stamp is **sim time only** — wall-clock never enters a record, which
/// is what makes traces deterministic artifacts rather than diagnostics.
/// Records may be emitted with a future stamp (e.g. `DmaEnd` is written
/// when the DMA is priced, stamped at its completion time), so consumers
/// sort by `at_ns` rather than relying on insertion order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// Virtual timestamp, nanoseconds since sim start.
    pub at_ns: u64,
    /// Which boundary fired.
    pub point: TracePoint,
    /// Node the record was emitted on.
    pub node: u32,
    /// Message this record belongs to (`None` for unattributed events).
    pub msg: Option<MsgId>,
    /// Point-specific payload: bytes for DMA/wire points, page number for
    /// translation points, zero otherwise.
    pub aux: u64,
}

/// Per-run capture policy.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Capture full span records (counters are always on once attached).
    pub capture_spans: bool,
    /// Ring-buffer capacity in records; the oldest records are overwritten
    /// (and counted in [`Tracer::dropped`]) once the ring is full.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capture_spans: true,
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Counters and metrics only — no span records.
    pub fn counters_only() -> Self {
        TraceConfig {
            capture_spans: false,
            capacity: 0,
        }
    }
}

/// Span-record ring plus always-on lifecycle counters.
struct TraceState {
    ring: Vec<Record>,
    /// Next write position when the ring is at capacity.
    head: usize,
    dropped: u64,
    counters: [u64; TracePoint::ALL.len()],
    registry: Registry,
}

struct TraceInner {
    config: TraceConfig,
    state: Mutex<TraceState>,
    /// Engine events fired per [`EventClass`], fed by the scheduler hook.
    engine_events: [AtomicU64; EventClass::ALL.len()],
}

/// Handle to a trace sink; cheap to clone and thread through every layer.
///
/// The default ([`Tracer::disabled`]) holds no state: `record` is a single
/// branch and nothing is retained.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceInner>>,
}

impl Tracer {
    /// A tracer that records nothing (the zero-overhead default).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An attached tracer with the given capture policy.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            inner: Some(Arc::new(TraceInner {
                config,
                state: Mutex::new(TraceState {
                    ring: Vec::with_capacity(config.capacity.min(1 << 20)),
                    head: 0,
                    dropped: 0,
                    counters: [0; TracePoint::ALL.len()],
                    registry: Registry::new(),
                }),
                engine_events: Default::default(),
            })),
        }
    }

    /// True when attached to a sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one record. A no-op (one branch) when disabled; when attached,
    /// the point counter always increments and the full record is kept only
    /// if [`TraceConfig::capture_spans`] is set.
    #[inline]
    pub fn record(&self, at: SimTime, point: TracePoint, node: u32, msg: Option<MsgId>, aux: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut st = inner.state.lock();
        st.counters[point.index()] += 1;
        if !inner.config.capture_spans {
            return;
        }
        let rec = Record {
            at_ns: at.as_nanos(),
            point,
            node,
            msg,
            aux,
        };
        if st.ring.len() < inner.config.capacity {
            st.ring.push(rec);
        } else if inner.config.capacity > 0 {
            let head = st.head;
            st.ring[head] = rec;
            st.head = (head + 1) % inner.config.capacity;
            st.dropped += 1;
        } else {
            st.dropped += 1;
        }
    }

    /// Lifetime count of one point (0 when disabled).
    pub fn count(&self, point: TracePoint) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().counters[point.index()],
            None => 0,
        }
    }

    /// All point counters in [`TracePoint::ALL`] order.
    pub fn counters(&self) -> [u64; TracePoint::ALL.len()] {
        match &self.inner {
            Some(inner) => inner.state.lock().counters,
            None => [0; TracePoint::ALL.len()],
        }
    }

    /// Records overwritten (or discarded) because the ring was full.
    pub fn dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.state.lock().dropped,
            None => 0,
        }
    }

    /// Copy of the retained records, oldest first (insertion order; sort by
    /// [`Record::at_ns`] for a chronological view — see [`Record`]).
    pub fn records(&self) -> Vec<Record> {
        match &self.inner {
            Some(inner) => {
                let st = inner.state.lock();
                let mut out = Vec::with_capacity(st.ring.len());
                out.extend_from_slice(&st.ring[st.head..]);
                out.extend_from_slice(&st.ring[..st.head]);
                out
            }
            None => Vec::new(),
        }
    }

    /// Discard retained records (counters and metrics keep accumulating).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut st = inner.state.lock();
            st.ring.clear();
            st.head = 0;
        }
    }

    /// Run `f` against the tracer's metrics registry. Returns `None` when
    /// disabled — metric updates cost nothing on the default path.
    pub fn metrics<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&mut inner.state.lock().registry))
    }

    /// The single snapshot path: point counters, engine event tallies, and
    /// every registered metric, in registration order. Empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let st = inner.state.lock();
        let mut snap = st.registry.snapshot();
        snap.points = TracePoint::ALL
            .iter()
            .map(|p| (p.name(), st.counters[p.index()]))
            .collect();
        snap.engine_events = EventClass::ALL
            .iter()
            .map(|c| {
                (
                    c.name(),
                    inner.engine_events[c.index()].load(Ordering::Relaxed),
                )
            })
            .collect();
        snap.records_dropped = st.dropped;
        snap
    }

    /// A scheduler hook tallying fired engine events per [`EventClass`]
    /// into this tracer, for [`simkit::Sim::set_event_hook`]. `None` when
    /// disabled (leave the engine unhooked).
    pub fn engine_hook(&self) -> Option<simkit::EventHook> {
        let inner = Arc::clone(self.inner.as_ref()?);
        Some(Arc::new(move |_at: SimTime, class: EventClass| {
            inner.engine_events[class.index()].fetch_add(1, Ordering::Relaxed);
        }))
    }
}

/// Opaque handle to a registered counter.
#[derive(Clone, Copy, Debug)]
pub struct CounterId(usize);
/// Opaque handle to a registered gauge.
#[derive(Clone, Copy, Debug)]
pub struct GaugeId(usize);
/// Opaque handle to a registered histogram.
#[derive(Clone, Copy, Debug)]
pub struct HistogramId(usize);

/// Typed metrics registry: monotonic counters, level gauges, and log-scaled
/// latency histograms ([`simkit::stats::Histogram`]). Registration returns
/// an id; updates are O(1) array indexing; [`Registry::snapshot`] is the
/// one read path.
#[derive(Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or find) the counter named `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Add `by` to a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Register (or find) the gauge named `name`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Set a gauge's level.
    pub fn set_gauge(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Register (or find) the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Record one duration into a histogram.
    pub fn observe(&mut self, id: HistogramId, d: SimDuration) {
        self.histograms[id.0].1.record(d);
    }

    /// Snapshot every metric in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| {
                    (
                        n.clone(),
                        HistogramSummary {
                            count: h.count(),
                            p50: h.percentile(50.0),
                            p99: h.percentile(99.0),
                            max: h.max(),
                        },
                    )
                })
                .collect(),
            points: Vec::new(),
            engine_events: Vec::new(),
            records_dropped: 0,
        }
    }
}

/// Digest of one histogram at snapshot time.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Approximate median (bucket upper bound).
    pub p50: SimDuration,
    /// Approximate 99th percentile (bucket upper bound).
    pub p99: SimDuration,
    /// Exact maximum.
    pub max: SimDuration,
}

/// Everything a tracer knows, read through one path ([`Tracer::snapshot`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Registered counters, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Registered gauges, in registration order.
    pub gauges: Vec<(String, i64)>,
    /// Registered histograms, digested.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Lifecycle point counters, in [`TracePoint::ALL`] order.
    pub points: Vec<(&'static str, u64)>,
    /// Scheduler events fired per [`simkit::EventClass`].
    pub engine_events: Vec<(&'static str, u64)>,
    /// Span records lost to ring overflow.
    pub records_dropped: u64,
}

/// Render records as Chrome trace-event JSON (the `{"traceEvents": [...]}`
/// envelope), loadable in Perfetto or `chrome://tracing`.
///
/// * Each node becomes a process (`pid` = node, named via metadata events).
/// * Each message becomes a track: consecutive records of one [`MsgId`]
///   (sorted by stamp) form `"X"` complete events named `a->b`, with
///   `tid` = the sender-side VI index.
/// * Fault points ([`TracePoint::is_instant`]) become `"i"` instant events
///   rather than span boundaries.
///
/// Timestamps are sim-nanoseconds rendered as microseconds with fixed
/// 3-digit precision, so output is deterministic for a given record set.
pub fn chrome_trace_json(records: &[Record]) -> String {
    let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
    let mut events: Vec<String> = Vec::new();

    // Stable chronological order: stamp, then insertion order (sort is
    // stable, so equal stamps keep emission order).
    let mut sorted: Vec<&Record> = records.iter().collect();
    sorted.sort_by_key(|r| r.at_ns);

    // Process metadata: one per node seen.
    let mut nodes: Vec<u32> = sorted.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for n in &nodes {
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{n},"tid":0,"args":{{"name":"node {n}"}}}}"#
        ));
    }

    // Group span-boundary records per message, preserving order.
    let mut msgs: Vec<MsgId> = sorted.iter().filter_map(|r| r.msg).collect();
    msgs.sort_unstable();
    msgs.dedup();
    for id in &msgs {
        let chain: Vec<&&Record> = sorted
            .iter()
            .filter(|r| r.msg == Some(*id) && !r.point.is_instant())
            .collect();
        for pair in chain.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            events.push(format!(
                r#"{{"name":"{}->{}","cat":"msg","ph":"X","pid":{},"tid":{},"ts":{},"dur":{},"args":{{"msg":"{}","aux":{}}}}}"#,
                a.point.name(),
                b.point.name(),
                a.node,
                id.vi,
                us(a.at_ns),
                us(b.at_ns - a.at_ns),
                id,
                a.aux,
            ));
        }
    }

    // Instant markers (drops, retransmits, translation outcomes,
    // interrupts) — scoped to their thread when attributed to a message.
    for r in &sorted {
        if !r.point.is_instant() {
            continue;
        }
        let (tid, msg) = match r.msg {
            Some(id) => (id.vi, format!("{id}")),
            None => (0, String::new()),
        };
        events.push(format!(
            r#"{{"name":"{}","cat":"mark","ph":"i","s":"t","pid":{},"tid":{},"ts":{},"args":{{"msg":"{}","aux":{}}}}}"#,
            r.point.name(),
            r.node,
            tid,
            us(r.at_ns),
            msg,
            r.aux,
        ));
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, point: TracePoint, node: u32, seq: u64) -> Record {
        Record {
            at_ns: at,
            point,
            node,
            msg: Some(MsgId {
                src_node: 0,
                vi: 1,
                seq,
            }),
            aux: 0,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.record(SimTime::ZERO, TracePoint::WireTx, 0, None, 0);
        assert!(!t.enabled());
        assert_eq!(t.count(TracePoint::WireTx), 0);
        assert!(t.records().is_empty());
        assert!(t.snapshot().points.is_empty());
        assert!(t.engine_hook().is_none());
        assert!(t.metrics(|_| ()).is_none());
    }

    #[test]
    fn counters_accumulate_without_span_capture() {
        let t = Tracer::new(TraceConfig::counters_only());
        for _ in 0..5 {
            t.record(SimTime::ZERO, TracePoint::DoorbellRing, 0, None, 0);
        }
        assert_eq!(t.count(TracePoint::DoorbellRing), 5);
        assert!(t.records().is_empty(), "spans must be gated off");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(TraceConfig {
            capture_spans: true,
            capacity: 3,
        });
        for i in 0..5u64 {
            t.record(SimTime::from_nanos(i), TracePoint::WireTx, 0, None, i);
        }
        assert_eq!(t.dropped(), 2);
        let recs = t.records();
        assert_eq!(recs.len(), 3);
        // Oldest two (aux 0, 1) were overwritten; order is oldest-first.
        assert_eq!(
            recs.iter().map(|r| r.aux).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn msgid_correlates_across_nodes() {
        let t = Tracer::new(TraceConfig::default());
        let id = MsgId {
            src_node: 0,
            vi: 3,
            seq: 7,
        };
        t.record(SimTime::from_nanos(10), TracePoint::WireTx, 0, Some(id), 64);
        t.record(SimTime::from_nanos(90), TracePoint::WireRx, 1, Some(id), 64);
        let recs = t.records();
        assert_eq!(recs[0].msg, recs[1].msg);
        assert_eq!(format!("{id}"), "n0/vi3/s7");
    }

    #[test]
    fn registry_roundtrip_and_snapshot() {
        let t = Tracer::new(TraceConfig::counters_only());
        t.metrics(|m| {
            let c = m.counter("msgs");
            m.inc(c, 3);
            let g = m.gauge("inflight");
            m.set_gauge(g, -2);
            let h = m.histogram("lat");
            m.observe(h, SimDuration::from_micros(10));
            m.observe(h, SimDuration::from_micros(100));
        });
        let snap = t.snapshot();
        assert_eq!(snap.counters, vec![("msgs".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("inflight".to_string(), -2)]);
        assert_eq!(snap.histograms.len(), 1);
        let (name, h) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(h.count, 2);
        assert_eq!(h.max, SimDuration::from_micros(100));
        // Re-registering by name returns the same metric.
        t.metrics(|m| {
            let c = m.counter("msgs");
            m.inc(c, 1);
        });
        assert_eq!(t.snapshot().counters[0].1, 4);
    }

    #[test]
    fn engine_hook_tallies_classes() {
        let t = Tracer::new(TraceConfig::counters_only());
        let hook = t.engine_hook().expect("attached tracer provides a hook");
        hook(SimTime::ZERO, EventClass::Fabric);
        hook(SimTime::ZERO, EventClass::Fabric);
        hook(SimTime::ZERO, EventClass::Doorbell);
        let snap = t.snapshot();
        let get = |name: &str| {
            snap.engine_events
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("fabric"), 2);
        assert_eq!(get("doorbell"), 1);
        assert_eq!(get("completion"), 0);
    }

    #[test]
    fn chrome_export_builds_spans_and_instants() {
        let records = vec![
            rec(100, TracePoint::SendPosted, 0, 1),
            rec(300, TracePoint::DoorbellRing, 0, 1),
            rec(2_500, TracePoint::WireTx, 0, 1),
            Record {
                at_ns: 2_600,
                point: TracePoint::WireDrop,
                node: 0,
                msg: Some(MsgId {
                    src_node: 0,
                    vi: 1,
                    seq: 1,
                }),
                aux: 64,
            },
            rec(9_000, TracePoint::WireRx, 1, 1),
        ];
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#""name":"send_posted->doorbell_ring""#));
        assert!(json.contains(r#""name":"wire_tx->wire_rx""#));
        assert!(json.contains(r#""ph":"X""#));
        // The drop is an instant marker, never a span boundary.
        assert!(json.contains(r#""name":"wire_drop","cat":"mark","ph":"i""#));
        assert!(!json.contains("wire_drop->"));
        // ts is microseconds with fixed sub-us digits: 2500 ns -> 2.500.
        assert!(json.contains(r#""ts":2.500"#));
        // Deterministic: same records, same bytes.
        assert_eq!(json, chrome_trace_json(&records));
    }

    #[test]
    fn future_dated_records_sort_into_place() {
        // DmaEnd is emitted before WireTx but stamped later than DmaStart;
        // the exporter must order by stamp.
        let records = vec![
            rec(100, TracePoint::DmaStart, 0, 1),
            rec(900, TracePoint::DmaEnd, 0, 1),
            rec(500, TracePoint::DescFetch, 0, 1),
        ];
        let json = chrome_trace_json(&records);
        // Chronological chain: dma_start(100) -> desc_fetch(500) -> dma_end(900).
        assert!(json.contains(r#""name":"dma_start->desc_fetch""#));
        assert!(json.contains(r#""name":"desc_fetch->dma_end""#));
        assert!(!json.contains(r#""name":"dma_end->desc_fetch""#));
        assert!(json.contains(r#""dur":0.400"#));
    }
}
