//! Shared plumbing for the paper-artifact bench targets.
//!
//! Each `cargo bench -p vibe-bench --bench <target>` regenerates one table
//! or figure of the paper as text (and notes the paper's reference values
//! where it reports any). `sim_perf` is the exception: it measures the
//! *simulator's* wall-clock performance with Criterion.

/// Print a bench-target banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("================================================================");
    println!("VIBe reproduction — {id}: {title}");
    println!("================================================================");
}

/// Run a registered suite experiment by id and print its artifact.
pub fn run_experiment(id: &str) {
    let exp = vibe::suite::find(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    banner(exp.id, exp.title);
    let t0 = std::time::Instant::now();
    let text = exp.run_text();
    println!("{text}");
    println!(
        "[regenerated in {:.2}s wall-clock]",
        t0.elapsed().as_secs_f64()
    );
}
