//! Ablation: doorbell mechanism (MMIO store vs. kernel trap) and firmware
//! scheduling (hardware FIFO vs. per-VI polling loop), holding the rest of
//! the architecture fixed. Isolates two of the per-post costs the paper's
//! base latency test aggregates.

use via::Profile;
use vibe::harness::{ping_pong, DtConfig};
use vibe::report::Table;
use vnic::{DoorbellKind, FirmwareModel};

fn lat(p: &Profile, size: u64, vis: usize) -> f64 {
    ping_pong(&DtConfig {
        iters: 40,
        active_vis: vis,
        ..DtConfig::base(p.clone(), size)
    })
    .latency_us
}

fn main() {
    vibe_bench::banner("A-DB", "ablation: doorbell path and firmware scheduling");
    let mut variants: Vec<Profile> = Vec::new();
    for (db_name, db) in [
        ("mmio", DoorbellKind::Mmio),
        ("trap", DoorbellKind::KernelTrap),
    ] {
        for (fw_name, fw) in [
            ("hw-fifo", FirmwareModel::clan()),
            ("polling-fw", FirmwareModel::bvia()),
        ] {
            let mut p = Profile::custom();
            p.name = Box::leak(format!("{db_name} + {fw_name}").into_boxed_str());
            p.doorbell = db;
            p.firmware = fw;
            variants.push(p);
        }
    }
    let mut t = Table::new(
        "one-way latency (us) by doorbell/firmware design",
        vec![
            "4 B, 1 VI".into(),
            "4 B, 32 VIs".into(),
            "4 KiB, 1 VI".into(),
        ],
    );
    for p in &variants {
        t.push(p.name, vec![lat(p, 4, 1), lat(p, 4, 32), lat(p, 4096, 1)]);
    }
    println!("{}", t.render());
    println!("Reading: the trap costs ~1.5 us of host time per post; the polling");
    println!("firmware adds ~1 us per open VI per transfer — the Fig 6 effect.");
}
