//! Regenerates the §3.2.5 benchmarks published in the companion technical
//! report (OSU-CISRC-10/00-TR20): MDS, ASY, RDMA, PIP, MTU, REL.
fn main() {
    for id in ["X-MDS", "X-ASY", "X-RDMA", "X-PIP", "X-MTU", "X-REL"] {
        vibe_bench::run_experiment(id);
    }
}
