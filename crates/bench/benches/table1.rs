//! Regenerates the paper artifact "T1". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("T1");
}
