//! Regenerates the paper artifact "F7". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("F7");
}
