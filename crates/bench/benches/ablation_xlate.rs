//! Ablation: the 2×2 address-translation design space of Banikazemi et al.
//! (CANPC'00, the paper's reference [5]) — translation performed by the
//! host or the NIC, with tables in host or NIC memory — plus a NIC-cache
//! capacity sweep. Everything else is held at the Berkeley-VIA
//! architecture, so differences are attributable to the translation design
//! alone. This is the experiment a VIA implementor would run before
//! choosing a design; the paper's Fig. 5 measures its visible symptom.

use simkit::SimDuration;
use via::Profile;
use vibe::harness::{ping_pong, DtConfig};
use vibe::report::Table;
use vnic::{TableLocation, Translator};

fn variant(
    name: &'static str,
    translator: Translator,
    tables: TableLocation,
    cache: usize,
) -> Profile {
    let mut p = Profile::custom();
    p.name = name;
    p.xlate.translator = translator;
    p.xlate.tables = tables;
    p.xlate.nic_cache_entries = cache;
    // Give the host/NIC lookup paths their BVIA-calibrated prices.
    p.xlate.host_lookup = SimDuration::from_nanos(250);
    p.xlate.nic_local_lookup = SimDuration::from_nanos(350);
    p
}

fn lat(p: &Profile, size: u64, reuse: u32) -> f64 {
    ping_pong(&DtConfig {
        iters: 40,
        warmup: 0,
        reuse_percent: reuse,
        ..DtConfig::base(p.clone(), size)
    })
    .latency_us
}

fn main() {
    vibe_bench::banner(
        "A-XL",
        "ablation: translation design (host/NIC × host/NIC tables, cache size)",
    );
    let designs = [
        variant("host-xlate", Translator::Host, TableLocation::HostMemory, 0),
        variant(
            "nic-xlate, NIC tables",
            Translator::Nic,
            TableLocation::NicMemory,
            0,
        ),
        variant(
            "nic-xlate, host tables, no cache",
            Translator::Nic,
            TableLocation::HostMemory,
            0,
        ),
        variant(
            "nic-xlate, host tables, 64-entry cache",
            Translator::Nic,
            TableLocation::HostMemory,
            64,
        ),
        variant(
            "nic-xlate, host tables, 256-entry cache",
            Translator::Nic,
            TableLocation::HostMemory,
            256,
        ),
        variant(
            "nic-xlate, host tables, 1024-entry cache",
            Translator::Nic,
            TableLocation::HostMemory,
            1024,
        ),
    ];
    let mut t = Table::new(
        "one-way latency (us) by translation design",
        vec![
            "4 B, reuse".into(),
            "4 B, fresh".into(),
            "28 KiB, reuse".into(),
            "28 KiB, fresh".into(),
        ],
    );
    for d in &designs {
        t.push(
            d.name,
            vec![
                lat(d, 4, 100),
                lat(d, 4, 0),
                lat(d, 28672, 100),
                lat(d, 28672, 0),
            ],
        );
    }
    println!("{}", t.render());
    println!("Reading: host translation and NIC-resident tables are reuse-insensitive;");
    println!("host tables + NIC translation live or die by the cache — exactly why the");
    println!("paper's buffer-reuse micro-benchmark exists (Sec 3.2.2).");
}
