//! Regenerates the paper artifact "F1-F2". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("F1-F2");
}
