//! Regenerates the paper artifact "F6". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("F6");
}
