//! Regenerates the extension experiments: get/put model (X-GETPUT), fan-in
//! scalability (X-SCALE), per-component breakdown (X-BRK), and the
//! message-passing layer study (X-MPL).
fn main() {
    for id in ["X-GETPUT", "X-SCALE", "X-BRK", "X-MPL"] {
        vibe_bench::run_experiment(id);
    }
}
