//! Regenerates the paper artifact "F5". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("F5");
}
