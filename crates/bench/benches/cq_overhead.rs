//! Regenerates the paper artifact "CQ". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("CQ");
}
