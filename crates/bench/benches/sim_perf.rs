//! Criterion wall-clock benchmarks of the simulator itself: event-queue
//! throughput, baton hand-off cost, fabric delivery, and the full VIA data
//! path. These are the only benches measuring *host* time — everything
//! else in this crate reports *virtual* time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fabric::{FaultPlan, LinkParams, NetParams, NodeId, PortLimits, San, Topology};
use simkit::{EventClass, Sim, SimDuration, SimTime, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, ViAttributes};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("simkit");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_and_run_10k_events", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let count = Arc::new(AtomicU64::new(0));
            for i in 0..10_000u64 {
                let count = Arc::clone(&count);
                sim.call_in(SimDuration::from_nanos(i % 977), move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            let report = sim.run();
            assert_eq!(count.load(Ordering::Relaxed), 10_000);
            report.events
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_and_run_10k_tagged_events", |b| {
        // Same workload, but every event carries an explicit class tag so
        // the per-class tally bookkeeping on the hot path is measured.
        b.iter(|| {
            let sim = Sim::new();
            let count = Arc::new(AtomicU64::new(0));
            for i in 0..10_000u64 {
                let count = Arc::clone(&count);
                let class = EventClass::ALL[(i % EventClass::ALL.len() as u64) as usize];
                sim.call_in_as(class, SimDuration::from_nanos(i % 977), move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            let report = sim.run();
            assert_eq!(count.load(Ordering::Relaxed), 10_000);
            report.events
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("cancel_heavy_10k_timers_90pct_cancelled", |b| {
        // The workload the slab arena exists for: a retransmit-style storm
        // where almost every timer is disarmed before its deadline. Cancel
        // must be O(1) (slot free + generation bump); the dead heap entries
        // are reaped lazily by the run loop.
        b.iter(|| {
            let sim = Sim::new();
            let count = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                let count = Arc::clone(&count);
                handles.push(sim.timer_in(
                    EventClass::Retransmit,
                    SimDuration::from_nanos(1 + i % 977),
                    move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    },
                ));
            }
            for (i, h) in handles.iter().enumerate() {
                if i % 10 != 0 {
                    assert!(h.cancel());
                }
            }
            let report = sim.run();
            assert_eq!(count.load(Ordering::Relaxed), 1_000);
            assert_eq!(report.cancelled(), 9_000);
            report.events
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("pooled_10k_small_closures", |b| {
        // Closures capturing <= SMALL_WORDS words land in the inline size
        // class: the schedule -> fire cycle allocates nothing once the slab
        // has grown. Compare against boxed_10k_oversize_closures to read
        // the per-event allocation cost directly.
        b.iter(|| {
            let sim = Sim::new();
            let count = Arc::new(AtomicU64::new(0));
            for i in 0..10_000u64 {
                let count = Arc::clone(&count);
                sim.call_in(SimDuration::from_nanos(i % 977), move |_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
            let report = sim.run();
            assert_eq!(report.sched.pool.boxed, 0);
            assert_eq!(count.load(Ordering::Relaxed), 10_000);
            report.events
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("boxed_10k_oversize_closures", |b| {
        // Same workload with a capture too large for either inline class,
        // forcing the legacy Box-per-event path.
        b.iter(|| {
            let sim = Sim::new();
            let count = Arc::new(AtomicU64::new(0));
            for i in 0..10_000u64 {
                let count = Arc::clone(&count);
                let ballast = [i; 32]; // 256 B capture > LARGE_WORDS * 8
                sim.call_in(SimDuration::from_nanos(i % 977), move |_| {
                    count.fetch_add(1 + ballast[31] * 0, Ordering::Relaxed);
                });
            }
            let report = sim.run();
            assert_eq!(report.sched.pool.boxed, 10_000);
            assert_eq!(count.load(Ordering::Relaxed), 10_000);
            report.events
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("pool_churn_arm_cancel_rearm_10k", |b| {
        // Retransmit-style churn: one logical timer armed, cancelled, and
        // re-armed 10k times (an ACK disarming the retx timer before each
        // new send). After the first arm grows one slot, every re-arm must
        // be served from that just-freed slot — the freelist hit the arena
        // exists for. The run loop then reaps the 10k dead heap entries.
        b.iter(|| {
            let sim = Sim::new();
            for i in 0..10_000u64 {
                let h = sim.timer_in(
                    EventClass::Retransmit,
                    SimDuration::from_nanos(1 + i % 977),
                    |_| {},
                );
                assert!(h.cancel());
            }
            let report = sim.run();
            let pool = report.sched.pool;
            assert!(pool.slot_reuse_rate() > 0.99, "{pool:?}");
            assert_eq!(report.cancelled(), 10_000);
            report.events
        });
    });
    g.finish();

    let mut g = c.benchmark_group("simkit-process");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("baton_1k_sleeps", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.spawn("p", None, |ctx| {
                for _ in 0..1_000 {
                    ctx.sleep(SimDuration::from_nanos(50));
                }
            });
            sim.run_to_completion().events
        });
    });
    g.finish();
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("deliver_1k_frames", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
                let count = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&count);
                san.attach(
                    NodeId(1),
                    Arc::new(move |_, _| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                (sim, san, count)
            },
            |(sim, san, count)| {
                for _ in 0..1_000 {
                    san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
                }
                sim.run();
                assert_eq!(count.load(Ordering::Relaxed), 1_000);
            },
            BatchSize::SmallInput,
        );
    });
    // The fault hooks must be free when no plan is armed: a suite run with
    // an empty FaultPlan takes the exact same send path as one with no
    // plan at all. Compare against `deliver_1k_frames` — any separation
    // between the two is overhead leaking into every fault-free benchmark.
    g.bench_function("deliver_1k_frames_empty_fault_plan", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
                san.install_faults(&FaultPlan::new());
                let count = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&count);
                san.attach(
                    NodeId(1),
                    Arc::new(move |_, _| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                (sim, san, count)
            },
            |(sim, san, count)| {
                for _ in 0..1_000 {
                    san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
                }
                sim.run();
                assert_eq!(count.load(Ordering::Relaxed), 1_000);
            },
            BatchSize::SmallInput,
        );
    });
    // Contrast case: a latency-only degrade window held open across the
    // whole run prices the armed-fault path (per-hop window lookup).
    g.bench_function("deliver_1k_frames_active_degrade", |b| {
        b.iter_batched(
            || {
                let sim = Sim::new();
                let san = San::new(sim.clone(), NetParams::myrinet(), 2, 1);
                san.install_faults(&FaultPlan::new().degrade(
                    NodeId(1),
                    SimTime::ZERO,
                    SimDuration::from_secs(3600),
                    SimDuration::from_micros(1),
                    0.0,
                ));
                let count = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&count);
                san.attach(
                    NodeId(1),
                    Arc::new(move |_, _| {
                        c2.fetch_add(1, Ordering::Relaxed);
                    }),
                );
                (sim, san, count)
            },
            |(sim, san, count)| {
                for _ in 0..1_000 {
                    san.send(NodeId(0), NodeId(1), 1024, Box::new(()));
                }
                sim.run();
                assert_eq!(count.load(Ordering::Relaxed), 1_000);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_via_datapath(c: &mut Criterion) {
    let mut g = c.benchmark_group("via");
    g.sample_size(20);
    for (name, profile) in [
        ("mvia", Profile::mvia()),
        ("bvia", Profile::bvia()),
        ("clan", Profile::clan()),
    ] {
        g.throughput(Throughput::Elements(100));
        g.bench_function(format!("{name}_100_pingpongs_4B"), |b| {
            b.iter(|| {
                let sim = Sim::new();
                let cluster = Cluster::new(sim.clone(), profile.clone(), 2, 1);
                let (pa, pb) = (cluster.provider(0), cluster.provider(1));
                {
                    let pb = pb.clone();
                    sim.spawn("server", Some(pb.cpu()), move |ctx| {
                        let vi = pb
                            .create_vi(ctx, ViAttributes::default(), None, None)
                            .unwrap();
                        let buf = pb.malloc(64);
                        let mh = pb
                            .register_mem(ctx, buf, 64, MemAttributes::default())
                            .unwrap();
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                            .unwrap();
                        pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                        for i in 0..100 {
                            vi.recv_wait(ctx, WaitMode::Poll);
                            if i < 99 {
                                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                                    .unwrap();
                            }
                            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                                .unwrap();
                            vi.send_wait(ctx, WaitMode::Poll);
                        }
                    });
                }
                {
                    let pa = pa.clone();
                    sim.spawn("client", Some(pa.cpu()), move |ctx| {
                        let vi = pa
                            .create_vi(ctx, ViAttributes::default(), None, None)
                            .unwrap();
                        pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                            .unwrap();
                        let buf = pa.malloc(64);
                        let mh = pa
                            .register_mem(ctx, buf, 64, MemAttributes::default())
                            .unwrap();
                        for _ in 0..100 {
                            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                                .unwrap();
                            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                                .unwrap();
                            vi.recv_wait(ctx, WaitMode::Poll);
                            vi.send_wait(ctx, WaitMode::Poll);
                        }
                    });
                }
                sim.run_to_completion().events
            });
        });
    }
    g.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The tracing pin: the same cLAN ping-pong workload as
    // `via/clan_100_pingpongs_4B`, run with the tracer detached (must sit
    // within noise of that baseline — `Tracer::record` is one branch),
    // with counters only, and with full span capture. Diff the three to
    // read the per-record cost directly.
    let run = |trace_config: Option<trace::TraceConfig>| {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 1);
        if let Some(cfg) = trace_config {
            cluster.enable_trace(cfg);
        }
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                let buf = pb.malloc(64);
                let mh = pb
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                    .unwrap();
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                for i in 0..100 {
                    vi.recv_wait(ctx, WaitMode::Poll);
                    if i < 99 {
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                            .unwrap();
                    }
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                    .unwrap();
                let buf = pa.malloc(64);
                let mh = pa
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                for _ in 0..100 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                        .unwrap();
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.recv_wait(ctx, WaitMode::Poll);
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        sim.run_to_completion().events
    };
    let mut g = c.benchmark_group("trace");
    g.sample_size(20);
    for (name, cfg) in [
        ("clan_100_pingpongs_4B_untraced", None),
        (
            "clan_100_pingpongs_4B_counters",
            Some(trace::TraceConfig::counters_only()),
        ),
        (
            "clan_100_pingpongs_4B_spans",
            Some(trace::TraceConfig::default()),
        ),
    ] {
        g.throughput(Throughput::Elements(100));
        g.bench_function(name, |b| b.iter(|| run(cfg)));
    }
    g.finish();
}

fn bench_credit_ledger(c: &mut Criterion) {
    // The credit-flow pin: the same cLAN ping-pong workload, but Reliable
    // Delivery (the credit-gated level), run with the ledger on (ample
    // credits — the shipped default) and off. The fast path is a counter
    // compare per reliable send; the two must sit within noise of each
    // other, or the ledger is taxing every send in the suite.
    let run = |credit_enabled: bool| {
        let mut profile = Profile::clan();
        profile.credit_flow.enabled = credit_enabled;
        let attrs = ViAttributes::reliable(via::Reliability::ReliableDelivery);
        let sim = Sim::new();
        let cluster = Cluster::new(sim.clone(), profile, 2, 1);
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
                let buf = pb.malloc(64);
                let mh = pb
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                    .unwrap();
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                for i in 0..100 {
                    vi.recv_wait(ctx, WaitMode::Poll);
                    if i < 99 {
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                            .unwrap();
                    }
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
                pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                    .unwrap();
                let buf = pa.malloc(64);
                let mh = pa
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                for _ in 0..100 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                        .unwrap();
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.recv_wait(ctx, WaitMode::Poll);
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        sim.run_to_completion().events
    };
    let mut g = c.benchmark_group("credit");
    g.sample_size(20);
    for (name, enabled) in [
        ("clan_rd_100_pingpongs_4B_ledger", true),
        ("clan_rd_100_pingpongs_4B_no_ledger", false),
    ] {
        g.throughput(Throughput::Elements(100));
        g.bench_function(name, |b| b.iter(|| run(enabled)));
    }
    g.finish();
}

fn bench_fused_fastpath(c: &mut Criterion) {
    // The fusing pin: the same cLAN ping-pong workload as
    // `via/clan_100_pingpongs_4B`, priced three ways. `fused` collapses
    // every send into one macro-event on each side (the shipped default);
    // `general` flips the knob off (`--no-fuse` / `VIBE_FUSE=0`) and walks
    // the full 7-hop chain; `guard_miss` keeps fusing enabled but arms a
    // fault window an hour past the workload, so every attempt evaluates
    // the whole guard chain and falls back — it must sit within noise of
    // `general`, or the guard is taxing every de-fused send in the suite.
    // Virtual-time results are byte-identical across all three legs (the
    // asserts pin the fuse ledger each way).
    let run = |fused: bool, guard_miss: bool| {
        via::fastpath::set_fuse(fused);
        let sim = Sim::new();
        let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 1);
        if guard_miss {
            // Latency-only degrade, zero extra delay, opening an hour
            // after the workload ends: behaviourally inert, but
            // `faults_installed` now holds and every attempt de-fuses.
            cluster.san().install_faults(&FaultPlan::new().degrade(
                NodeId(0),
                SimTime::ZERO + SimDuration::from_secs(3600),
                SimDuration::from_secs(1),
                SimDuration::ZERO,
                0.0,
            ));
        }
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                let buf = pb.malloc(64);
                let mh = pb
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                    .unwrap();
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                for i in 0..100 {
                    vi.recv_wait(ctx, WaitMode::Poll);
                    if i < 99 {
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                            .unwrap();
                    }
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                    .unwrap();
                let buf = pa.malloc(64);
                let mh = pa
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                for _ in 0..100 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                        .unwrap();
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4))
                        .unwrap();
                    vi.recv_wait(ctx, WaitMode::Poll);
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        let events = sim.run_to_completion().events;
        let fuse = sim.sched_stats().fuse;
        if fused && !guard_miss {
            assert!(fuse.hits > 0, "fused leg must actually fuse: {fuse:?}");
        } else {
            assert_eq!(fuse.hits, 0, "fallback leg must not fuse: {fuse:?}");
        }
        via::fastpath::set_fuse(true);
        events
    };
    let mut g = c.benchmark_group("fuse");
    g.sample_size(20);
    for (name, fused, guard_miss) in [
        ("clan_100_pingpongs_4B_fused", true, false),
        ("clan_100_pingpongs_4B_general", false, false),
        ("clan_100_pingpongs_4B_guard_miss", true, true),
    ] {
        g.throughput(Throughput::Elements(100));
        g.bench_function(name, |b| b.iter(|| run(fused, guard_miss)));
    }
    g.finish();
}

fn bench_sharded_engine(c: &mut Criterion) {
    // The sharding pin: the same 8-node VIA ring the X-SHARD experiment
    // runs, priced four ways. `ring_serial_baseline` is the pre-refactor
    // path (one plain `Sim`, no shard machinery anywhere). `ring_1shard`
    // drives the ShardedSim *bypass* — it must sit within noise of the
    // baseline, or the shard layer is taxing every single-shard run in the
    // suite. The 2-/4-shard legs report events/sec across the conservative
    // lookahead windows (same virtual-time result, different host cost).
    use vibe::shard_bench::{ring, ring_pinned, RING_NODES};
    let mut g = c.benchmark_group("shard");
    g.sample_size(20);
    const MSGS: u64 = 24;
    const SIZE: u64 = 1024;
    g.throughput(Throughput::Elements(RING_NODES as u64 * MSGS));
    g.bench_function("ring_serial_baseline", |b| {
        b.iter(|| {
            ring(Profile::clan(), RING_NODES, MSGS, SIZE, 3, 1)
                .per_node
                .len()
        });
    });
    g.throughput(Throughput::Elements(RING_NODES as u64 * MSGS));
    g.bench_function("ring_1shard_bypass", |b| {
        b.iter(|| {
            ring_pinned(Profile::clan(), RING_NODES, MSGS, SIZE, 3, 1)
                .per_node
                .len()
        });
    });
    for shards in [2usize, 4] {
        g.throughput(Throughput::Elements(RING_NODES as u64 * MSGS));
        g.bench_function(format!("ring_{shards}shards"), |b| {
            b.iter(|| {
                ring_pinned(Profile::clan(), RING_NODES, MSGS, SIZE, 3, shards)
                    .per_node
                    .len()
            });
        });
    }
    g.finish();
}

fn bench_topo(c: &mut Criterion) {
    // The buffered-switch hot path: the same 1k cross-fabric frames, once
    // over the legacy single-switch star (one hop, no port bookkeeping)
    // and once over a 2-level fat-tree (edge -> spine -> edge: three
    // store-and-forward switch traversals with per-port FIFO accounting
    // and ECMP selection per frame). The spread between the two IS the
    // per-hop cost of the topology layer — the number X-TOPO's 64-node
    // workloads pay millions of times.
    let mut g = c.benchmark_group("topo");
    g.throughput(Throughput::Elements(1_000));
    let trunk = LinkParams {
        bandwidth_bps: 440_000_000,
        propagation: SimDuration::from_nanos(600),
        frame_overhead_bytes: 8,
        mtu: 64 * 1024,
    };
    let shapes: [(&str, Topology); 2] = [
        ("star_1k_frames", Topology::star(8)),
        (
            "fat_tree_1k_frames",
            Topology::fat_tree(2, 4, 2, trunk, PortLimits::default()),
        ),
    ];
    for (name, topo) in shapes {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let sim = Sim::new();
                    let san = San::new_topo(sim.clone(), NetParams::clan(), topo.clone(), 1);
                    let count = Arc::new(AtomicU64::new(0));
                    let c2 = Arc::clone(&count);
                    san.attach(
                        NodeId(7),
                        Arc::new(move |_, _| {
                            c2.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                    (sim, san, count)
                },
                |(sim, san, count)| {
                    // Node 0 and node 7 sit on different edge switches in
                    // the fat-tree, so every frame crosses a spine there.
                    for _ in 0..1_000 {
                        san.send(NodeId(0), NodeId(7), 1024, Box::new(()));
                    }
                    sim.run();
                    assert_eq!(count.load(Ordering::Relaxed), 1_000);
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_mpl_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpl");
    g.sample_size(20);
    g.throughput(Throughput::Elements(50));
    g.bench_function("layer_50_pingpongs_256B", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let handles = mpl::Mpl::spawn_world(
                &sim,
                Profile::clan(),
                2,
                mpl::MplConfig::default(),
                1,
                |ctx, mut m| {
                    let buf = m.malloc(4096);
                    let mh = m.register(ctx, buf, 4096);
                    let peer = 1 - m.rank();
                    for _ in 0..50 {
                        if m.rank() == 0 {
                            m.send(ctx, peer, 1, buf, mh, 256);
                            m.recv(ctx, peer, 1, buf, mh, 4096);
                        } else {
                            m.recv(ctx, peer, 1, buf, mh, 4096);
                            m.send(ctx, peer, 1, buf, mh, 256);
                        }
                    }
                },
            );
            sim.run_to_completion();
            drop(handles);
        });
    });
    g.finish();
}

fn bench_session_layer(c: &mut Criterion) {
    // The session pin: with the heartbeat watchdog disabled (the default
    // in every paper profile), the crash-surviving session layer is pure
    // bookkeeping — a 17-byte epoch/seq header, a bounded unacked journal
    // and an ACK stream. The raw-VI leg runs the same per-message shape
    // (1 KiB payload out, ack-sized reply back) with none of that, so the
    // gap between the legs is exactly the no-fault session tax (one lazy
    // connect, the FIN/linger close, journal copies, header parsing); it
    // must stay a small constant within run-to-run noise — a widening gap
    // means the no-fault session fast path regressed.
    use via::{SessionParams, SessionReceiver, SessionSender};
    let mut g = c.benchmark_group("session");
    g.sample_size(20);
    const MSGS: u64 = 64;
    const SIZE: u64 = 1024;
    g.throughput(Throughput::Elements(MSGS));
    g.bench_function("raw_vi_64_msgs_1024B", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 1);
            let (pa, pb) = (cluster.provider(0), cluster.provider(1));
            {
                let pb = pb.clone();
                sim.spawn("server", Some(pb.cpu()), move |ctx| {
                    let vi = pb
                        .create_vi(ctx, ViAttributes::default(), None, None)
                        .unwrap();
                    let buf = pb.malloc(SIZE);
                    let mh = pb
                        .register_mem(ctx, buf, SIZE, MemAttributes::default())
                        .unwrap();
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, SIZE as u32))
                        .unwrap();
                    pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                    for i in 0..MSGS {
                        vi.recv_wait(ctx, WaitMode::Poll);
                        if i + 1 < MSGS {
                            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, SIZE as u32))
                                .unwrap();
                        }
                        // Ack-sized reply: the raw analogue of the session
                        // layer's per-message acknowledgment.
                        vi.post_send(ctx, Descriptor::send().segment(buf, mh, 17))
                            .unwrap();
                        vi.send_wait(ctx, WaitMode::Poll);
                    }
                });
            }
            {
                let pa = pa.clone();
                sim.spawn("client", Some(pa.cpu()), move |ctx| {
                    let vi = pa
                        .create_vi(ctx, ViAttributes::default(), None, None)
                        .unwrap();
                    pa.connect(ctx, &vi, NodeId(1), Discriminator(1), None)
                        .unwrap();
                    let buf = pa.malloc(SIZE);
                    let mh = pa
                        .register_mem(ctx, buf, SIZE, MemAttributes::default())
                        .unwrap();
                    for _ in 0..MSGS {
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, SIZE as u32))
                            .unwrap();
                        vi.post_send(ctx, Descriptor::send().segment(buf, mh, SIZE as u32))
                            .unwrap();
                        vi.recv_wait(ctx, WaitMode::Poll);
                        vi.send_wait(ctx, WaitMode::Poll);
                    }
                });
            }
            sim.run_to_completion().events
        });
    });
    g.bench_function("session_64_msgs_1024B", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 1);
            let (pa, pb) = (cluster.provider(0), cluster.provider(1));
            {
                let pb = pb.clone();
                sim.spawn("rx", Some(pb.cpu()), move |ctx| {
                    let mut r =
                        SessionReceiver::new(&pb, ctx, Discriminator(1), SessionParams::default())
                            .unwrap();
                    let mut got = 0u64;
                    while let Some(m) = r.recv(ctx) {
                        assert_eq!(m.len(), SIZE as usize);
                        got += 1;
                    }
                    assert_eq!(got, MSGS);
                    r.close(ctx);
                });
            }
            {
                let pa = pa.clone();
                sim.spawn("tx", Some(pa.cpu()), move |ctx| {
                    let mut s = SessionSender::new(
                        &pa,
                        ctx,
                        NodeId(1),
                        Discriminator(1),
                        SessionParams::default(),
                    )
                    .unwrap();
                    let payload = vec![0xABu8; SIZE as usize];
                    for _ in 0..MSGS {
                        s.send(ctx, &payload);
                    }
                    let st = s.close(ctx);
                    assert_eq!(st.acked, MSGS);
                    assert_eq!(st.reconnects, 0);
                });
            }
            sim.run_to_completion().events
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fabric,
    bench_via_datapath,
    bench_trace_overhead,
    bench_credit_ledger,
    bench_fused_fastpath,
    bench_sharded_engine,
    bench_topo,
    bench_mpl_layer,
    bench_session_layer
);
criterion_main!(benches);
