//! Regenerates the paper artifact "F4". See DESIGN.md's experiment index.
fn main() {
    vibe_bench::run_experiment("F4");
}
