//! Coherence tests of the page-migration DSM: single-writer serialization,
//! data persistence across migrations, contention storms on one page, and
//! disjoint-page parallelism.

use dsm::{run_world, Dsm, DsmConfig, PAGE_SIZE};
use simkit::Sim;
use via::Profile;

#[test]
fn shared_counter_sees_every_increment() {
    // The classic DSM smoke test: N ranks each increment a shared counter
    // K times; exclusive page ownership must serialize the updates so no
    // increment is lost.
    const RANKS: usize = 4;
    const PER_RANK: u64 = 25;
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::clan(),
        RANKS,
        DsmConfig::default(),
        1,
        |ctx, dsm| {
            for _ in 0..PER_RANK {
                dsm.update(ctx, 128, 8, |bytes| {
                    let v = u64::from_le_bytes(bytes.try_into().unwrap());
                    bytes.copy_from_slice(&(v + 1).to_le_bytes());
                });
            }
            // Rank 0 reads the final value after everyone is done; give the
            // others a synchronization grace period via a spin on the value.
            if dsm.rank() == 0 {
                loop {
                    let v = u64::from_le_bytes(dsm.read(ctx, 128, 8).try_into().unwrap());
                    if v == RANKS as u64 * PER_RANK {
                        return v;
                    }
                    ctx.sleep(simkit::SimDuration::from_micros(200));
                }
            }
            0
        },
    );
    run_world(&sim);
    assert_eq!(handles[0].expect_result(), RANKS as u64 * PER_RANK);
}

#[test]
fn data_persists_across_migrations() {
    // Rank 0 writes a pattern; rank 1 reads it; rank 1 overwrites; rank 0
    // reads the overwrite back — through four ownership migrations.
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::bvia(),
        2,
        DsmConfig::default(),
        2,
        |ctx, dsm| {
            let addr = 3 * PAGE_SIZE + 100; // page 3 (homed on rank 1)
            if dsm.rank() == 0 {
                dsm.write(ctx, addr, b"written by rank zero");
                // Wait for rank 1's overwrite.
                loop {
                    let got = dsm.read(ctx, addr, 20);
                    if &got[..] == b"rewritten by rank 1!" {
                        return true;
                    }
                    ctx.sleep(simkit::SimDuration::from_micros(300));
                }
            } else {
                // Wait for rank 0's pattern, then replace it.
                loop {
                    let got = dsm.read(ctx, addr, 20);
                    if &got[..] == b"written by rank zero" {
                        break;
                    }
                    ctx.sleep(simkit::SimDuration::from_micros(300));
                }
                dsm.write(ctx, addr, b"rewritten by rank 1!");
                true
            }
        },
    );
    run_world(&sim);
    for h in handles {
        assert!(h.expect_result());
    }
}

#[test]
fn one_hot_page_survives_a_contention_storm() {
    // Every rank hammers the same page concurrently: exercises home
    // forwarding, in-flight parking (pending_fwd), and hand-off chains.
    const RANKS: usize = 6;
    const PER_RANK: u64 = 12;
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::clan(),
        RANKS,
        DsmConfig::default(),
        3,
        |ctx, dsm| {
            let my_slot = 8 + 8 * dsm.rank() as u64; // distinct words, same page
            for i in 0..PER_RANK {
                dsm.update(ctx, my_slot, 8, |bytes| {
                    bytes.copy_from_slice(&(i + 1).to_le_bytes());
                });
                // Also bump the shared tally at offset 0.
                dsm.update(ctx, 0, 8, |bytes| {
                    let v = u64::from_le_bytes(bytes.try_into().unwrap());
                    bytes.copy_from_slice(&(v + 1).to_le_bytes());
                });
            }
            if dsm.rank() == 0 {
                loop {
                    let v = u64::from_le_bytes(dsm.read(ctx, 0, 8).try_into().unwrap());
                    if v == RANKS as u64 * PER_RANK {
                        // Verify every rank's last private word too.
                        let mut all = Vec::new();
                        for r in 0..RANKS {
                            let w = u64::from_le_bytes(
                                dsm.read(ctx, 8 + 8 * r as u64, 8).try_into().unwrap(),
                            );
                            all.push(w);
                        }
                        return all;
                    }
                    ctx.sleep(simkit::SimDuration::from_micros(500));
                }
            }
            Vec::new()
        },
    );
    run_world(&sim);
    let words = handles[0].expect_result();
    assert_eq!(words, vec![PER_RANK; 6]);
}

#[test]
fn disjoint_pages_do_not_interfere() {
    // Each rank works on its own page: after warm-up, every access is a
    // local hit and no pages move.
    const RANKS: usize = 4;
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::clan(),
        RANKS,
        DsmConfig::default(),
        4,
        |ctx, dsm| {
            // Each rank uses a page IT is the home of: zero faults at all.
            let page = dsm.rank() as u64; // home_of(page) == rank for page < ranks
            let addr = page * PAGE_SIZE;
            for i in 0..50u64 {
                dsm.write(ctx, addr, &i.to_le_bytes());
                let got = u64::from_le_bytes(dsm.read(ctx, addr, 8).try_into().unwrap());
                assert_eq!(got, i);
            }
            let s = dsm.stats();
            (s.faults, s.local_hits)
        },
    );
    run_world(&sim);
    for h in handles {
        let (faults, hits) = h.expect_result();
        assert_eq!(faults, 0, "home pages must never fault");
        assert_eq!(hits, 100);
    }
}

#[test]
fn page_spanning_access_is_correct() {
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::mvia(),
        2,
        DsmConfig::default(),
        5,
        |ctx, dsm| {
            if dsm.rank() == 0 {
                // Straddle pages 1|2 with a recognizable pattern.
                let data: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
                dsm.write(ctx, 2 * PAGE_SIZE - 300, &data);
                true
            } else {
                let want: Vec<u8> = (0..600).map(|i| (i % 251) as u8).collect();
                loop {
                    let got = dsm.read(ctx, 2 * PAGE_SIZE - 300, 600);
                    if got == want {
                        return true;
                    }
                    ctx.sleep(simkit::SimDuration::from_micros(500));
                }
            }
        },
    );
    run_world(&sim);
    for h in handles {
        assert!(h.expect_result());
    }
}

#[test]
fn stats_account_for_migrations() {
    let sim = Sim::new();
    let handles = Dsm::spawn_world(
        &sim,
        Profile::clan(),
        2,
        DsmConfig::default(),
        6,
        |ctx, dsm| {
            // Page 0 is homed at rank 0. Rank 1 pulls it, then rank 0
            // pulls it back: each side ships once.
            if dsm.rank() == 1 {
                dsm.write(ctx, 16, b"pull");
                // Stay alive until our pager has shipped the page back
                // (stats are shared with the pager, so we can observe it).
                while dsm.stats().pages_shipped == 0 {
                    ctx.sleep(simkit::SimDuration::from_micros(300));
                }
            } else {
                // Wait until rank 1 took the page, then take it back.
                loop {
                    ctx.sleep(simkit::SimDuration::from_micros(300));
                    let s = dsm.stats();
                    if s.pages_shipped >= 1 {
                        break;
                    }
                }
                let _ = dsm.read(ctx, 16, 4);
            }
            dsm.stats()
        },
    );
    run_world(&sim);
    let s0 = handles[0].expect_result();
    let s1 = handles[1].expect_result();
    assert!(
        s0.pages_shipped >= 1,
        "rank0 shipped page 0 to rank1: {s0:?}"
    );
    assert!(s1.pages_shipped >= 1, "rank1 shipped it back: {s1:?}");
    assert!(s0.faults >= 1 && s1.faults >= 1);
}
