//! # dsm — page-migration software distributed shared memory over VIA
//!
//! The last programming model on the VIBe paper's §5 list ("distributed
//! shared-memory programming model"), and the one its authors were
//! building themselves — their reference \[7\] is TreadMarks over VIA on
//! exactly the interconnects this workspace simulates.
//!
//! ## Model
//!
//! A flat space of 4 KiB pages is shared by N ranks. Coherence is
//! **single-writer ownership migration with home-based directories**:
//!
//! * every page has a *home* rank (`page % ranks`) whose server holds the
//!   directory entry (who owns the page right now);
//! * ranks access pages through [`Dsm::read`]/[`Dsm::write`]; access to an
//!   *owned* page is local and free, anything else triggers an ownership
//!   fault;
//! * a fault sends a request to the home; the home either answers from its
//!   own copy or forwards to the current owner, which ships the page (and
//!   ownership) straight to the requester;
//! * concurrent requests racing a page in flight are parked at the new
//!   owner and served once the page lands — the classic forwarding race.
//!
//! Each rank runs two simulated processes on its node: the *application*
//! (yours) and a *pager* that serves inbound requests — which is how real
//! DSMs stayed responsive while the application computed, and which
//! exercises the VIA layer with the multi-process traffic patterns the
//! paper's CQ and multi-VI benchmarks anticipate.
//!
//! Reads and writes copy in/out (no references into the page store), so a
//! page migrating between two accesses is always coherent: each access
//! re-acquires ownership. With a single writer per page at any instant,
//! writes to one page are trivially serialized.

#![warn(missing_docs)]

pub mod node;
pub mod wire;

pub use node::{run_world, Dsm, DsmConfig, DsmStats, PAGE_SIZE};
