//! The per-rank DSM node: application handle + pager process.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use simkit::{Notify, ProcessCtx, ProcessHandle, Sim, WaitMode};
use via::{
    Cluster, Cq, Descriptor, Discriminator, MemAttributes, MemHandle, Profile, Provider, QueueKind,
    Vi, ViAttributes, ViId,
};

use crate::wire::Msg;

/// Coherence granule (matches the testbed's virtual-memory page).
pub const PAGE_SIZE: u64 = 4096;

/// World configuration.
#[derive(Clone, Copy, Debug)]
pub struct DsmConfig {
    /// Number of shared pages.
    pub pages: u64,
    /// Pre-posted receive slots per lane.
    pub ring_slots: usize,
}

impl Default for DsmConfig {
    fn default() -> Self {
        DsmConfig {
            pages: 64,
            ring_slots: 8,
        }
    }
}

/// Per-rank counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DsmStats {
    /// Accesses satisfied by an already-owned page.
    pub local_hits: u64,
    /// Accesses that had to acquire ownership remotely.
    pub faults: u64,
    /// Pages this rank shipped to others.
    pub pages_shipped: u64,
    /// Requests this rank's home directory served.
    pub directory_requests: u64,
    /// Forwards parked because the page was still in flight.
    pub parked_forwards: u64,
}

struct NodeState {
    /// Pages this rank currently owns (data in `store`).
    owned: HashSet<u64>,
    /// Local copies of owned pages (allocated lazily, zero-filled).
    store: HashMap<u64, Vec<u8>>,
    /// For pages homed here: the current owner per the directory.
    directory: HashMap<u64, u32>,
    /// Forwards awaiting a page that is in flight to this rank.
    pending_fwd: HashMap<u64, VecDeque<u32>>,
    /// A just-landed page reserved for the faulting application access.
    reserved_for_app: Option<u64>,
    /// The page the application has an outstanding request for (at most
    /// one: the application API is blocking). Suppresses duplicate
    /// requests when the arrival Notify delivers a banked/stale signal.
    fault_outstanding: Option<u64>,
    stats: DsmStats,
}

struct Lane {
    vi: Vi,
    ring: Vec<(u64, MemHandle)>,
}

/// Shared plumbing between the application handle and the pager.
struct Shared {
    provider: Provider,
    rank: u32,
    ranks: u32,
    cfg: DsmConfig,
    state: Mutex<NodeState>,
    /// Signaled by the pager whenever a page lands.
    arrivals: Notify,
    /// Application's outbound lanes (this node's endpoint; the app is the
    /// only sender on them).
    app_tx: Vec<Option<Vi>>,
    /// World-wide count of application processes that have finished; the
    /// pagers stop only when every rank's application is done (a pager
    /// must keep serving remote faults after its own application exits).
    finished_apps: Arc<std::sync::atomic::AtomicUsize>,
}

/// Application-side handle to the shared memory.
pub struct Dsm {
    shared: Arc<Shared>,
    /// App-side registered send buffer.
    send_buf: (u64, MemHandle),
}

const SLOT_LEN: u64 = PAGE_SIZE + 64;

fn home_of(page: u64, ranks: u32) -> u32 {
    (page % ranks as u64) as u32
}

fn send_msg(ctx: &mut ProcessCtx, provider: &Provider, vi: &Vi, buf: (u64, MemHandle), msg: &Msg) {
    let bytes = msg.encode();
    provider.mem_write(buf.0, &bytes);
    vi.post_send(
        ctx,
        Descriptor::send().segment(buf.0, buf.1, bytes.len() as u32),
    )
    .expect("dsm send post");
    let comp = vi.send_wait(ctx, WaitMode::Poll);
    assert!(comp.is_ok(), "dsm send: {:?}", comp.status);
}

impl Dsm {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.shared.rank as usize
    }

    /// World size.
    pub fn ranks(&self) -> usize {
        self.shared.ranks as usize
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DsmStats {
        self.shared.state.lock().stats
    }

    /// Total shared bytes.
    pub fn size(&self) -> u64 {
        self.shared.cfg.pages * PAGE_SIZE
    }

    /// Read `len` bytes at shared address `addr` (may span pages).
    pub fn read(&self, ctx: &mut ProcessCtx, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cursor = addr;
        let end = addr + len as u64;
        assert!(end <= self.size(), "read past the shared segment");
        while cursor < end {
            let page = cursor / PAGE_SIZE;
            let off = (cursor % PAGE_SIZE) as usize;
            let take = ((PAGE_SIZE as usize - off) as u64).min(end - cursor) as usize;
            self.with_owned_page(ctx, page, |data| {
                out.extend_from_slice(&data[off..off + take]);
            });
            ctx.busy(self.shared.provider.profile().host.copy_time(take as u64));
            cursor += take as u64;
        }
        out
    }

    /// Write `data` at shared address `addr` (may span pages).
    pub fn write(&self, ctx: &mut ProcessCtx, addr: u64, data: &[u8]) {
        let end = addr + data.len() as u64;
        assert!(end <= self.size(), "write past the shared segment");
        let mut cursor = addr;
        let mut rest = data;
        while !rest.is_empty() {
            let page = cursor / PAGE_SIZE;
            let off = (cursor % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min(rest.len());
            let chunk = &rest[..take];
            self.with_owned_page_mut(ctx, page, |dst| {
                dst[off..off + take].copy_from_slice(chunk);
            });
            ctx.busy(self.shared.provider.profile().host.copy_time(take as u64));
            cursor += take as u64;
            rest = &rest[take..];
        }
    }

    /// Atomically read-modify-write up to one page worth of bytes (the
    /// ownership lock makes the page exclusive for the closure's duration).
    pub fn update(&self, ctx: &mut ProcessCtx, addr: u64, len: usize, f: impl FnOnce(&mut [u8])) {
        let page = addr / PAGE_SIZE;
        let off = (addr % PAGE_SIZE) as usize;
        assert!(
            off + len <= PAGE_SIZE as usize,
            "update must stay within one page"
        );
        self.with_owned_page_mut(ctx, page, |dst| f(&mut dst[off..off + len]));
        ctx.busy(self.shared.provider.profile().host.copy_time(len as u64));
    }

    fn with_owned_page<R>(&self, ctx: &mut ProcessCtx, page: u64, f: impl FnOnce(&[u8]) -> R) -> R {
        self.acquire(ctx, page);
        let mut st = self.shared.state.lock();
        debug_assert!(st.owned.contains(&page));
        let data = st
            .store
            .entry(page)
            .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
        let r = f(data);
        drop(st);
        self.after_access(ctx, page);
        r
    }

    fn with_owned_page_mut<R>(
        &self,
        ctx: &mut ProcessCtx,
        page: u64,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        self.acquire(ctx, page);
        let mut st = self.shared.state.lock();
        debug_assert!(st.owned.contains(&page));
        let data = st
            .store
            .entry(page)
            .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
        let r = f(data);
        drop(st);
        self.after_access(ctx, page);
        r
    }

    /// Ensure this rank owns `page`, faulting it over if necessary.
    fn acquire(&self, ctx: &mut ProcessCtx, page: u64) {
        assert!(page < self.shared.cfg.pages, "page out of range");
        let me = self.shared.rank;
        let home = home_of(page, self.shared.ranks);
        loop {
            // Fast path.
            {
                let mut st = self.shared.state.lock();
                if st.owned.contains(&page) {
                    st.stats.local_hits += 1;
                    return;
                }
            }
            // Fault: issue exactly one request, then wait for the arrival.
            // (The arrival Notify can carry banked signals from earlier
            // faults, so a wake-up without ownership must NOT re-request.)
            let to_send: Option<(usize, Msg)> = {
                let mut st = self.shared.state.lock();
                if st.fault_outstanding == Some(page) {
                    None
                } else {
                    st.fault_outstanding = Some(page);
                    st.stats.faults += 1;
                    if home == me {
                        // We are the home: consult our own directory.
                        let owner = *st.directory.get(&page).unwrap_or(&home);
                        st.directory.insert(page, me);
                        st.stats.directory_requests += 1;
                        if owner == me {
                            // Directory says us, but we do not hold it: the
                            // page is already in flight to us — just wait.
                            None
                        } else {
                            Some((
                                owner as usize,
                                Msg::Fwd {
                                    page,
                                    requester: me,
                                },
                            ))
                        }
                    } else {
                        Some((
                            home as usize,
                            Msg::Req {
                                page,
                                requester: me,
                            },
                        ))
                    }
                }
            };
            if let Some((dst, msg)) = to_send {
                let vi = self.shared.app_tx[dst].as_ref().expect("lane").clone();
                send_msg(ctx, &self.shared.provider, &vi, self.send_buf, &msg);
            }
            // Wait until the pager lands a page, then re-check ownership.
            self.shared.arrivals.wait(ctx, WaitMode::Block);
        }
    }

    /// Post-access bookkeeping: release the app reservation and hand the
    /// page to any requesters that queued while it was in flight.
    fn after_access(&self, ctx: &mut ProcessCtx, page: u64) {
        let (ship_to, refwd): (Option<u32>, Vec<u32>) = {
            let mut st = self.shared.state.lock();
            if st.reserved_for_app == Some(page) {
                st.reserved_for_app = None;
            }
            let Some(mut queue) = st.pending_fwd.remove(&page) else {
                return;
            };
            let Some(first) = queue.pop_front() else {
                return;
            };
            // Ownership moves to `first`; later queued requesters chase it.
            st.owned.remove(&page);
            st.stats.pages_shipped += 1;
            (Some(first), queue.into_iter().collect())
        };
        let Some(first) = ship_to else { return };
        let data = {
            let mut st = self.shared.state.lock();
            st.store.remove(&page).expect("owned page has data")
        };
        let vi = self.shared.app_tx[first as usize]
            .as_ref()
            .expect("lane")
            .clone();
        send_msg(
            ctx,
            &self.shared.provider,
            &vi,
            self.send_buf,
            &Msg::Page { page, data },
        );
        for chaser in refwd {
            let vi = self.shared.app_tx[first as usize]
                .as_ref()
                .expect("lane")
                .clone();
            send_msg(
                ctx,
                &self.shared.provider,
                &vi,
                self.send_buf,
                &Msg::Fwd {
                    page,
                    requester: chaser,
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// Pager.
// ---------------------------------------------------------------------

struct Pager {
    shared: Arc<Shared>,
    cq: Cq,
    mesh: Vec<Option<Lane>>,
    app_rx: Vec<Option<Lane>>,
    send_buf: (u64, MemHandle),
}

impl Pager {
    fn classify(&self, vi_id: ViId) -> Option<(usize, bool)> {
        for (r, l) in self.mesh.iter().enumerate() {
            if let Some(l) = l {
                if l.vi.id() == vi_id {
                    return Some((r, true));
                }
            }
        }
        for (r, l) in self.app_rx.iter().enumerate() {
            if let Some(l) = l {
                if l.vi.id() == vi_id {
                    return Some((r, false));
                }
            }
        }
        None
    }

    fn run(&mut self, ctx: &mut ProcessCtx) {
        loop {
            // Drain ready completions; park briefly when idle so the stop
            // flag is observed promptly once the applications finish.
            let Some((vi_id, kind)) = self.cq.done(ctx) else {
                if self
                    .shared
                    .finished_apps
                    .load(std::sync::atomic::Ordering::Relaxed)
                    >= self.shared.ranks as usize
                {
                    return;
                }
                ctx.sleep(simkit::SimDuration::from_micros(5));
                continue;
            };
            if kind != QueueKind::Recv {
                continue;
            }
            let Some((src, is_mesh)) = self.classify(vi_id) else {
                continue;
            };
            let lane = if is_mesh {
                self.mesh[src].as_mut().expect("lane")
            } else {
                self.app_rx[src].as_mut().expect("lane")
            };
            let comp = lane.vi.recv_done(ctx).expect("cq said so");
            assert!(comp.is_ok(), "pager recv: {:?}", comp.status);
            let slot = lane.ring.remove(0);
            lane.ring.push(slot);
            let msg = Msg::decode(&self.shared.provider.mem_read(slot.0, comp.length));
            let vi = lane.vi.clone();
            vi.post_recv(
                ctx,
                Descriptor::recv().segment(slot.0, slot.1, SLOT_LEN as u32),
            )
            .expect("ring repost");
            self.handle(ctx, msg);
        }
    }

    fn handle(&mut self, ctx: &mut ProcessCtx, msg: Msg) {
        match msg {
            Msg::Req { page, requester } => {
                // We are the home: route per the directory.
                let action = {
                    let mut st = self.shared.state.lock();
                    st.stats.directory_requests += 1;
                    let owner = *st
                        .directory
                        .get(&page)
                        .unwrap_or(&home_of(page, self.shared.ranks));
                    if owner == requester {
                        // Stale/duplicate request: the requester already
                        // owns (or is about to receive) the page.
                        return;
                    }
                    st.directory.insert(page, requester);
                    if owner == self.shared.rank {
                        if st.owned.remove(&page) && st.reserved_for_app != Some(page) {
                            st.stats.pages_shipped += 1;
                            let data = st
                                .store
                                .remove(&page)
                                .unwrap_or_else(|| vec![0; PAGE_SIZE as usize]);
                            Some((requester, Msg::Page { page, data }))
                        } else {
                            // In flight to us, or reserved for our app:
                            // park the request.
                            if st.reserved_for_app == Some(page) {
                                st.owned.insert(page);
                            }
                            st.stats.parked_forwards += 1;
                            st.pending_fwd.entry(page).or_default().push_back(requester);
                            None
                        }
                    } else {
                        Some((owner, Msg::Fwd { page, requester }))
                    }
                };
                if let Some((dst, m)) = action {
                    self.ship(ctx, dst as usize, &m);
                }
            }
            Msg::Fwd { page, requester } => {
                if requester == self.shared.rank {
                    return; // stale self-forward; we hold or will hold it
                }
                let action = {
                    let mut st = self.shared.state.lock();
                    if st.owned.contains(&page) && st.reserved_for_app != Some(page) {
                        st.owned.remove(&page);
                        st.stats.pages_shipped += 1;
                        let data = st
                            .store
                            .remove(&page)
                            .unwrap_or_else(|| vec![0; PAGE_SIZE as usize]);
                        Some(Msg::Page { page, data })
                    } else {
                        st.stats.parked_forwards += 1;
                        st.pending_fwd.entry(page).or_default().push_back(requester);
                        None
                    }
                };
                if let Some(m) = action {
                    self.ship(ctx, requester as usize, &m);
                }
            }
            Msg::Page { page, data } => {
                {
                    let mut st = self.shared.state.lock();
                    st.owned.insert(page);
                    st.store.insert(page, data);
                    st.reserved_for_app = Some(page);
                    if st.fault_outstanding == Some(page) {
                        st.fault_outstanding = None;
                    }
                }
                self.shared.arrivals.signal(ctx.sim());
            }
        }
    }

    fn ship(&self, ctx: &mut ProcessCtx, dst: usize, msg: &Msg) {
        let vi = self.mesh[dst].as_ref().expect("mesh lane").vi.clone();
        send_msg(ctx, &self.shared.provider, &vi, self.send_buf, msg);
    }
}

// ---------------------------------------------------------------------
// World bring-up.
// ---------------------------------------------------------------------

impl Dsm {
    /// Build a DSM world: a `ranks`-node cluster on `profile`, one
    /// application process per rank running `body`, plus one pager process
    /// per rank. Drive the simulation with [`run_world`], not
    /// `run_to_completion` (pagers exit via a stop flag once every
    /// application returned).
    pub fn spawn_world<F, R>(
        sim: &Sim,
        profile: Profile,
        ranks: usize,
        cfg: DsmConfig,
        seed: u64,
        body: F,
    ) -> Vec<ProcessHandle<R>>
    where
        F: Fn(&mut ProcessCtx, Dsm) -> R + Clone + Send + 'static,
        R: Send + 'static,
    {
        assert!(ranks >= 2);
        let cluster = Cluster::new(sim.clone(), profile, ranks, seed);
        let finished = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        (0..ranks)
            .map(|rank| {
                let provider = cluster.provider(rank);
                let body = body.clone();
                let ranks = ranks as u32;
                let finished = Arc::clone(&finished);
                sim.spawn(format!("dsm-app{rank}"), Some(provider.cpu()), move |ctx| {
                    let (dsm, pager) = build_node(
                        ctx,
                        provider,
                        rank as u32,
                        ranks,
                        cfg,
                        Arc::clone(&finished),
                    );
                    let shared = Arc::clone(&dsm.shared);
                    let sim2 = ctx.sim().clone();
                    let mut pager = pager;
                    sim2.spawn(
                        format!("dsm-pager{rank}"),
                        Some(shared.provider.cpu()),
                        move |pctx| pager.run(pctx),
                    );
                    let out = body(ctx, dsm);
                    shared
                        .finished_apps
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    out
                })
            })
            .collect()
    }
}

fn build_node(
    ctx: &mut ProcessCtx,
    provider: Provider,
    rank: u32,
    ranks: u32,
    cfg: DsmConfig,
    finished_apps: Arc<std::sync::atomic::AtomicUsize>,
) -> (Dsm, Pager) {
    let cq = provider
        .create_cq(ctx, (ranks as usize * cfg.ring_slots * 2).max(64))
        .expect("pager cq");
    let mut mesh: Vec<Option<Lane>> = (0..ranks).map(|_| None).collect();
    let mut app_rx: Vec<Option<Lane>> = (0..ranks).map(|_| None).collect();
    let mut app_tx: Vec<Option<Vi>> = (0..ranks).map(|_| None).collect();
    let attrs = ViAttributes::default();
    let make_lane = |ctx: &mut ProcessCtx, vi: &Vi, provider: &Provider| -> Vec<(u64, MemHandle)> {
        let mut ring = Vec::with_capacity(cfg.ring_slots);
        for _ in 0..cfg.ring_slots {
            let va = provider.malloc(SLOT_LEN);
            let mh = provider
                .register_mem(ctx, va, SLOT_LEN, MemAttributes::default())
                .expect("slot");
            vi.post_recv(ctx, Descriptor::recv().segment(va, mh, SLOT_LEN as u32))
                .expect("slot post");
            ring.push((va, mh));
        }
        ring
    };
    for peer in 0..ranks {
        if peer == rank {
            continue;
        }
        let mesh_vi = provider.create_vi(ctx, attrs, None, Some(&cq)).expect("vi");
        let app_vi = provider.create_vi(ctx, attrs, None, Some(&cq)).expect("vi");
        let (lo, hi) = (rank.min(peer), rank.max(peer));
        let pair = (lo * ranks + hi) as u64;
        let (d_mesh, d_app) = (Discriminator(pair * 2), Discriminator(pair * 2 + 1));
        if rank < peer {
            provider
                .connect(ctx, &mesh_vi, fabric::NodeId(peer), d_mesh, None)
                .expect("connect mesh");
            provider
                .connect(ctx, &app_vi, fabric::NodeId(peer), d_app, None)
                .expect("connect app lane");
        } else {
            provider.accept(ctx, &mesh_vi, d_mesh).expect("accept mesh");
            provider
                .accept(ctx, &app_vi, d_app)
                .expect("accept app lane");
        }
        let mesh_ring = make_lane(ctx, &mesh_vi, &provider);
        let app_ring = make_lane(ctx, &app_vi, &provider);
        app_tx[peer as usize] = Some(app_vi.clone());
        mesh[peer as usize] = Some(Lane {
            vi: mesh_vi,
            ring: mesh_ring,
        });
        app_rx[peer as usize] = Some(Lane {
            vi: app_vi,
            ring: app_ring,
        });
    }
    // Registered send buffers: one for the app, one for the pager.
    let app_buf_va = provider.malloc(SLOT_LEN);
    let app_buf = (
        app_buf_va,
        provider
            .register_mem(ctx, app_buf_va, SLOT_LEN, MemAttributes::default())
            .expect("app send buf"),
    );
    let pager_buf_va = provider.malloc(SLOT_LEN);
    let pager_buf = (
        pager_buf_va,
        provider
            .register_mem(ctx, pager_buf_va, SLOT_LEN, MemAttributes::default())
            .expect("pager send buf"),
    );
    // Initial ownership: each home owns its pages.
    let mut owned = HashSet::new();
    let mut directory = HashMap::new();
    for page in 0..cfg.pages {
        if home_of(page, ranks) == rank {
            owned.insert(page);
            directory.insert(page, rank);
        }
    }
    let shared = Arc::new(Shared {
        provider: provider.clone(),
        rank,
        ranks,
        cfg,
        state: Mutex::new(NodeState {
            owned,
            store: HashMap::new(),
            directory,
            pending_fwd: HashMap::new(),
            reserved_for_app: None,
            fault_outstanding: None,
            stats: DsmStats::default(),
        }),
        arrivals: Notify::new(),
        app_tx,
        finished_apps,
    });
    let dsm = Dsm {
        shared: Arc::clone(&shared),
        send_buf: app_buf,
    };
    let pager = Pager {
        shared,
        cq,
        mesh,
        app_rx,
        send_buf: pager_buf,
    };
    (dsm, pager)
}

/// Drive a DSM world to completion: run until quiescent, tolerating only
/// the pager processes at their final park, then shut the simulation down.
pub fn run_world(sim: &Sim) -> simkit::RunReport {
    let report = sim.run();
    for name in &report.blocked {
        assert!(
            name.starts_with("dsm-pager"),
            "non-pager process blocked at end of world: {name}"
        );
    }
    sim.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_are_balanced() {
        let counts: Vec<usize> = (0..4u32)
            .map(|r| (0..64u64).filter(|&p| home_of(p, 4) == r).count())
            .collect();
        assert_eq!(counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn default_config() {
        let c = DsmConfig::default();
        assert_eq!(c.pages * PAGE_SIZE, 256 * 1024);
        assert!(c.ring_slots >= 2);
    }
}
