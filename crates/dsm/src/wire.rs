//! DSM protocol messages, serialized into VIA message payloads.
//!
//! Three message types travel between pagers (and from applications to
//! remote pagers):
//!
//! * `Req { page, requester }` — an application faulted on `page`; sent to
//!   the page's home.
//! * `Fwd { page, requester }` — the home redirects the request to the
//!   current owner.
//! * `Page { page, data }` — the page itself plus ownership, shipped to
//!   the requester's pager.
//!
//! Encoding is a 1-byte opcode + fixed-width fields + payload; the decode
//! path validates lengths so a corrupted frame fails loudly.

/// Protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Application `requester` wants ownership of `page` (sent to home).
    Req {
        /// Faulting page number.
        page: u64,
        /// Rank that wants the page.
        requester: u32,
    },
    /// Home tells the current owner to ship `page` to `requester`.
    Fwd {
        /// Page number.
        page: u64,
        /// Rank that wants the page.
        requester: u32,
    },
    /// The page and its ownership.
    Page {
        /// Page number.
        page: u64,
        /// The page's bytes.
        data: Vec<u8>,
    },
}

const OP_REQ: u8 = 1;
const OP_FWD: u8 = 2;
const OP_PAGE: u8 = 3;

impl Msg {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Msg::Req { page, requester } => {
                let mut v = vec![OP_REQ];
                v.extend(page.to_le_bytes());
                v.extend(requester.to_le_bytes());
                v
            }
            Msg::Fwd { page, requester } => {
                let mut v = vec![OP_FWD];
                v.extend(page.to_le_bytes());
                v.extend(requester.to_le_bytes());
                v
            }
            Msg::Page { page, data } => {
                let mut v = vec![OP_PAGE];
                v.extend(page.to_le_bytes());
                v.extend(data);
                v
            }
        }
    }

    /// Deserialize; panics on malformed input (a simulation bug, not a
    /// recoverable condition).
    pub fn decode(bytes: &[u8]) -> Msg {
        let op = bytes[0];
        let page = u64::from_le_bytes(bytes[1..9].try_into().expect("page field"));
        match op {
            OP_REQ => Msg::Req {
                page,
                requester: u32::from_le_bytes(bytes[9..13].try_into().expect("rank field")),
            },
            OP_FWD => Msg::Fwd {
                page,
                requester: u32::from_le_bytes(bytes[9..13].try_into().expect("rank field")),
            },
            OP_PAGE => Msg::Page {
                page,
                data: bytes[9..].to_vec(),
            },
            other => panic!("unknown DSM opcode {other}"),
        }
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Msg::Req { .. } | Msg::Fwd { .. } => 13,
            Msg::Page { data, .. } => 9 + data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        for m in [
            Msg::Req {
                page: 7,
                requester: 3,
            },
            Msg::Fwd {
                page: u64::MAX,
                requester: 0,
            },
            Msg::Page {
                page: 0,
                data: vec![1, 2, 3, 4],
            },
            Msg::Page {
                page: 9,
                data: vec![0; 4096],
            },
        ] {
            let bytes = m.encode();
            assert_eq!(bytes.len(), m.encoded_len());
            assert_eq!(Msg::decode(&bytes), m);
        }
    }

    #[test]
    #[should_panic(expected = "unknown DSM opcode")]
    fn bad_opcode_panics() {
        let mut bytes = Msg::Req {
            page: 1,
            requester: 1,
        }
        .encode();
        bytes[0] = 99;
        let _ = Msg::decode(&bytes);
    }
}
