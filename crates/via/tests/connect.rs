//! Connection-manager and API-misuse integration tests: listener
//! exclusivity, timeouts, self-connection, cross-provider handles, and
//! state checks around disconnects.

use simkit::{Sim, SimDuration, WaitMode};
use via::{
    Cluster, ConnState, Descriptor, Discriminator, MemAttributes, Profile, ViAttributes, ViaError,
};

#[test]
fn second_listener_on_same_discriminator_is_refused() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 1);
    let pb = cluster.provider(1);
    let h1 = {
        let pb = pb.clone();
        sim.spawn("listener1", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            // Registers the listener, then blocks until the client below
            // finally connects.
            pb.accept(ctx, &vi, Discriminator(7)).is_ok()
        })
    };
    {
        let pb = pb.clone();
        sim.spawn("listener2", Some(pb.cpu()), move |ctx| {
            // Let listener1 get its registration in first.
            ctx.sleep(SimDuration::from_millis(1));
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let r = pb.accept(ctx, &vi, Discriminator(7));
            assert_eq!(r, Err(ViaError::Busy), "duplicate listener must be refused");
        });
    }
    // Eventually let listener1 finish by connecting to it.
    let pa = cluster.provider(0);
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(7), None)
                .unwrap();
        });
    }
    sim.run_to_completion();
    assert!(h1.expect_result());
}

#[test]
fn connect_timeout_when_nobody_listens() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::mvia(), 2, 2);
    let pa = cluster.provider(0);
    let h = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let t0 = ctx.now();
            let r = pa.connect(
                ctx,
                &vi,
                fabric::NodeId(1),
                Discriminator(404),
                Some(SimDuration::from_millis(3)),
            );
            (r, (ctx.now() - t0).as_micros_f64(), vi.conn_state())
        })
    };
    sim.run_to_completion();
    let (r, waited_us, state) = h.expect_result();
    assert_eq!(r, Err(ViaError::ConnectFailed));
    // Client-side processing (3.6 ms on M-VIA) + the 3 ms timeout.
    assert!(waited_us >= 3_000.0, "waited {waited_us}");
    assert_eq!(
        state,
        ConnState::Idle,
        "VI must be reusable after a timeout"
    );
}

#[test]
fn late_accept_after_timeout_is_ignored_by_client() {
    // Server accepts *after* the client timed out: the client must stay
    // Idle (and be able to reconnect), not flip to Connected out of wait.
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 3);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("slow-server", Some(pb.cpu()), move |ctx| {
            // Busy elsewhere: starts listening long after the client quit.
            ctx.sleep(SimDuration::from_millis(20));
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            // The parked request is still in the pending queue; accept
            // completes on the server side (it cannot know the client
            // gave up — its Accept frame is simply ignored over there).
            pb.accept(ctx, &vi, Discriminator(9)).unwrap();
            ctx.sleep(SimDuration::from_millis(5));
        });
    }
    let h = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let r = pa.connect(
                ctx,
                &vi,
                fabric::NodeId(1),
                Discriminator(9),
                Some(SimDuration::from_millis(2)),
            );
            assert_eq!(r, Err(ViaError::ConnectFailed));
            // Sleep past the server's late Accept; state must stay Idle.
            ctx.sleep(SimDuration::from_millis(40));
            vi.conn_state()
        })
    };
    sim.run_to_completion();
    assert_eq!(h.expect_result(), ConnState::Idle);
}

#[test]
fn connect_to_self_is_rejected() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 4);
    let pa = cluster.provider(0);
    sim.spawn("p", Some(pa.cpu()), move |ctx| {
        let vi = pa
            .create_vi(ctx, ViAttributes::default(), None, None)
            .unwrap();
        let r = pa.connect(ctx, &vi, fabric::NodeId(0), Discriminator(1), None);
        assert_eq!(r, Err(ViaError::InvalidParameter));
    });
    sim.run_to_completion();
}

#[test]
fn foreign_cq_handle_is_rejected() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 5);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    sim.spawn("p", Some(pa.cpu()), move |ctx| {
        let foreign_cq = pb.create_cq(ctx, 8).unwrap();
        let r = pa.create_vi(ctx, ViAttributes::default(), Some(&foreign_cq), None);
        assert!(matches!(r, Err(ViaError::InvalidParameter)));
    });
    sim.run_to_completion();
}

#[test]
fn connect_while_connected_is_invalid() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 3, 6);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            ctx.sleep(SimDuration::from_millis(1));
        });
    }
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            // A VI holds exactly one connection.
            let r = pa.connect(ctx, &vi, fabric::NodeId(2), Discriminator(2), None);
            assert_eq!(r, Err(ViaError::InvalidState));
        });
    }
    sim.run_to_completion();
}

#[test]
fn peer_disconnect_fails_outstanding_sends() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 7);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(via::Reliability::ReliableDelivery);
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            // Disconnect without ever posting a receive: the client's
            // reliable send can then never be acknowledged.
            ctx.sleep(SimDuration::from_micros(200));
            pb.disconnect(ctx, &vi).unwrap();
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(64);
            let mh = pa
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                .unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Block);
            comp.status
        })
    };
    sim.run_to_completion();
    sh.expect_result();
    assert_eq!(ch.expect_result(), Err(ViaError::ConnectionLost));
}

#[test]
fn post_recv_before_connection_is_allowed() {
    // The spec encourages pre-posting receives before the connection is up.
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::bvia(), 2, 8);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(256);
            let mh = pb
                .register_mem(ctx, buf, 256, MemAttributes::default())
                .unwrap();
            // Post BEFORE accept: must succeed and catch the first message.
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 256))
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            comp.is_ok()
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(256);
            let mh = pa
                .register_mem(ctx, buf, 256, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 128))
                .unwrap();
            vi.send_wait(ctx, WaitMode::Poll);
        });
    }
    sim.run_to_completion();
    assert!(sh.expect_result());
}

#[test]
fn retry_exhaustion_drives_vi_to_error_then_reconnect_recovers() {
    // A link flap longer than the whole retry budget must push the VI into
    // the Error state: the stuck send completes with ConnectionLost, new
    // posts are refused, and only an explicit disconnect returns the VI to
    // Idle — after which a fresh connect on the same VI works, including
    // the per-connection sequence restart.
    let sim = Sim::new();
    let mut p = Profile::clan();
    p.data.retransmit_timeout = SimDuration::from_micros(200);
    p.data.max_rto = SimDuration::from_millis(1);
    p.data.max_retries = 2;
    let cluster = Cluster::new(sim.clone(), p, 2, 11);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let san = cluster.san().clone();
    let attrs = ViAttributes::reliable(via::Reliability::ReliableDelivery);
    let flap = SimDuration::from_millis(10);
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(4096);
            let mh = pb
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 1024))
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            assert!(vi.recv_wait(ctx, WaitMode::Block).is_ok());
            // Listen again for the client's post-error reconnect on a
            // fresh VI (the dead one keeps its half-open server state).
            let vi2 = pb.create_vi(ctx, attrs, None, None).unwrap();
            vi2.post_recv(ctx, Descriptor::recv().segment(buf + 1024, mh, 1024))
                .unwrap();
            pb.accept(ctx, &vi2, Discriminator(2)).unwrap();
            vi2.recv_wait(ctx, WaitMode::Block).is_ok()
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            // One clean round proves the path before the fault.
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1024))
                .unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Block).is_ok());

            let flap_at = ctx.now() + SimDuration::from_micros(10);
            san.install_faults(&fabric::FaultPlan::new().link_flap(
                fabric::NodeId(0),
                flap_at,
                flap,
            ));
            let flap_end = flap_at + flap;
            ctx.sleep(SimDuration::from_micros(20));
            // This send's every (re)transmission dies on the downed link.
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1024))
                .unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Block);
            assert_eq!(comp.status, Err(ViaError::ConnectionLost));
            assert_eq!(
                vi.conn_state(),
                ConnState::Error {
                    cause: via::ErrorCause::RetryExhausted
                }
            );
            // An errored VI refuses all work until the owner clears it.
            let d = Descriptor::send().segment(buf, mh, 64);
            assert_eq!(vi.post_send(ctx, d), Err(ViaError::InvalidState));
            let d = Descriptor::recv().segment(buf, mh, 64);
            assert_eq!(vi.post_recv(ctx, d), Err(ViaError::InvalidState));
            pa.disconnect(ctx, &vi).unwrap();
            assert_eq!(vi.conn_state(), ConnState::Idle);

            // Outlive the flap, then the same VI must connect cleanly.
            while ctx.now() < flap_end + SimDuration::from_millis(1) {
                ctx.sleep(SimDuration::from_millis(1));
            }
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(2), None)
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1024))
                .unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Block).is_ok());
            pa.stats().conn_failures
        })
    };
    sim.run_to_completion();
    assert!(
        sh.expect_result(),
        "server must see the post-reconnect send"
    );
    assert_eq!(
        ch.expect_result(),
        1,
        "exactly one declared connection death"
    );
}

#[test]
fn multifragment_immediate_is_delivered_exactly_once() {
    // Immediate data rides the control segment; a 7-fragment message must
    // still deliver it once, with the completion.
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::bvia(), 2, 9); // 4 KiB MTU
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(28672);
            let mh = pb
                .register_mem(ctx, buf, 28672, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 28672))
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            (comp.length, comp.immediate)
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            ctx.sleep(SimDuration::from_micros(300));
            let buf = pa.malloc(28672);
            let mh = pa
                .register_mem(ctx, buf, 28672, MemAttributes::default())
                .unwrap();
            vi.post_send(
                ctx,
                Descriptor::send().segment(buf, mh, 28672).immediate(0xFEED),
            )
            .unwrap();
            vi.send_wait(ctx, WaitMode::Poll);
        });
    }
    sim.run_to_completion();
    let (len, imm) = sh.expect_result();
    assert_eq!(len, 28672);
    assert_eq!(imm, Some(0xFEED));
}
