//! Model-based property test of `DeliveredTracker` semantics, driven
//! through the public API: under arbitrary loss and seeds, a Reliable
//! Delivery stream must deliver each message exactly once even when the
//! receiver's completion order is perturbed by retransmissions.
//!
//! (The tracker itself is crate-private; this exercises it through the
//! transport. A unit-level model test lives in `via::vi::tests`.)

use proptest::prelude::*;
use simkit::{Sim, SimDuration, WaitMode};
use via::{
    Cluster, Descriptor, Discriminator, MemAttributes, Profile, Reliability, ViAttributes,
};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn pipelined_reliable_stream_is_exactly_once(
        loss in 0.0f64..0.25,
        seed in any::<u64>(),
        depth in 1usize..12,
        msgs in 10u32..40,
    ) {
        // Unlike the serial property in the repo-level tests, this one
        // keeps `depth` sends in flight, which is what actually produces
        // out-of-order completion at the receiver during loss recovery —
        // the scenario that broke the original highwater-mark dedup.
        let sim = Sim::new();
        let mut profile = Profile::clan();
        profile.net = profile.net.with_loss(loss);
        profile.data.max_retries = 400;
        profile.data.retransmit_timeout = SimDuration::from_micros(250);
        let cluster = Cluster::new(sim.clone(), profile, 2, seed);
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
        let server = {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
                let buf = pb.malloc(2048);
                let mh = pb.register_mem(ctx, buf, 2048, MemAttributes::default()).unwrap();
                for _ in 0..msgs.min(64) {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 2048)).unwrap();
                }
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                let mut seen = Vec::new();
                for i in 0..msgs {
                    let c = vi.recv_wait(ctx, WaitMode::Block);
                    assert!(c.is_ok(), "{:?}", c.status);
                    seen.push(c.immediate.unwrap());
                    if i as u64 + 64 < msgs as u64 {
                        vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 2048)).unwrap();
                    }
                }
                seen
            })
        };
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
                pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None).unwrap();
                let buf = pa.malloc(2048);
                let mh = pa.register_mem(ctx, buf, 2048, MemAttributes::default()).unwrap();
                let mut outstanding = 0usize;
                for i in 0..msgs {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1500).immediate(i)).unwrap();
                    outstanding += 1;
                    if outstanding >= depth {
                        let c = vi.send_wait(ctx, WaitMode::Block);
                        assert!(c.is_ok(), "{:?}", c.status);
                        outstanding -= 1;
                    }
                }
                while outstanding > 0 {
                    assert!(vi.send_wait(ctx, WaitMode::Block).is_ok());
                    outstanding -= 1;
                }
            });
        }
        sim.run_to_completion();
        // Exactly once, in order — duplicates or holes both fail here.
        prop_assert_eq!(server.expect_result(), (0..msgs).collect::<Vec<_>>());
    }
}
