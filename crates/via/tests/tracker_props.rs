//! Model-based property test of `DeliveredTracker` semantics, driven
//! through the public API: under arbitrary loss and seeds, a Reliable
//! Delivery stream must deliver each message exactly once even when the
//! receiver's completion order is perturbed by retransmissions.
//!
//! (The tracker itself is crate-private; this exercises it through the
//! transport. A unit-level model test lives in `via::vi::tests`.)
//!
//! Cases are generated with a seeded [`SimRng`] rather than a property-test
//! framework: same coverage shape (16 cases over loss × seed × pipeline
//! depth × message count), fully deterministic, no external dependency.

use simkit::{Sim, SimDuration, SimRng, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, Reliability, ViAttributes};

fn run_case(loss: f64, seed: u64, depth: usize, msgs: u32) {
    // Unlike the serial property in the repo-level tests, this one
    // keeps `depth` sends in flight, which is what actually produces
    // out-of-order completion at the receiver during loss recovery —
    // the scenario that broke the original highwater-mark dedup.
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(loss);
    profile.data.max_retries = 400;
    profile.data.retransmit_timeout = SimDuration::from_micros(250);
    let cluster = Cluster::new(sim.clone(), profile, 2, seed);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    let server = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(2048);
            let mh = pb
                .register_mem(ctx, buf, 2048, MemAttributes::default())
                .unwrap();
            for _ in 0..msgs.min(64) {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 2048))
                    .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let mut seen = Vec::new();
            for i in 0..msgs {
                let c = vi.recv_wait(ctx, WaitMode::Block);
                assert!(c.is_ok(), "{:?}", c.status);
                seen.push(c.immediate.unwrap());
                if i as u64 + 64 < msgs as u64 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 2048))
                        .unwrap();
                }
            }
            seen
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(2048);
            let mh = pa
                .register_mem(ctx, buf, 2048, MemAttributes::default())
                .unwrap();
            let mut outstanding = 0usize;
            for i in 0..msgs {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1500).immediate(i))
                    .unwrap();
                outstanding += 1;
                if outstanding >= depth {
                    let c = vi.send_wait(ctx, WaitMode::Block);
                    assert!(c.is_ok(), "{:?}", c.status);
                    outstanding -= 1;
                }
            }
            while outstanding > 0 {
                assert!(vi.send_wait(ctx, WaitMode::Block).is_ok());
                outstanding -= 1;
            }
        });
    }
    sim.run_to_completion();
    // Exactly once, in order — duplicates or holes both fail here.
    assert_eq!(
        server.expect_result(),
        (0..msgs).collect::<Vec<_>>(),
        "case loss={loss} seed={seed} depth={depth} msgs={msgs}"
    );
}

#[test]
fn pipelined_reliable_stream_is_exactly_once() {
    // A previously-shrunk regression case (high loss, minimal pipeline).
    run_case(0.281_997_557_607_054_8, 9_001_254_809_112_957_138, 1, 10);
    let mut gen = SimRng::derive(0x7ac4e5, "tracker-props");
    for _ in 0..16 {
        let loss = gen.unit() * 0.25;
        let seed = gen.next_u64();
        let depth = 1 + gen.below(11) as usize;
        let msgs = 10 + gen.below(30) as u32;
        run_case(loss, seed, depth, msgs);
    }
}
