//! Node-scoped fault-domain tests: provider wipe-and-reboot semantics,
//! heartbeat crash detection, and the teardown-during-crash-window
//! idempotence pin (see `connect::teardown_local`).

use simkit::{Sim, SimDuration, SimTime, WaitMode};
use via::{
    Cluster, ConnState, Descriptor, Discriminator, ErrorCause, MemAttributes, Profile, Reliability,
    ViAttributes, ViaError,
};

fn crash_profile() -> Profile {
    let mut p = Profile::clan();
    p.heartbeat = Some(via::HeartbeatParams::fast());
    p
}

/// Satellite pin: `teardown_local` on a VI already in `ConnState::Error`
/// during an *open* node_down window is idempotent and leak-free — the
/// error transition flushed every descriptor exactly once, the teardown
/// flushes nothing further, timers are disarmed exactly once, and a
/// second teardown attempt is a clean `InvalidState`, all audit-checked.
#[test]
fn teardown_during_node_down_is_idempotent() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), crash_profile(), 2, 21);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    // Crash the *client's* node: its provider is wiped mid-window and the
    // application (which survives — the sim models state loss, not
    // process death) tears the errored VI down while the window is open.
    cluster
        .san()
        .install_faults(&fabric::FaultPlan::new().node_down(
            fabric::NodeId(0),
            SimTime::from_nanos(5_000_000),
            SimDuration::from_millis(1),
        ));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            // Reliable delivery with no receives posted: inbound frames
            // drop descriptor-less and the client's sends stay in flight
            // on retransmission — in-flight state for the crash to flush.
            let vi = pb
                .create_vi(
                    ctx,
                    ViAttributes::reliable(Reliability::ReliableDelivery),
                    None,
                    None,
                )
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(3)).unwrap();
            // Sit out the crash; the heartbeat watchdog notices the dead
            // peer and fails the connection on this side too.
            ctx.sleep(SimDuration::from_millis(8));
            assert!(
                matches!(
                    vi.conn_state(),
                    ConnState::Error {
                        cause: ErrorCause::PeerDown
                    }
                ),
                "watchdog must flag the crashed peer: {:?}",
                vi.conn_state()
            );
            pb.disconnect(ctx, &vi).unwrap();
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(
                    ctx,
                    ViAttributes::reliable(Reliability::ReliableDelivery),
                    None,
                    None,
                )
                .unwrap();
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(3), None)
                .unwrap();
            // Park four sends in flight just before the window opens (the
            // server posted no receives, so they sit on retransmission).
            ctx.sleep(SimTime::from_nanos(4_900_000).saturating_duration_since(ctx.now()));
            for _ in 0..4 {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 256))
                    .unwrap();
            }
            // Wake inside the open window, after the wipe.
            ctx.sleep(SimDuration::from_micros(300));
            assert!(
                matches!(
                    vi.conn_state(),
                    ConnState::Error {
                        cause: ErrorCause::NodeDown
                    }
                ),
                "crash must fail the connection: {:?}",
                vi.conn_state()
            );
            // The error transition flushed all four sends, exactly once.
            let mut errs = 0;
            while let Some(c) = vi.send_done(ctx) {
                assert_eq!(c.status, Err(ViaError::ConnectionLost));
                errs += 1;
            }
            assert_eq!(errs, 4, "every in-flight send flushed exactly once");
            // Teardown during the still-open window: must succeed, flush
            // nothing further, and leave the VI reusable.
            assert!(
                ctx.now() < SimTime::from_nanos(6_000_000),
                "teardown must run inside the open window"
            );
            pa.disconnect(ctx, &vi).unwrap();
            assert_eq!(vi.conn_state(), ConnState::Idle);
            assert!(vi.send_done(ctx).is_none(), "no double-flush");
            assert!(vi.recv_done(ctx).is_none(), "no phantom receives");
            // A second teardown attempt is a clean state error, not a
            // double free.
            assert_eq!(pa.disconnect(ctx, &vi), Err(ViaError::InvalidState));
            assert!(vi.send_done(ctx).is_none());
            vi.id()
        })
    };
    sim.run_to_completion();
    ch.expect_result();
    let stats = pa.stats();
    assert_eq!(stats.node_crashes, 1);
    assert!(
        stats.heartbeat_timers_cancelled <= stats.heartbeat_timers_armed,
        "timer ledger: {stats:?}"
    );
    for p in [&pa, &pb] {
        let audit = p.audit();
        assert!(audit.is_clean(), "audit: {:?}", audit.violations);
    }
}

/// A nic_reset window reports `ErrorCause::NicReset` (host survives, NIC
/// state wiped) and counts under `nic_resets`, distinct from node_down's
/// `node_crashes`.
#[test]
fn nic_reset_reports_distinct_cause() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), crash_profile(), 2, 22);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    cluster
        .san()
        .install_faults(&fabric::FaultPlan::new().nic_reset(
            fabric::NodeId(0),
            SimTime::from_nanos(5_000_000),
            SimDuration::from_micros(400),
        ));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(3)).unwrap();
            ctx.sleep(SimDuration::from_millis(8));
            if matches!(vi.conn_state(), ConnState::Error { .. }) {
                pb.disconnect(ctx, &vi).unwrap();
            }
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(3), None)
                .unwrap();
            ctx.sleep(SimTime::from_nanos(5_200_000).saturating_duration_since(ctx.now()));
            let state = vi.conn_state();
            pa.disconnect(ctx, &vi).unwrap();
            state
        })
    };
    sim.run_to_completion();
    let state = ch.expect_result();
    assert!(
        matches!(
            state,
            ConnState::Error {
                cause: ErrorCause::NicReset
            }
        ),
        "NIC reset must carry its own cause: {state:?}"
    );
    let stats = pa.stats();
    assert_eq!(stats.nic_resets, 1);
    assert_eq!(stats.node_crashes, 0);
    for p in [&pa, &pb] {
        let audit = p.audit();
        assert!(audit.is_clean(), "audit: {:?}", audit.violations);
    }
}

/// The surviving peer detects a crashed node within the heartbeat bound:
/// staleness is checked before each beat, so detection happens no later
/// than `timeout + interval` after the last liveness signal (plus wire
/// latency slack).
#[test]
fn peer_down_detected_within_heartbeat_bound() {
    let sim = Sim::new();
    let profile = crash_profile();
    let hb = profile.heartbeat.unwrap();
    let cluster = Cluster::new(sim.clone(), profile, 2, 23);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let crash_at = SimTime::from_nanos(5_000_000);
    cluster
        .san()
        .install_faults(&fabric::FaultPlan::new().node_down(
            fabric::NodeId(1),
            crash_at,
            SimDuration::from_millis(4),
        ));
    {
        let pb = pb.clone();
        sim.spawn("victim", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(9)).unwrap();
            ctx.sleep(SimDuration::from_millis(12));
            if matches!(vi.conn_state(), ConnState::Error { .. }) {
                pb.disconnect(ctx, &vi).unwrap();
            }
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("survivor", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(9), None)
                .unwrap();
            // Poll for the watchdog verdict in fine steps.
            let detected = loop {
                if matches!(
                    vi.conn_state(),
                    ConnState::Error {
                        cause: ErrorCause::PeerDown
                    }
                ) {
                    break ctx.now();
                }
                assert!(
                    ctx.now() < SimTime::from_nanos(9_000_000),
                    "watchdog never fired"
                );
                ctx.sleep(SimDuration::from_micros(20));
            };
            pa.disconnect(ctx, &vi).unwrap();
            detected
        })
    };
    sim.run_to_completion();
    let detected = ch.expect_result();
    // The victim's last heartbeat left no later than crash_at; staleness
    // trips at the first tick past last_heard + timeout, which is at most
    // timeout + interval later (plus the polling step above).
    let bound = crash_at + hb.timeout + hb.interval + SimDuration::from_micros(50);
    assert!(
        detected <= bound,
        "detection at {detected:?} exceeds bound {bound:?}"
    );
    assert!(pa.stats().heartbeat_timeouts >= 1);
    for p in [&pa, &pb] {
        let audit = p.audit();
        assert!(audit.is_clean(), "audit: {:?}", audit.violations);
    }
}

/// After the window closes the node reboots with a fresh provider: the
/// old connection is gone, but new connect/accept dialogs work and data
/// flows again.
#[test]
fn rebooted_node_accepts_fresh_connections() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), crash_profile(), 2, 24);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let window_end = SimTime::from_nanos(6_000_000);
    cluster
        .san()
        .install_faults(&fabric::FaultPlan::new().node_down(
            fabric::NodeId(1),
            SimTime::from_nanos(5_000_000),
            SimDuration::from_millis(1),
        ));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(4)).unwrap();
            let buf = pb.malloc(4096);
            let mh = pb
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            // Ride out the crash; the wipe failed the first connection.
            ctx.sleep(
                window_end.saturating_duration_since(ctx.now()) + SimDuration::from_micros(100),
            );
            assert!(!pb.crashed(), "window closed, node rebooted");
            assert!(matches!(vi.conn_state(), ConnState::Error { .. }));
            pb.disconnect(ctx, &vi).unwrap();
            // Fresh dialog on the rebooted node.
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 4096))
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(5)).unwrap();
            let c = vi.recv_wait(ctx, WaitMode::Block);
            assert!(c.status.is_ok());
            let got = pb.mem_read(buf, c.length);
            pb.disconnect(ctx, &vi).unwrap();
            got
        })
    };
    let sh = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(4), None)
                .unwrap();
            // Wait past the window for the watchdog verdict, then redial.
            ctx.sleep(
                window_end.saturating_duration_since(ctx.now()) + SimDuration::from_millis(2),
            );
            assert!(matches!(vi.conn_state(), ConnState::Error { .. }));
            pa.disconnect(ctx, &vi).unwrap();
            pa.mem_write(buf, b"after reboot");
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(5), None)
                .unwrap();
            vi.post_send(
                ctx,
                Descriptor::send().segment(buf, mh, b"after reboot".len() as u32),
            )
            .unwrap();
            let c = vi.send_wait(ctx, WaitMode::Block);
            assert!(c.status.is_ok());
            pa.disconnect(ctx, &vi).unwrap();
        })
    };
    sim.run_to_completion();
    sh.expect_result();
    assert_eq!(pb.stats().node_crashes, 1);
    for p in [&pa, &pb] {
        let audit = p.audit();
        assert!(audit.is_clean(), "audit: {:?}", audit.violations);
    }
}
