//! End-to-end integration tests of the VIA engine across all three
//! provider profiles: data integrity, fragmentation, scatter/gather,
//! immediate data, completion queues, reliability, RDMA, and error paths.

use simkit::{Sim, SimDuration, WaitMode};
use via::{
    Cluster, Descriptor, Discriminator, MemAttributes, Profile, Reliability, ViAttributes, ViaError,
};

/// Spawn a connected pair and run `server`/`client` bodies against it.
/// Returns (server result, client result).
fn run_pair<S, C, RS, RC>(profile: Profile, seed: u64, server: S, client: C) -> (RS, RC)
where
    S: FnOnce(&mut simkit::ProcessCtx, &via::Provider, &via::Vi) -> RS + Send + 'static,
    C: FnOnce(&mut simkit::ProcessCtx, &via::Provider, &via::Vi) -> RC + Send + 'static,
    RS: Send + 'static,
    RC: Send + 'static,
{
    run_pair_attrs(profile, seed, ViAttributes::default(), server, client)
}

fn run_pair_attrs<S, C, RS, RC>(
    profile: Profile,
    seed: u64,
    attrs: ViAttributes,
    server: S,
    client: C,
) -> (RS, RC)
where
    S: FnOnce(&mut simkit::ProcessCtx, &via::Provider, &via::Vi) -> RS + Send + 'static,
    C: FnOnce(&mut simkit::ProcessCtx, &via::Provider, &via::Vi) -> RC + Send + 'static,
    RS: Send + 'static,
    RC: Send + 'static,
{
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile, 2, seed);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            server(ctx, &pb, &vi)
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            client(ctx, &pa, &vi)
        })
    };
    sim.run_to_completion();
    (sh.expect_result(), ch.expect_result())
}

fn patterned(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

// ---------------------------------------------------------------------
// Data integrity across profiles and sizes (exercises fragmentation).
// ---------------------------------------------------------------------

fn roundtrip_sizes(profile: Profile) {
    // Sizes straddle every wire-MTU boundary of all three profiles.
    let sizes = [0u64, 1, 4, 1439, 1440, 1441, 4096, 4097, 8192, 8193, 28672];
    let (got, _) = run_pair(
        profile,
        1,
        move |ctx, p, vi| {
            let mut got = Vec::new();
            for (i, &sz) in sizes.iter().enumerate() {
                let buf = p.malloc(sz.max(1));
                let mh = p
                    .register_mem(ctx, buf, sz.max(1), MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, sz as u32))
                    .unwrap();
                let comp = vi.recv_wait(ctx, WaitMode::Poll);
                assert!(comp.is_ok(), "recv {i} failed: {:?}", comp.status);
                assert_eq!(comp.length, sz);
                got.push(p.mem_read(buf, sz));
            }
            got
        },
        move |ctx, p, vi| {
            for (i, &sz) in sizes.iter().enumerate() {
                let buf = p.malloc(sz.max(1));
                let mh = p
                    .register_mem(ctx, buf, sz.max(1), MemAttributes::default())
                    .unwrap();
                p.mem_write(buf, &patterned(sz as usize, i as u8));
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, sz as u32))
                    .unwrap();
                let comp = vi.send_wait(ctx, WaitMode::Poll);
                assert!(comp.is_ok(), "send {i} failed: {:?}", comp.status);
                // Space sends out so receiver has posted the next recv.
                ctx.sleep(SimDuration::from_millis(1));
            }
        },
    );
    for (i, bytes) in got.iter().enumerate() {
        assert_eq!(
            bytes,
            &patterned(bytes.len(), i as u8),
            "payload {i} corrupted"
        );
    }
}

#[test]
fn roundtrip_all_sizes_mvia() {
    roundtrip_sizes(Profile::mvia());
}

#[test]
fn roundtrip_all_sizes_bvia() {
    roundtrip_sizes(Profile::bvia());
}

#[test]
fn roundtrip_all_sizes_clan() {
    roundtrip_sizes(Profile::clan());
}

// ---------------------------------------------------------------------
// Scatter/gather and immediate data.
// ---------------------------------------------------------------------

#[test]
fn multi_segment_gather_scatter() {
    let (got, _) = run_pair(
        Profile::clan(),
        2,
        |ctx, p, vi| {
            // Receive into three scattered segments.
            let buf = p.malloc(16 * 1024);
            let mh = p
                .register_mem(ctx, buf, 16 * 1024, MemAttributes::default())
                .unwrap();
            let desc = Descriptor::recv()
                .segment(buf, mh, 1000)
                .segment(buf + 5000, mh, 3000)
                .segment(buf + 10000, mh, 2000);
            vi.post_recv(ctx, desc).unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            assert_eq!(comp.length, 6000);
            assert_eq!(comp.immediate, Some(0xCAFE));
            let mut out = p.mem_read(buf, 1000);
            out.extend(p.mem_read(buf + 5000, 3000));
            out.extend(p.mem_read(buf + 10000, 2000));
            out
        },
        |ctx, p, vi| {
            // Send from two gathered segments.
            let buf = p.malloc(16 * 1024);
            let mh = p
                .register_mem(ctx, buf, 16 * 1024, MemAttributes::default())
                .unwrap();
            let data = patterned(6000, 7);
            p.mem_write(buf + 100, &data[..2500]);
            p.mem_write(buf + 8000, &data[2500..]);
            let desc = Descriptor::send()
                .segment(buf + 100, mh, 2500)
                .segment(buf + 8000, mh, 3500)
                .immediate(0xCAFE);
            vi.post_send(ctx, desc).unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Poll).is_ok());
        },
    );
    assert_eq!(got, patterned(6000, 7));
}

#[test]
fn zero_length_send_with_immediate() {
    let (imm, _) = run_pair(
        Profile::bvia(),
        3,
        |ctx, p, vi| {
            let buf = p.malloc(64);
            let mh = p
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                .unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            assert_eq!(comp.length, 0);
            comp.immediate
        },
        |ctx, _p, vi| {
            // Zero-cost client side: give the server time to post its
            // receive descriptor first (the paper's benchmarks do the same).
            ctx.sleep(SimDuration::from_micros(200));
            vi.post_send(ctx, Descriptor::send().immediate(42)).unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Poll).is_ok());
        },
    );
    assert_eq!(imm, Some(42));
}

// ---------------------------------------------------------------------
// Blocking vs polling waits.
// ---------------------------------------------------------------------

#[test]
fn blocking_wait_adds_interrupt_latency() {
    fn one_way(mode: WaitMode) -> u64 {
        let (t, _) = run_pair(
            Profile::clan(),
            4,
            move |ctx, p, vi| {
                let buf = p.malloc(4096);
                let mh = p
                    .register_mem(ctx, buf, 4096, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 4096))
                    .unwrap();
                let t0 = ctx.now();
                vi.recv_wait(ctx, mode);
                (ctx.now() - t0).as_nanos()
            },
            |ctx, p, vi| {
                let buf = p.malloc(4096);
                let mh = p
                    .register_mem(ctx, buf, 4096, MemAttributes::default())
                    .unwrap();
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1024))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            },
        );
        t
    }
    let poll = one_way(WaitMode::Poll);
    let block = one_way(WaitMode::Block);
    let delta = block.saturating_sub(poll);
    // Blocking must cost about one interrupt latency (9 us) extra.
    assert!(
        (8_000..=11_000).contains(&delta),
        "blocking delta = {delta} ns"
    );
}

#[test]
fn polling_burns_cpu_blocking_does_not() {
    fn rx_busy(mode: WaitMode) -> u64 {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 5);
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        let sh = {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                let buf = pb.malloc(64);
                let mh = pb
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                    .unwrap();
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                // Busy time of the wait itself, excluding setup/handshake.
                let meter = simkit::CpuMeter::start(ctx.sim(), pb.cpu());
                vi.recv_wait(ctx, mode);
                meter.stop(ctx.sim()).busy.as_nanos()
            })
        };
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                    .unwrap();
                // Make the receiver wait a long, measurable time.
                ctx.sleep(SimDuration::from_millis(5));
                let buf = pa.malloc(64);
                let mh = pa
                    .register_mem(ctx, buf, 64, MemAttributes::default())
                    .unwrap();
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            });
        }
        sim.run_to_completion();
        sh.expect_result()
    }
    let poll_busy = rx_busy(WaitMode::Poll);
    let block_busy = rx_busy(WaitMode::Block);
    // The poller burns the full ~5 ms wait; the blocker only pays overheads.
    assert!(poll_busy > 4_000_000, "poll busy = {poll_busy}");
    assert!(block_busy < 500_000, "block busy = {block_busy}");
}

// ---------------------------------------------------------------------
// Completion queues.
// ---------------------------------------------------------------------

#[test]
fn cq_merges_two_vis() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 6);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let cq = pb.create_cq(ctx, 32).unwrap();
            let vi1 = pb
                .create_vi(ctx, ViAttributes::default(), None, Some(&cq))
                .unwrap();
            let vi2 = pb
                .create_vi(ctx, ViAttributes::default(), None, Some(&cq))
                .unwrap();
            for vi in [&vi1, &vi2] {
                let buf = pb.malloc(256);
                let mh = pb
                    .register_mem(ctx, buf, 256, MemAttributes::default())
                    .unwrap();
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 256))
                    .unwrap();
            }
            pb.accept(ctx, &vi1, Discriminator(1)).unwrap();
            pb.accept(ctx, &vi2, Discriminator(2)).unwrap();
            // Collect two completions through the single CQ.
            let mut seen = Vec::new();
            for _ in 0..2 {
                let (vi_id, kind) = cq.wait(ctx, WaitMode::Poll);
                assert_eq!(kind, via::QueueKind::Recv);
                let vi = if vi_id == vi1.id() { &vi1 } else { &vi2 };
                let comp = vi.recv_done(ctx).expect("CQ signaled but queue empty");
                assert!(comp.is_ok());
                seen.push(vi_id);
            }
            assert_eq!(cq.overflows(), 0);
            seen
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi1 = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let vi2 = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi1, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            pa.connect(ctx, &vi2, fabric::NodeId(1), Discriminator(2), None)
                .unwrap();
            for vi in [&vi2, &vi1] {
                let buf = pa.malloc(256);
                let mh = pa
                    .register_mem(ctx, buf, 256, MemAttributes::default())
                    .unwrap();
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 128))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            }
        });
    }
    sim.run_to_completion();
    let seen = sh.expect_result();
    assert_eq!(seen.len(), 2);
    assert_ne!(seen[0], seen[1], "both VIs must surface through the CQ");
}

#[test]
fn cq_overflow_is_counted() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 61);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let cq = pb.create_cq(ctx, 2).unwrap(); // tiny CQ
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, Some(&cq))
                .unwrap();
            let buf = pb.malloc(4096);
            let mh = pb
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            for _ in 0..4 {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 64))
                    .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            // Sleep until all four messages have landed, then count.
            ctx.sleep(SimDuration::from_millis(10));
            let mut entries = 0;
            while cq.done(ctx).is_some() {
                entries += 1;
            }
            (entries, cq.overflows())
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(64);
            let mh = pa
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            for _ in 0..4 {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            }
        });
    }
    sim.run_to_completion();
    let (entries, overflows) = sh.expect_result();
    assert_eq!(entries, 2);
    assert_eq!(overflows, 2);
}

// ---------------------------------------------------------------------
// Reliability.
// ---------------------------------------------------------------------

#[test]
fn reliable_delivery_survives_loss() {
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(0.15);
    let cluster = Cluster::new(sim.clone(), profile, 2, 42);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    let n_msgs = 50u32;
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(8192);
            let mh = pb
                .register_mem(ctx, buf, 8192, MemAttributes::default())
                .unwrap();
            for _ in 0..n_msgs {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 8192))
                    .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let mut received = Vec::new();
            for _ in 0..n_msgs {
                let comp = vi.recv_wait(ctx, WaitMode::Block);
                assert!(comp.is_ok(), "{:?}", comp.status);
                received.push(comp.immediate.unwrap());
            }
            received
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(8192);
            let mh = pa
                .register_mem(ctx, buf, 8192, MemAttributes::default())
                .unwrap();
            for i in 0..n_msgs {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 6000).immediate(i))
                    .unwrap();
                let comp = vi.send_wait(ctx, WaitMode::Block);
                assert!(comp.is_ok(), "send {i}: {:?}", comp.status);
            }
        });
    }
    sim.run_to_completion();
    let received = sh.expect_result();
    // Every message arrives exactly once, in order, despite 15% frame loss.
    assert_eq!(received, (0..n_msgs).collect::<Vec<_>>());
    assert!(
        pa.stats().retransmissions > 0,
        "loss at 15% must force retransmissions"
    );
}

#[test]
fn zero_loss_stream_cancels_every_retransmit_timer() {
    // On a loss-free fabric every ACK must arrive before its retransmission
    // timer expires, so the transport should *cancel* (never fire) each
    // timer it arms — the regression this guards is the old engine's
    // un-cancellable closures, which kept dead retransmit timers queued
    // (and firing as no-ops) long after the message completed.
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 7);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    let n_msgs = 40u32;
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(8192);
            let mh = pb
                .register_mem(ctx, buf, 8192, MemAttributes::default())
                .unwrap();
            for _ in 0..n_msgs {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 8192))
                    .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let mut got = 0u32;
            for _ in 0..n_msgs {
                assert!(vi.recv_wait(ctx, WaitMode::Block).is_ok());
                got += 1;
            }
            got
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(8192);
            let mh = pa
                .register_mem(ctx, buf, 8192, MemAttributes::default())
                .unwrap();
            for i in 0..n_msgs {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 6000).immediate(i))
                    .unwrap();
                assert!(vi.send_wait(ctx, WaitMode::Block).is_ok());
            }
        });
    }
    sim.run_to_completion();
    assert_eq!(sh.expect_result(), n_msgs);
    let stats = pa.stats();
    assert_eq!(
        stats.retransmissions, 0,
        "loss-free stream never retransmits"
    );
    assert_eq!(
        stats.retx_timers_armed, n_msgs as u64,
        "one retransmit timer per reliable message"
    );
    assert_eq!(
        stats.retx_timers_cancelled, stats.retx_timers_armed,
        "every timer must be disarmed by its ACK, not left to fire"
    );
    // Cross-check against the scheduler's own per-class ledger: the only
    // cancellable events in the Retransmit class are these timers, so the
    // class tally must agree with the provider, and — because the run
    // drains the queue — every cancelled entry must have been reaped.
    let retx = sim.sched_stats().class(simkit::EventClass::Retransmit);
    assert_eq!(retx.cancelled, stats.retx_timers_cancelled);
    assert_eq!(retx.dead_popped, retx.cancelled, "lazy reap must drain");
}

#[test]
fn unreliable_mode_drops_on_loss() {
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(0.25);
    let cluster = Cluster::new(sim.clone(), profile, 2, 43);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let n_msgs = 60u32;
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(4096);
            let mh = pb
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            for _ in 0..n_msgs {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 4096))
                    .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            // Drain whatever arrives within a generous window.
            ctx.sleep(SimDuration::from_millis(50));
            let mut ok = 0u32;
            while let Some(c) = vi.recv_done(ctx) {
                if c.is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            for i in 0..n_msgs {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 2048).immediate(i))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            }
        });
    }
    sim.run_to_completion();
    let delivered = sh.expect_result();
    assert!(delivered < n_msgs, "25% loss must lose messages");
    assert!(delivered > 0, "some messages must get through");
    assert_eq!(
        pa.stats().retransmissions,
        0,
        "unreliable never retransmits"
    );
}

#[test]
fn reliable_reception_completes_after_placement() {
    // RR send completion must never arrive before the receiver's data is in
    // memory: check that the sender's completion time ≥ one full transfer.
    let (recv_done_at, send_done_at) = run_pair_attrs(
        Profile::clan(),
        8,
        ViAttributes::reliable(Reliability::ReliableReception),
        |ctx, p, vi| {
            let buf = p.malloc(16 * 1024);
            let mh = p
                .register_mem(ctx, buf, 16 * 1024, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 16 * 1024))
                .unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            ctx.now().as_nanos()
        },
        |ctx, p, vi| {
            let buf = p.malloc(16 * 1024);
            let mh = p
                .register_mem(ctx, buf, 16 * 1024, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 16 * 1024))
                .unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            ctx.now().as_nanos()
        },
    );
    assert!(
        send_done_at > recv_done_at,
        "RR completion ({send_done_at}) must follow remote placement ({recv_done_at})"
    );
}

#[test]
fn retry_exhaustion_kills_connection() {
    // Total data blackout: the connection dialog still succeeds (it rides
    // the loss-exempt control channel, like real kernel-mediated CMs), but
    // every data frame vanishes, so a reliable send must exhaust its
    // retries and complete with ConnectionLost.
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(1.0);
    profile.data.max_retries = 3;
    profile.data.retransmit_timeout = SimDuration::from_micros(200);
    let cluster = Cluster::new(sim.clone(), profile, 2, 44);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(64);
            let mh = pa
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                .unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Block);
            (comp.status, vi.conn_state())
        })
    };
    sim.run_to_completion();
    let (status, conn) = ch.expect_result();
    assert_eq!(status, Err(ViaError::ConnectionLost));
    assert_eq!(
        conn,
        via::ConnState::Error {
            cause: via::ErrorCause::RetryExhausted
        }
    );
    assert_eq!(pa.stats().retransmissions, 3);
}

#[test]
fn send_fails_with_connection_lost_after_retries() {
    // Connect over a lossy-but-workable fabric, then count a send that can
    // never be acked: drive loss to certainty by exhausting max_retries=2
    // at 90% loss (p(all 3 attempts+acks survive) ≈ tiny; seed chosen so
    // the handshake itself succeeds).
    let sim = Sim::new();
    let mut profile = Profile::clan();
    profile.net = profile.net.with_loss(0.9);
    profile.data.max_retries = 2;
    profile.data.retransmit_timeout = SimDuration::from_micros(300);
    let cluster = Cluster::new(sim.clone(), profile, 2, 1203);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).ok()
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(64);
            let mh = pa
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                .unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Block);
            Some(comp.status)
        })
    };
    sim.run_to_completion();
    let _ = sh.take_result();
    // Either the send eventually got through (lucky frames) or it failed
    // with ConnectionLost — both are legal; what must never happen is a
    // hang (run_to_completion above proves progress).
    if let Some(Some(Err(e))) = ch.take_result() {
        assert_eq!(e, ViaError::ConnectionLost);
    }
}

// ---------------------------------------------------------------------
// RDMA.
// ---------------------------------------------------------------------

#[test]
fn rdma_write_places_data_without_recv_descriptor() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 9);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    // The server publishes (va, handle) out of band via this shared slot.
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let sh = {
        let pb = pb.clone();
        let slot = slot.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(8192);
            let mh = pb
                .register_mem(
                    ctx,
                    buf,
                    8192,
                    MemAttributes {
                        enable_rdma_write: true,
                        enable_rdma_read: false,
                    },
                )
                .unwrap();
            *slot.lock() = Some((buf, mh));
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            ctx.sleep(SimDuration::from_millis(5)); // let the write land
            pb.mem_read(buf + 16, 3000)
        })
    };
    {
        let pa = pa.clone();
        let slot = slot.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let (rva, rmh) = slot.lock().expect("server registered first");
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            pa.mem_write(buf, &patterned(3000, 99));
            let desc = Descriptor::rdma_write(rva + 16, rmh).segment(buf, mh, 3000);
            vi.post_send(ctx, desc).unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Poll).is_ok());
        });
    }
    sim.run_to_completion();
    assert_eq!(sh.expect_result(), patterned(3000, 99));
    assert_eq!(pb.stats().rdma_writes_in, 1);
    assert_eq!(pb.stats().recvs_posted, 0);
}

#[test]
fn rdma_write_with_immediate_consumes_recv_descriptor() {
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let slot2 = slot.clone();
    let (got_imm, _) = run_pair(
        Profile::clan(),
        10,
        move |ctx, p, vi| {
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            *slot.lock() = Some((buf, mh));
            vi.post_recv(ctx, Descriptor::recv()).unwrap(); // zero-segment recv for the imm
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            comp.immediate
        },
        move |ctx, p, vi| {
            // Wait for the server to publish its buffer.
            while slot2.lock().is_none() {
                ctx.sleep(SimDuration::from_micros(50));
            }
            let (rva, rmh) = slot2.lock().unwrap();
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            let desc = Descriptor::rdma_write(rva, rmh)
                .segment(buf, mh, 512)
                .immediate(777);
            vi.post_send(ctx, desc).unwrap();
            assert!(vi.send_wait(ctx, WaitMode::Poll).is_ok());
        },
    );
    assert_eq!(got_imm, Some(777));
}

#[test]
fn rdma_write_protection_violation_is_refused() {
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let slot2 = slot.clone();
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 11);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(4096);
            // RDMA write NOT enabled on this registration.
            let mh = pb
                .register_mem(
                    ctx,
                    buf,
                    4096,
                    MemAttributes {
                        enable_rdma_write: false,
                        enable_rdma_read: false,
                    },
                )
                .unwrap();
            *slot.lock() = Some((buf, mh));
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            ctx.sleep(SimDuration::from_millis(2));
            pb.mem_read(buf, 16)
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let (rva, rmh) = slot2.lock().expect("published");
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            pa.mem_write(buf, &[0xFFu8; 16]);
            vi.post_send(ctx, Descriptor::rdma_write(rva, rmh).segment(buf, mh, 16))
                .unwrap();
            vi.send_wait(ctx, WaitMode::Poll);
        });
    }
    sim.run_to_completion();
    // Memory untouched, violation counted.
    assert_eq!(sh.expect_result(), vec![0u8; 16]);
    assert_eq!(pb.stats().protection_errors, 1);
    assert_eq!(pb.stats().rdma_writes_in, 0);
    let _ = pa;
}

#[test]
fn rdma_read_fetches_remote_memory() {
    // RDMA read is an extension (no paper profile enables it): use custom.
    let mut profile = Profile::custom();
    profile.supports_rdma_read = true;
    let slot = std::sync::Arc::new(parking_lot::Mutex::new(None));
    let slot2 = slot.clone();
    let attrs = ViAttributes {
        enable_rdma_read: true,
        ..Default::default()
    };
    let (_, got) = run_pair_attrs(
        profile,
        12,
        attrs,
        move |ctx, p, _vi| {
            let buf = p.malloc(8192);
            let mh = p
                .register_mem(
                    ctx,
                    buf,
                    8192,
                    MemAttributes {
                        enable_rdma_write: false,
                        enable_rdma_read: true,
                    },
                )
                .unwrap();
            p.mem_write(buf + 100, &patterned(5000, 3));
            *slot.lock() = Some((buf, mh));
            ctx.sleep(SimDuration::from_millis(5));
        },
        move |ctx, p, vi| {
            while slot2.lock().is_none() {
                ctx.sleep(SimDuration::from_micros(50));
            }
            let (rva, rmh) = slot2.lock().unwrap();
            let buf = p.malloc(8192);
            let mh = p
                .register_mem(ctx, buf, 8192, MemAttributes::default())
                .unwrap();
            let desc = Descriptor::rdma_read(rva + 100, rmh).segment(buf, mh, 5000);
            vi.post_send(ctx, desc).unwrap();
            let comp = vi.send_wait(ctx, WaitMode::Poll);
            assert!(comp.is_ok());
            assert_eq!(comp.length, 5000);
            p.mem_read(buf, 5000)
        },
    );
    assert_eq!(got, patterned(5000, 3));
}

// ---------------------------------------------------------------------
// Error paths and API misuse.
// ---------------------------------------------------------------------

#[test]
fn post_on_unconnected_vi_fails() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 13);
    let pa = cluster.provider(0);
    sim.spawn("p", Some(pa.cpu()), move |ctx| {
        let vi = pa
            .create_vi(ctx, ViAttributes::default(), None, None)
            .unwrap();
        let buf = pa.malloc(64);
        let mh = pa
            .register_mem(ctx, buf, 64, MemAttributes::default())
            .unwrap();
        let r = vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64));
        assert_eq!(r, Err(ViaError::InvalidState));
    });
    sim.run_to_completion();
}

#[test]
fn oversized_send_is_rejected() {
    run_pair(
        Profile::bvia(), // 32 KiB max transfer size
        14,
        |ctx, _p, _vi| {
            ctx.sleep(SimDuration::from_millis(1));
        },
        |ctx, p, vi| {
            let len = 64 * 1024;
            let buf = p.malloc(len);
            let mh = p
                .register_mem(ctx, buf, len, MemAttributes::default())
                .unwrap();
            let r = vi.post_send(ctx, Descriptor::send().segment(buf, mh, len as u32));
            assert_eq!(r, Err(ViaError::DescriptorError));
        },
    );
}

#[test]
fn unregistered_memory_is_rejected() {
    run_pair(
        Profile::clan(),
        15,
        |ctx, _p, _vi| ctx.sleep(SimDuration::from_millis(1)),
        |ctx, p, vi| {
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 100, MemAttributes::default())
                .unwrap();
            // Segment extends past the registered 100 bytes.
            let r = vi.post_send(ctx, Descriptor::send().segment(buf, mh, 200));
            assert_eq!(r, Err(ViaError::DescriptorError));
            // Deregistered handle.
            p.deregister_mem(ctx, mh).unwrap();
            let r = vi.post_send(ctx, Descriptor::send().segment(buf, mh, 50));
            assert_eq!(r, Err(ViaError::InvalidMemHandle));
        },
    );
}

#[test]
fn message_longer_than_recv_buffer_completes_in_error() {
    let (status, _) = run_pair(
        Profile::clan(),
        16,
        |ctx, p, vi| {
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 100))
                .unwrap();
            let comp = vi.recv_wait(ctx, WaitMode::Poll);
            comp.status
        },
        |ctx, p, vi| {
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 2000))
                .unwrap();
            vi.send_wait(ctx, WaitMode::Poll);
        },
    );
    assert_eq!(status, Err(ViaError::DescriptorError));
}

#[test]
fn send_without_posted_recv_is_dropped_and_counted() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 17);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            ctx.sleep(SimDuration::from_millis(2));
        });
    }
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(64);
            let mh = pa
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 64))
                .unwrap();
            vi.send_wait(ctx, WaitMode::Poll); // unreliable: completes at wire
        });
    }
    sim.run_to_completion();
    assert_eq!(pb.stats().recv_no_descriptor, 1);
    assert_eq!(pb.stats().msgs_delivered, 0);
}

#[test]
fn reliability_mismatch_is_rejected() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 18);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(
                    ctx,
                    ViAttributes::reliable(Reliability::ReliableDelivery),
                    None,
                    None,
                )
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1))
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
        })
    };
    sim.run_to_completion();
    assert_eq!(sh.expect_result(), Err(ViaError::ConnectFailed));
    assert_eq!(ch.expect_result(), Err(ViaError::ConnectFailed));
}

#[test]
fn unsupported_reliability_rejected_at_create() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::bvia(), 2, 19);
    let pa = cluster.provider(0);
    sim.spawn("p", Some(pa.cpu()), move |ctx| {
        let r = pa.create_vi(
            ctx,
            ViAttributes::reliable(Reliability::ReliableDelivery),
            None,
            None,
        );
        assert!(matches!(r, Err(ViaError::NotSupported)));
    });
    sim.run_to_completion();
}

#[test]
fn rdma_unsupported_on_bvia() {
    run_pair(
        Profile::bvia(),
        20,
        |ctx, _p, _vi| ctx.sleep(SimDuration::from_millis(1)),
        |ctx, p, vi| {
            let buf = p.malloc(64);
            let mh = p
                .register_mem(ctx, buf, 64, MemAttributes::default())
                .unwrap();
            let r = vi.post_send(ctx, Descriptor::rdma_write(0x1000, mh).segment(buf, mh, 16));
            assert_eq!(r, Err(ViaError::NotSupported));
        },
    );
}

#[test]
fn queue_depth_limit_enforced() {
    let mut profile = Profile::clan();
    profile.max_queue_depth = 4;
    run_pair(
        profile,
        21,
        |ctx, _p, _vi| ctx.sleep(SimDuration::from_millis(5)),
        |ctx, p, vi| {
            let buf = p.malloc(4096);
            let mh = p
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            let mut hit_full = false;
            for _ in 0..10 {
                match vi.post_send(ctx, Descriptor::send().segment(buf, mh, 4096)) {
                    Ok(()) => {}
                    Err(ViaError::QueueFull) => {
                        hit_full = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error {e:?}"),
                }
            }
            assert!(
                hit_full,
                "posting 10 into a depth-4 queue must hit QueueFull"
            );
        },
    );
}

#[test]
fn disconnect_then_reconnect_works() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 22);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            // Wait to observe the client-initiated disconnect.
            while matches!(vi.conn_state(), via::ConnState::Connected { .. }) {
                ctx.sleep(SimDuration::from_micros(100));
            }
            // Accept a second connection on the same VI.
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            matches!(vi.conn_state(), via::ConnState::Connected { .. })
        })
    };
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            pa.disconnect(ctx, &vi).unwrap();
            ctx.sleep(SimDuration::from_millis(1));
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
        });
    }
    sim.run_to_completion();
    assert!(sh.expect_result());
}

#[test]
fn teardown_under_load_flushes_credits_and_leaks_nothing() {
    // Disconnect while the credit ledger is dry and the peer is stalled:
    // two sends in flight (unacknowledged — the peer posted no receives),
    // three more parked on credits. The teardown must flush all five as
    // ConnectionLost and leave both providers audit-clean.
    let mut profile = Profile::clan();
    profile.credit_flow.initial = 2;
    // Keep the retransmitter quiet for the test's duration so the
    // in-flight sends are still outstanding when the teardown lands.
    profile.data.retransmit_timeout = SimDuration::from_millis(50);
    profile.data.max_rto = SimDuration::from_millis(50);
    let attrs = ViAttributes::reliable(Reliability::ReliableDelivery);
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile, 2, 33);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            // Stalled peer: no receives posted, no ACKs, no grants.
            ctx.sleep(SimDuration::from_millis(10));
        });
    }
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(512);
            let mh = pa
                .register_mem(ctx, buf, 512, MemAttributes::default())
                .unwrap();
            for _ in 0..5 {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, 512))
                    .unwrap();
            }
            assert_eq!(vi.sends_credit_parked(), 3, "5 posts on 2 credits");
            // Let the two credited sends reach the (descriptor-less) peer.
            ctx.sleep(SimDuration::from_millis(1));
            pa.disconnect(ctx, &vi).unwrap();
            // Every send — in flight or credit-parked — flushes exactly
            // once, as ConnectionLost.
            let mut lost = 0;
            for _ in 0..5 {
                let c = vi.send_wait(ctx, WaitMode::Poll);
                assert_eq!(c.status, Err(ViaError::ConnectionLost));
                lost += 1;
            }
            assert_eq!(vi.sends_credit_parked(), 0);
            lost
        })
    };
    sim.run_to_completion();
    assert_eq!(ch.expect_result(), 5);
    for (node, p) in [(0, &pa), (1, &pb)] {
        let audit = p.audit();
        assert!(audit.is_clean(), "node {node}: {:?}", audit.violations);
    }
}

#[test]
fn destroy_vi_guards() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 23);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            ctx.sleep(SimDuration::from_millis(1));
        });
    }
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            // Connected VI cannot be destroyed.
            assert_eq!(pa.destroy_vi(ctx, vi.clone()), Err(ViaError::Busy));
            pa.disconnect(ctx, &vi).unwrap();
            assert!(pa.destroy_vi(ctx, vi).is_ok());
            assert_eq!(pa.active_vis(), 0);
        });
    }
    sim.run_to_completion();
}

#[test]
fn destroy_cq_guarded_by_references() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 24);
    let pa = cluster.provider(0);
    sim.spawn("p", Some(pa.cpu()), move |ctx| {
        let cq = pa.create_cq(ctx, 8).unwrap();
        let vi = pa
            .create_vi(ctx, ViAttributes::default(), Some(&cq), None)
            .unwrap();
        assert_eq!(pa.destroy_cq(ctx, cq.clone()), Err(ViaError::Busy));
        pa.destroy_vi(ctx, vi).unwrap();
        assert!(pa.destroy_cq(ctx, cq).is_ok());
    });
    sim.run_to_completion();
}

#[test]
fn determinism_same_seed_same_timeline() {
    fn run_once() -> (u64, u64) {
        let sim = Sim::new();
        let mut profile = Profile::bvia();
        profile.net = profile.net.with_loss(0.05);
        let cluster = Cluster::new(sim.clone(), profile, 2, 777);
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                let buf = pb.malloc(8192);
                let mh = pb
                    .register_mem(ctx, buf, 8192, MemAttributes::default())
                    .unwrap();
                for _ in 0..20 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 8192))
                        .unwrap();
                }
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                ctx.sleep(SimDuration::from_millis(20));
                while vi.recv_done(ctx).is_some() {}
            });
        }
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                    .unwrap();
                let buf = pa.malloc(8192);
                let mh = pa
                    .register_mem(ctx, buf, 8192, MemAttributes::default())
                    .unwrap();
                for _ in 0..20 {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 6000))
                        .unwrap();
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        let report = sim.run_to_completion();
        (report.end_time.as_nanos(), report.events)
    }
    assert_eq!(run_once(), run_once(), "same seed must replay identically");
}

// ---------------------------------------------------------------------
// Message-lifecycle tracing.
// ---------------------------------------------------------------------

#[test]
fn trace_captures_full_message_lifecycle() {
    use trace::{TraceConfig, TracePoint};

    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::bvia(), 2, 7);
    let tracer = cluster.enable_trace(TraceConfig::default());
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(4096);
            let mh = pb
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 4096))
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            vi.recv_wait(ctx, WaitMode::Poll)
        });
    }
    {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            let buf = pa.malloc(4096);
            let mh = pa
                .register_mem(ctx, buf, 4096, MemAttributes::default())
                .unwrap();
            vi.post_send(ctx, Descriptor::send().segment(buf, mh, 1024))
                .unwrap();
            vi.send_wait(ctx, WaitMode::Poll)
        });
    }
    sim.run_to_completion();

    // Every NIC-offload lifecycle stage fired at least once.
    for point in [
        TracePoint::SendPosted,
        TracePoint::DoorbellRing,
        TracePoint::FwScan,
        TracePoint::DescFetch,
        TracePoint::DmaStart,
        TracePoint::DmaEnd,
        TracePoint::WireTx,
        TracePoint::WireRx,
        TracePoint::RecvLanded,
        TracePoint::CqCompletion,
    ] {
        assert!(tracer.count(point) > 0, "no {point:?} records");
    }

    // The client's data message carries one MsgId across both nodes.
    let records = tracer.records();
    let msg = records
        .iter()
        .find(|r| r.point == TracePoint::SendPosted && r.node == 0)
        .and_then(|r| r.msg)
        .expect("client posted a send");
    let chain: Vec<_> = records.iter().filter(|r| r.msg == Some(msg)).collect();
    assert!(chain
        .iter()
        .any(|r| r.point == TracePoint::WireTx && r.node == 0));
    assert!(chain
        .iter()
        .any(|r| r.point == TracePoint::WireRx && r.node == 1));
    assert!(chain
        .iter()
        .any(|r| r.point == TracePoint::RecvLanded && r.node == 1));
    let posted = chain
        .iter()
        .find(|r| r.point == TracePoint::SendPosted)
        .unwrap()
        .at_ns;
    let landed = chain
        .iter()
        .find(|r| r.point == TracePoint::RecvLanded)
        .unwrap()
        .at_ns;
    assert!(posted < landed, "post must precede landing in sim time");

    // The engine hook tallied scheduler events alongside lifecycle points.
    let snap = tracer.snapshot();
    assert!(snap.engine_events.iter().map(|(_, n)| n).sum::<u64>() > 0);
}

#[test]
fn tracing_does_not_perturb_the_timeline() {
    fn run_once(traced: bool) -> u64 {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.clone(), Profile::bvia(), 2, 42);
        if traced {
            cluster.enable_trace(trace::TraceConfig::default());
        }
        let (pa, pb) = (cluster.provider(0), cluster.provider(1));
        {
            let pb = pb.clone();
            sim.spawn("server", Some(pb.cpu()), move |ctx| {
                let vi = pb
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                let buf = pb.malloc(8192);
                let mh = pb
                    .register_mem(ctx, buf, 8192, MemAttributes::default())
                    .unwrap();
                for _ in 0..8 {
                    vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, 8192))
                        .unwrap();
                }
                pb.accept(ctx, &vi, Discriminator(1)).unwrap();
                for _ in 0..8 {
                    vi.recv_wait(ctx, WaitMode::Poll);
                }
            });
        }
        {
            let pa = pa.clone();
            sim.spawn("client", Some(pa.cpu()), move |ctx| {
                let vi = pa
                    .create_vi(ctx, ViAttributes::default(), None, None)
                    .unwrap();
                pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                    .unwrap();
                let buf = pa.malloc(8192);
                let mh = pa
                    .register_mem(ctx, buf, 8192, MemAttributes::default())
                    .unwrap();
                for _ in 0..8 {
                    vi.post_send(ctx, Descriptor::send().segment(buf, mh, 6000))
                        .unwrap();
                    vi.send_wait(ctx, WaitMode::Poll);
                }
            });
        }
        let report = sim.run_to_completion();
        report.end_time.as_nanos()
    }
    assert_eq!(
        run_once(false),
        run_once(true),
        "tracing is observational: identical timeline with and without it"
    );
}
