//! Reliable-delivery protocol robustness under injected frame loss: data
//! loss is absorbed by retransmission, ACK loss by duplicate detection
//! (the receiver drops the dup and re-ACKs), and every message is still
//! delivered exactly once, in order.

use simkit::{Sim, SimDuration, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, ViAttributes};

const MSGS: u64 = 32;
const MSG_LEN: u32 = 1024;

#[test]
fn retransmit_absorbs_data_and_ack_loss_with_duplicate_dedup() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), Profile::clan(), 2, 21);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let san = cluster.san().clone();
    let attrs = ViAttributes::reliable(via::Reliability::ReliableDelivery);
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(MSGS * MSG_LEN as u64);
            let mh = pb
                .register_mem(ctx, buf, MSGS * MSG_LEN as u64, MemAttributes::default())
                .unwrap();
            for i in 0..MSGS {
                vi.post_recv(
                    ctx,
                    Descriptor::recv().segment(buf + i * MSG_LEN as u64, mh, MSG_LEN),
                )
                .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            let mut ok = 0u64;
            for _ in 0..MSGS {
                if vi.recv_wait(ctx, WaitMode::Block).is_ok() {
                    ok += 1;
                }
            }
            ok
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            // Heavy bidirectional loss on the server's link for the whole
            // stream: inbound data and outbound ACKs both die often. The
            // retry budget must ride it out without a connection failure.
            san.install_faults(&fabric::FaultPlan::new().degrade(
                fabric::NodeId(1),
                ctx.now() + SimDuration::from_micros(10),
                SimDuration::from_millis(200),
                SimDuration::from_micros(1),
                0.35,
            ));
            let buf = pa.malloc(MSG_LEN as u64);
            let mh = pa
                .register_mem(ctx, buf, MSG_LEN as u64, MemAttributes::default())
                .unwrap();
            for i in 0..MSGS {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, MSG_LEN))
                    .unwrap();
                let c = vi.send_wait(ctx, WaitMode::Block);
                assert!(c.is_ok(), "send {i}: {:?}", c.status);
            }
        })
    };
    sim.run_to_completion();
    assert_eq!(sh.expect_result(), MSGS, "exactly-once, in-order delivery");
    ch.expect_result();

    let (cs, ss) = (pa.stats(), pb.stats());
    assert_eq!(ss.msgs_delivered, MSGS);
    assert_eq!(
        cs.conn_failures, 0,
        "loss must not exhaust the retry budget"
    );
    assert!(
        cs.retransmissions > 0,
        "0.35 loss must force retransmissions"
    );
    // A lost ACK means the retransmit arrives at a receiver that already
    // delivered the message: it must be discarded as a duplicate and
    // re-ACKed, never handed to a second descriptor.
    assert!(
        ss.duplicates_dropped > 0,
        "ACK loss must surface duplicates"
    );
    assert_eq!(
        ss.acks_sent,
        ss.msgs_delivered + ss.duplicates_dropped,
        "one ACK per delivery plus one per discarded duplicate"
    );
    // Exactly one ACK copy per message survives the lossy link: a dup at
    // the receiver implies the earlier ACK died (the RTO here is far above
    // the RTT, so a live ACK always beats the timer), and the sender only
    // stops retransmitting once some copy lands.
    assert_eq!(cs.acks_received, MSGS);
}

#[test]
fn spurious_retransmits_after_delayed_acks_are_deduped_end_to_end() {
    // The complementary race: nothing is lost, but a latency fault holds
    // the round trip far above a deliberately tiny RTO, so every message
    // is retransmitted while its ACK is still in flight. The receiver must
    // drop each duplicate and re-ACK it, and the sender must absorb the
    // extra ACKs for already-completed sends without minting a second
    // completion.
    const N: u64 = 8;
    let sim = Sim::new();
    let mut p = Profile::clan();
    p.data.retransmit_timeout = SimDuration::from_micros(20);
    let cluster = Cluster::new(sim.clone(), p, 2, 5);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let san = cluster.san().clone();
    let attrs = ViAttributes::reliable(via::Reliability::ReliableDelivery);
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb.create_vi(ctx, attrs, None, None).unwrap();
            let buf = pb.malloc(N * MSG_LEN as u64);
            let mh = pb
                .register_mem(ctx, buf, N * MSG_LEN as u64, MemAttributes::default())
                .unwrap();
            for i in 0..N {
                vi.post_recv(
                    ctx,
                    Descriptor::recv().segment(buf + i * MSG_LEN as u64, mh, MSG_LEN),
                )
                .unwrap();
            }
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            for _ in 0..N {
                assert!(vi.recv_wait(ctx, WaitMode::Block).is_ok());
            }
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa.create_vi(ctx, attrs, None, None).unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            // +200 us each way on the server's link: RTT >> the 20 us RTO.
            san.install_faults(&fabric::FaultPlan::new().degrade(
                fabric::NodeId(1),
                ctx.now() + SimDuration::from_micros(5),
                SimDuration::from_millis(100),
                SimDuration::from_micros(200),
                0.0,
            ));
            let buf = pa.malloc(MSG_LEN as u64);
            let mh = pa
                .register_mem(ctx, buf, MSG_LEN as u64, MemAttributes::default())
                .unwrap();
            for i in 0..N {
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, MSG_LEN))
                    .unwrap();
                let c = vi.send_wait(ctx, WaitMode::Block);
                assert!(c.is_ok(), "send {i}: {:?}", c.status);
            }
        })
    };
    sim.run_to_completion();
    sh.expect_result();
    ch.expect_result();

    let (cs, ss) = (pa.stats(), pb.stats());
    assert_eq!(ss.msgs_delivered, N, "dups must never reach a descriptor");
    assert_eq!(cs.conn_failures, 0);
    assert!(cs.retransmissions > 0, "RTO below RTT must fire spuriously");
    // Loss-free wire: every spurious copy arrives and is discarded, every
    // ACK (first and re-ACK alike) makes it back.
    assert_eq!(ss.duplicates_dropped, cs.retransmissions);
    assert_eq!(ss.acks_sent, ss.msgs_delivered + ss.duplicates_dropped);
    assert_eq!(cs.acks_received, ss.acks_sent);
    assert!(
        cs.acks_received > N,
        "duplicate ACKs absorbed on done sends"
    );
}
