//! Pins that the fused fast path actually engages — not just that it
//! falls back everywhere. A quiet single-fragment ping-pong on the
//! NIC-offload profile is the canonical fuse-eligible workload: every
//! send should take the fused path, every landing should fold into its
//! delivery event, and the logical event census must balance (audited
//! per provider at the end of the run).

use simkit::{Sim, WaitMode};
use via::{Cluster, Descriptor, Discriminator, MemAttributes, Profile, ViAttributes};

/// Run `iters` single-fragment ping-pong round trips and return the
/// engine's scheduler stats.
fn ping_pong_stats(profile: Profile, iters: usize, msg: u32) -> simkit::SchedStats {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.clone(), profile, 2, 7);
    let (pa, pb) = (cluster.provider(0), cluster.provider(1));
    let sh = {
        let pb = pb.clone();
        sim.spawn("server", Some(pb.cpu()), move |ctx| {
            let vi = pb
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pb.malloc(msg as u64);
            let mh = pb
                .register_mem(ctx, buf, msg as u64, MemAttributes::default())
                .unwrap();
            pb.accept(ctx, &vi, Discriminator(1)).unwrap();
            for _ in 0..iters {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, msg))
                    .unwrap();
                vi.recv_wait(ctx, WaitMode::Poll);
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, msg))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
            }
        })
    };
    let ch = {
        let pa = pa.clone();
        sim.spawn("client", Some(pa.cpu()), move |ctx| {
            let vi = pa
                .create_vi(ctx, ViAttributes::default(), None, None)
                .unwrap();
            let buf = pa.malloc(msg as u64);
            let mh = pa
                .register_mem(ctx, buf, msg as u64, MemAttributes::default())
                .unwrap();
            pa.connect(ctx, &vi, fabric::NodeId(1), Discriminator(1), None)
                .unwrap();
            for _ in 0..iters {
                vi.post_recv(ctx, Descriptor::recv().segment(buf, mh, msg))
                    .unwrap();
                vi.post_send(ctx, Descriptor::send().segment(buf, mh, msg))
                    .unwrap();
                vi.send_wait(ctx, WaitMode::Poll);
                vi.recv_wait(ctx, WaitMode::Poll);
            }
            for p in [&pa, &pb] {
                let audit = p.audit();
                assert!(audit.is_clean(), "audit violations: {:?}", audit.violations);
            }
        })
    };
    sim.run_to_completion();
    sh.expect_result();
    ch.expect_result();
    sim.sched_stats()
}

#[test]
fn offload_ping_pong_fuses() {
    // This test binary owns the process, so pinning the global knob is
    // safe regardless of the VIBE_FUSE the harness exported.
    via::fastpath::set_fuse(true);
    let iters = 64;
    let stats = ping_pong_stats(Profile::clan(), iters, 64);
    let fuse = &stats.fuse;
    assert!(
        fuse.hits as usize >= 2 * iters,
        "every ping-pong send should fuse: {fuse:?}"
    );
    assert_eq!(
        fuse.attempts,
        fuse.hits + fuse.defused(),
        "fuse ledger must balance: {fuse:?}"
    );
    assert_eq!(stats.macro_events, fuse.hits);
    // Each fused send elides Doorbell x1 + Firmware x4, and each folded
    // landing one more Firmware — so at least 5 per hit.
    assert!(
        stats.events_elided >= 5 * fuse.hits,
        "elided {} for {} hits",
        stats.events_elided,
        fuse.hits
    );
}

#[test]
fn disabled_knob_defuses_everything() {
    via::fastpath::set_fuse(false);
    let stats = ping_pong_stats(Profile::clan(), 16, 64);
    via::fastpath::set_fuse(true);
    let fuse = &stats.fuse;
    assert_eq!(fuse.hits, 0, "knob off must fully defuse: {fuse:?}");
    assert_eq!(stats.macro_events, 0);
    assert!(fuse.cause(simkit::DefuseCause::Disabled) > 0);
}

#[test]
fn host_emulated_sends_defuse_but_landings_fold() {
    via::fastpath::set_fuse(true);
    let stats = ping_pong_stats(Profile::mvia(), 16, 64);
    let fuse = &stats.fuse;
    assert_eq!(
        fuse.hits, 0,
        "host-emulated posts never take the fused send: {fuse:?}"
    );
    assert!(
        stats.events_elided > 0,
        "rx folds and ACK elision still apply on emulated profiles"
    );
}
