//! The fused message-lifecycle fast path.
//!
//! An unfused single-fragment send costs seven engine events end to end:
//! doorbell propagation, firmware scan, descriptor-fetch DMA, NIC address
//! translation, fragment DMA + wire handoff (all `Firmware`-class), the
//! fabric forward hop, and the receive-side landing. Every stage's delay
//! is a pure function of state that is fully determined at post time
//! *provided nothing else can interleave* — so when a guard proves the
//! pipeline uncontended, the whole chain collapses into straight-line
//! arithmetic executed inside the posting call: one macro-event on the
//! sender (this module) and one on the receiver (the delivery event, which
//! inlines the landing — see `transport::rx_data`).
//!
//! Exactness is the contract: a fused run must be byte-identical to the
//! unfused run in every committed artifact. The guards here are therefore
//! conservative — any whiff of contention, loss, faults, tracing, or
//! multi-fragment work falls back to the general event chain *before the
//! first side effect*, and each fallback is charged to a
//! [`DefuseCause`] so the X-PAR artifact can report why fusing missed.
//! Elided events are credited to the engine's logical ledger
//! ([`simkit::Sim::note_elided`]), keeping the per-class event census —
//! and thus every golden — identical. Design notes: DESIGN.md §4.5.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use simkit::{DefuseCause, EventClass};

use crate::descriptor::DescOp;
use crate::provider::{Provider, TxJobRef};
use crate::transport::{arm_retransmit_at, complete_send, resolve_job, tx_msg};
use crate::transport::{JobPayload, LastAction};
use crate::types::{Reliability, ViId};
use crate::vi::{Reassembly, RxTarget};
use crate::wire::{DataFrame, Frame};

/// The global fuse knob: `VIBE_FUSE=0` disables fusing for the process
/// (default on). Read once; [`set_fuse`] overrides it afterwards.
fn knob() -> &'static AtomicBool {
    static KNOB: OnceLock<AtomicBool> = OnceLock::new();
    KNOB.get_or_init(|| {
        let on = std::env::var("VIBE_FUSE").map_or(true, |v| v != "0");
        AtomicBool::new(on)
    })
}

/// Whether the fused fast path is enabled (the `VIBE_FUSE` env knob,
/// overridable with [`set_fuse`]).
pub fn fuse_enabled() -> bool {
    knob().load(Ordering::Relaxed)
}

/// Enable or disable the fused fast path in-process. Used by the
/// equivalence property tests and the `fuse` bench group to compare fused
/// and general runs inside one process; runs must not be in flight when
/// the knob flips.
pub fn set_fuse(on: bool) {
    knob().store(on, Ordering::Relaxed);
}

/// Attempt the fused send: execute the entire transmit pipeline —
/// doorbell, firmware scan, descriptor fetch, translation, data DMA,
/// wire handoff — as straight-line arithmetic inside the posting call,
/// eliding one `Doorbell` and four `Firmware` events (the fabric forward
/// hop is folded by [`fabric::San::send_msg_at`] when it can prove
/// sole-writer ordering). Returns the de-fuse cause when any guard fails;
/// no side effect has happened in that case and the caller falls back to
/// the general event chain.
///
/// The caller has already pushed the in-flight entry and charged the
/// host-side post cost, exactly as on the general path.
pub(crate) fn try_fuse_send(
    provider: &Provider,
    vi_id: ViId,
    seq: u64,
    op: DescOp,
    total_len: u64,
    host_emulated: bool,
) -> Result<(), DefuseCause> {
    let profile = &provider.profile;
    if !fuse_enabled() {
        return Err(DefuseCause::Disabled);
    }
    // Host-emulated posts trap into the kernel and RDMA verbs have their
    // own placement paths; only the NIC-offload plain send fuses.
    if host_emulated || op != DescOp::Send {
        return Err(DefuseCause::Other);
    }
    if total_len > profile.wire_mtu as u64 {
        return Err(DefuseCause::MultiFragment);
    }
    let san = &provider.san;
    // Switch-scoped fault windows can reconverge routing mid-message —
    // the precomputed timing would silently ignore the moved path.
    if san.switch_faults_installed() {
        return Err(DefuseCause::Reroute);
    }
    // Multi-switch fabrics route hop by hop through buffered switch ports;
    // the straight-line arithmetic below assumes the one-switch traversal.
    if !san.is_single_switch() {
        return Err(DefuseCause::Topology);
    }
    // Node-scoped windows (node_down / nic_reset) can kill either endpoint
    // inside the precomputed envelope — wiping the very rings and timers
    // the fold's arithmetic assumed would survive. Attributed separately
    // from generic fault windows so X-CRASH's ledger names the culprit.
    if san.node_faults_installed() {
        return Err(DefuseCause::NodeFault);
    }
    // Loss could drop the frame (consuming RNG we must not touch early)
    // and fault plans perturb every stage; both void the precomputation.
    if !san.is_lossless() || san.faults_installed() {
        return Err(DefuseCause::FaultWindow);
    }
    let now = provider.sim.now();
    {
        let st = provider.lock();
        // Tracing hooks observe individual events; eliding any would
        // change the trace stream.
        if st.tracer.enabled() || st.probe.is_some() {
            return Err(DefuseCause::TraceAttached);
        }
        if !st.fw_stalls.is_empty() {
            return Err(DefuseCause::FaultWindow);
        }
        if st.nic_tx.busy || !st.nic_tx.queue.is_empty() || st.nic_tx.fused_until > now {
            return Err(DefuseCause::RingBusy);
        }
        // Anything that could claim the PCI bus or the wire between now
        // and the precomputed wire time makes the eager reservations
        // inexact: an active receive engine, pending reassemblies (more
        // fragments are inbound), other in-flight sends (their ACKs
        // arrive mid-window), or busy links.
        if st.rx_engine_busy > now {
            return Err(DefuseCause::Contention);
        }
        let Some(vi) = st.vis.get(vi_id.index()).and_then(|v| v.as_ref()) else {
            return Err(DefuseCause::Other);
        };
        if vi.send_inflight.len() > 1 || !vi.reassembly.is_empty() {
            return Err(DefuseCause::Contention);
        }
    }
    if !provider.pci.idle(now)
        || !san.uplink_idle(provider.node)
        || !san.downlink_idle(provider.node)
    {
        return Err(DefuseCause::Contention);
    }
    let Some(spec) = resolve_job(provider, &TxJobRef { vi: vi_id, seq }) else {
        return Err(DefuseCause::Other);
    };
    let JobPayload::Data(kind) = spec.payload else {
        return Err(DefuseCause::Other);
    };

    // All guards passed: run the pipeline's arithmetic. Each instant below
    // is exactly what the corresponding general-path event would compute,
    // because the guards proved no other actor can touch the resources
    // in between (tracing is off, so the *_traced helpers' records are
    // no-ops and the untraced forms are identical).
    let t_ring = now + profile.doorbell.propagation();
    let scan = {
        let st = provider.lock();
        profile.firmware.service_delay(st.active_vis())
    };
    let t_scan = t_ring + scan;
    let fetch_end = provider.pci.reserve_at(t_scan, spec.desc_wire);
    let xlate_delay = {
        let mut st = provider.lock();
        let st = &mut *st;
        // Table fetches on a miss reserve the PCI bus internally; the bus
        // was idle and the descriptor fetch just claimed it through
        // `fetch_end`, so those reservations chain exactly as the general
        // translation stage (running at `fetch_end`) would chain them.
        st.xlate
            .nic_translate(spec.pages.iter().copied(), &provider.pci)
    };
    let t_xlate = fetch_end + xlate_delay;
    let dma_end = provider.pci.reserve_at(t_xlate, total_len);
    let t_wire = dma_end + profile.data.tx_frag_nic;

    let msg = tx_msg(provider, vi_id, seq);
    let payload = spec.data[..total_len as usize].to_vec();
    let frame = Frame::Data(DataFrame {
        src_vi: vi_id,
        dst_vi: spec.dst_vi,
        seq,
        frag_idx: 0,
        frag_count: 1,
        msg_len: total_len,
        offset: 0,
        payload,
        kind,
        reliability: spec.reliability,
    });
    san.send_msg_at(
        provider.node,
        spec.dst_node,
        total_len as u32 + profile.frag_header_bytes,
        Box::new(frame),
        Some(msg),
        t_wire,
    );
    {
        let mut st = provider.lock();
        st.stats.msgs_sent += 1;
        // The device is logically occupied until the wire handoff; a
        // follower posted inside this window queues behind it exactly as
        // behind a busy ring (see `transport::nic_enqueue`).
        st.nic_tx.fused_until = t_wire;
        st.nic_tx.release_scheduled = false;
    }
    match spec.on_last {
        LastAction::ArmRetx => arm_retransmit_at(provider, vi_id, seq, t_wire),
        LastAction::CompleteLocal => {
            let p = provider.clone();
            provider.sim.call_at_as(
                EventClass::Completion,
                t_wire + profile.data.completion_write,
                move |_| complete_send(&p, vi_id, seq, Ok(())),
            );
        }
        // AlreadyCompleted is host-emulated only; Nothing is RDMA-read
        // only. Both were filtered above.
        LastAction::AlreadyCompleted | LastAction::Nothing => unreachable!(),
    }
    let sim = &provider.sim;
    sim.note_macro();
    sim.note_fuse_hit();
    sim.note_elided(EventClass::Doorbell, 1);
    sim.note_elided(EventClass::Firmware, 4);
    Ok(())
}

/// A conservative floor on how soon any frame handed to the device after
/// "now" can reach the wire. The elided ACK's eager uplink reservation at
/// `now + ack_processing` is exact only when no later wire handoff can
/// beat it to the link — which holds when the transmit ring is idle (so
/// every future handoff happens at `>= now`) and `ack_processing` is
/// strictly below this floor.
pub(crate) fn min_wire_latency(provider: &Provider) -> simkit::SimDuration {
    let profile = &provider.profile;
    match profile.data_path {
        crate::profile::DataPathKind::HostEmulated => {
            // The post enqueues inline and an RDMA-read request hits the
            // wire straight from the fragment stage with no DMA.
            if profile.supports_rdma_read {
                simkit::SimDuration::ZERO
            } else {
                profile.pci.setup + profile.data.kernel_tx_per_frag
            }
        }
        crate::profile::DataPathKind::NicOffload => {
            // Doorbell propagation + one firmware pass + the descriptor
            // fetch's bus setup. Read requests skip the data DMA, so the
            // floor stops at the fetch.
            profile.doorbell.propagation() + profile.firmware.service_delay(1) + profile.pci.setup
        }
    }
}

/// Whether the receive-side landing of `df` may be folded into the
/// delivery event (called by `transport::rx_data` after the reassembly
/// entry exists, before any landing side effect). Folding runs
/// `rx_landed` inline at delivery time with the precomputed landing
/// instant, eliding the landing's `Firmware` event.
///
/// Only single-fragment plain receives fold: RDMA-with-immediate pops the
/// descriptor inside the landing (an early pop would diverge), read
/// responses complete send descriptors, and Reliable Reception's ACK
/// snapshots the credit ledger at landing time — all excluded for
/// exactness. The early `delivered` mark a fold causes is compensated by
/// `ViState::unfused_highwater`, and lossless in-order delivery makes it
/// dedup-safe.
pub(crate) fn fuse_rx_eligible(provider: &Provider, df: &DataFrame) -> bool {
    if !fuse_enabled() || df.frag_count != 1 || df.reliability == Reliability::ReliableReception {
        return false;
    }
    let san = &provider.san;
    if !san.is_single_switch() || !san.is_lossless() || san.faults_installed() {
        return false;
    }
    let st = provider.lock();
    if st.tracer.enabled() || st.probe.is_some() {
        return false;
    }
    let Some(vi) = st.vis.get(df.dst_vi.index()).and_then(|v| v.as_ref()) else {
        return false;
    };
    matches!(
        vi.reassembly.get(&df.seq),
        Some(Reassembly {
            target: RxTarget::Recv { .. },
            error: None,
            ..
        })
    )
}
