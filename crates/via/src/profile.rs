//! Provider profiles: one VIA engine, three architectures.
//!
//! All three systems the paper evaluates implement the same VIA spec; they
//! differ in *where* the work happens (host kernel vs. NIC firmware vs. NIC
//! hardware) and in constants. A [`Profile`] captures both. Every constant
//! below is either (a) anchored to a number the paper reports (Table 1,
//! Figs. 1–2, the §4.3 narrative) or (b) an era-accurate fill-in, marked as
//! such. The *mechanisms* (translation caches, firmware polling, copies,
//! interrupts) live in `vnic`/`transport`; a profile only selects and
//! prices them — which is what makes [`Profile::custom`] ablations
//! meaningful.

use fabric::NetParams;
use simkit::SimDuration;
use vnic::{DoorbellKind, FirmwareModel, HostParams, PciParams, XlateConfig};

use crate::types::Reliability;

/// Where the data path runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataPathKind {
    /// The NIC DMAs user buffers directly (true zero-copy VIA: Berkeley
    /// VIA, cLAN).
    NicOffload,
    /// The kernel emulates VIA over a conventional NIC, copying between
    /// user buffers and kernel frame buffers (M-VIA).
    HostEmulated,
}

/// Non-data-transfer operation costs (the §3.1 benchmarks / Table 1 and
/// Figs. 1–2). All are host busy time.
#[derive(Clone, Copy, Debug)]
pub struct SetupCosts {
    /// `VipCreateVi`.
    pub create_vi: SimDuration,
    /// `VipDestroyVi`.
    pub destroy_vi: SimDuration,
    /// Client-side connection-manager processing during `VipConnectRequest`.
    pub connect_client: SimDuration,
    /// Server-side processing during `VipConnectWait`/`Accept`.
    pub connect_server: SimDuration,
    /// `VipDisconnect` at the initiator.
    pub teardown: SimDuration,
    /// `VipCQCreate`.
    pub create_cq: SimDuration,
    /// `VipCQDestroy`.
    pub destroy_cq: SimDuration,
    /// Fixed part of `VipRegisterMem`.
    pub reg_base: SimDuration,
    /// Per-page part of `VipRegisterMem` (pinning + table setup).
    pub reg_per_page: SimDuration,
    /// Fixed part of `VipDeregisterMem`.
    pub dereg_base: SimDuration,
    /// Per-page part of `VipDeregisterMem`.
    pub dereg_per_page: SimDuration,
}

/// Data-path costs beyond what the shared mechanisms already price.
#[derive(Clone, Copy, Debug)]
pub struct DataCosts {
    /// Fixed host cost per post beyond descriptor building.
    pub post_overhead: SimDuration,
    /// NIC processing per outbound fragment (LANai firmware is slow; cLAN
    /// hardware is fast; unused on the host-emulated path).
    pub tx_frag_nic: SimDuration,
    /// NIC processing per inbound fragment.
    pub rx_frag_nic: SimDuration,
    /// Kernel processing per outbound fragment (host-emulated path).
    pub kernel_tx_per_frag: SimDuration,
    /// Kernel processing per inbound fragment, including the per-frame
    /// interrupt overhead of the era's GigE driver (host-emulated path).
    pub kernel_rx_per_frag: SimDuration,
    /// Writing completion status back to the host-visible descriptor.
    pub completion_write: SimDuration,
    /// Extra delay for a completion to surface in a CQ rather than the work
    /// queue (the §4.3.3 "2–5 us on BVIA, negligible elsewhere" effect).
    pub cq_post: SimDuration,
    /// Host cost of one CQ poll.
    pub cq_check: SimDuration,
    /// Wire bytes of an ACK frame (reliable modes).
    pub ack_bytes: u32,
    /// NIC/kernel cost to emit or absorb an ACK.
    pub ack_processing: SimDuration,
    /// Retransmission timer for reliable modes. With the adaptive RTO
    /// estimator this is the *floor*: the provider never times out faster
    /// than its calibrated constant, so a clean wire behaves exactly as a
    /// fixed-timeout build.
    pub retransmit_timeout: SimDuration,
    /// Upper bound on the adaptive retransmission timeout, including
    /// exponential backoff (the cap keeps a flapping link from pushing
    /// recovery out to seconds).
    pub max_rto: SimDuration,
    /// Retries before the connection is declared lost.
    pub max_retries: u32,
}

/// Credit-based receive flow control for the reliable modes.
///
/// The receiver counts every receive descriptor it makes available as one
/// *credit*; the cumulative grant total rides back to the sender
/// piggybacked on each ACK. The sender consumes one credit per reliable
/// send and parks descriptors (never transmitting them) once the ledger
/// runs dry — instead of blasting messages the peer must drop for want of
/// a descriptor and rediscovering that via retransmission timeouts.
/// Unreliable VIs are exempt: the spec's UD semantics are silent drops.
#[derive(Clone, Copy, Debug)]
pub struct CreditFlow {
    /// Gate reliable sends on receiver credits.
    pub enabled: bool,
    /// Credits the sender assumes at connect time, before the first
    /// ACK-carried grant arrives. Sized to the work-queue depth so a
    /// receiver that pre-posts keeps the wire full from the first send.
    pub initial: u32,
}

/// Connection keepalive: each side of a connected VI emits a small
/// heartbeat control frame every `interval` and declares the peer dead —
/// `ConnState::Error { cause: PeerDown }`, flushing all descriptors —
/// after `timeout` of silence. Bounded-time crash detection for the
/// fault-tolerance experiments; `None` (the default on every paper
/// profile) arms no timers and sends no frames, so heartbeat-free runs
/// are event-for-event identical to builds without the feature.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatParams {
    /// Gap between consecutive heartbeat frames on a connected VI.
    pub interval: SimDuration,
    /// Silence tolerance before the peer is declared down. Must comfortably
    /// exceed `interval` (several multiples) so queueing jitter on a loaded
    /// uplink never masquerades as a crash.
    pub timeout: SimDuration,
}

impl HeartbeatParams {
    /// A conservative default tuned for the cLAN-class fabrics the crash
    /// experiments run on: 200 µs beat, 4-beat tolerance.
    pub fn fast() -> Self {
        HeartbeatParams {
            interval: SimDuration::from_micros(200),
            timeout: SimDuration::from_micros(800),
        }
    }
}

/// A complete VIA provider architecture + cost calibration.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Short name used in reports ("M-VIA", "BVIA", "cLAN", …).
    pub name: &'static str,
    /// Data-path architecture.
    pub data_path: DataPathKind,
    /// Interconnect this provider runs on.
    pub net: NetParams,
    /// Host cost table.
    pub host: HostParams,
    /// I/O bus model.
    pub pci: PciParams,
    /// Doorbell mechanism.
    pub doorbell: DoorbellKind,
    /// Device-side descriptor scheduling.
    pub firmware: FirmwareModel,
    /// Address-translation architecture.
    pub xlate: XlateConfig,
    /// Fragment payload size the provider segments messages into.
    pub wire_mtu: u32,
    /// Bytes of VIA framing per fragment (counted on the wire).
    pub frag_header_bytes: u32,
    /// Provider cap on a single descriptor's data length (the spec's
    /// MaxTransferSize; the paper's MTU benchmark sweeps it).
    pub max_transfer_size: u32,
    /// Work-queue depth limit.
    pub max_queue_depth: usize,
    /// NIC transmit descriptor-ring capacity (jobs queued on the device
    /// awaiting the transmit engine). A full ring fails the post with
    /// `DescriptorError` instead of queueing unboundedly.
    pub nic_tx_ring: usize,
    /// Credit-based receive flow control (reliable modes).
    pub credit_flow: CreditFlow,
    /// Connection keepalive; `None` (all paper profiles) disables it.
    pub heartbeat: Option<HeartbeatParams>,
    /// Reliability levels this provider implements.
    pub reliability_levels: &'static [Reliability],
    /// RDMA Write support.
    pub supports_rdma_write: bool,
    /// RDMA Read support.
    pub supports_rdma_read: bool,
    /// Non-data-transfer costs.
    pub setup: SetupCosts,
    /// Data-path costs.
    pub data: DataCosts,
}

impl Profile {
    /// Whether `level` is available on this provider.
    pub fn supports_reliability(&self, level: Reliability) -> bool {
        self.reliability_levels.contains(&level)
    }

    /// **M-VIA 1.0 on Packet Engines GNIC-II Gigabit Ethernet.**
    ///
    /// Software VIA in a Linux 2.2 kernel module: kernel-trap doorbells, an
    /// extra copy on each side (the paper: "M-VIA requires extra data
    /// copies which are significant for longer messages"), per-frame
    /// interrupt + driver costs on receive, translation done by the kernel.
    /// Table-1 anchors: create VI 93 us, destroy 0.19 us, connect 6465 us,
    /// teardown 3 us, CQ create 17 us, CQ destroy 8.44 us.
    pub fn mvia() -> Self {
        Profile {
            name: "M-VIA",
            data_path: DataPathKind::HostEmulated,
            net: NetParams::gigabit_ethernet(),
            host: HostParams::pentium_ii_300(),
            pci: PciParams::pci_33_32(),
            doorbell: DoorbellKind::KernelTrap,
            firmware: FirmwareModel::mvia(),
            xlate: XlateConfig::mvia(),
            wire_mtu: 1440,
            frag_header_bytes: 24,
            max_transfer_size: 32 * 1024,
            max_queue_depth: 1024,
            nic_tx_ring: 4096,
            credit_flow: CreditFlow {
                enabled: true,
                initial: 1024,
            },
            heartbeat: None,
            reliability_levels: &[Reliability::Unreliable, Reliability::ReliableDelivery],
            supports_rdma_write: true,
            supports_rdma_read: false,
            setup: SetupCosts {
                create_vi: SimDuration::from_micros(93),         // Table 1
                destroy_vi: SimDuration::from_nanos(190),        // Table 1
                connect_client: SimDuration::from_micros(3_600), // Table 1 (6465 total)
                connect_server: SimDuration::from_micros(2_850),
                teardown: SimDuration::from_micros(3), // Table 1
                create_cq: SimDuration::from_micros(17), // Table 1
                destroy_cq: SimDuration::from_nanos(8_440), // Table 1
                reg_base: SimDuration::from_micros(2), // Fig 1 shape
                reg_per_page: SimDuration::from_nanos(4_000), // Fig 1: steepest slope
                dereg_base: SimDuration::from_micros(1), // Fig 2 shape
                dereg_per_page: SimDuration::from_nanos(2),
            },
            data: DataCosts {
                post_overhead: SimDuration::from_nanos(600),
                tx_frag_nic: SimDuration::ZERO,
                rx_frag_nic: SimDuration::ZERO,
                kernel_tx_per_frag: SimDuration::from_micros(4), // era GigE driver
                kernel_rx_per_frag: SimDuration::from_micros(10), // incl. per-frame IRQ
                completion_write: SimDuration::from_nanos(200),
                cq_post: SimDuration::from_nanos(150), // §4.3.3: negligible
                cq_check: SimDuration::from_nanos(150),
                ack_bytes: 16,
                ack_processing: SimDuration::from_micros(2),
                retransmit_timeout: SimDuration::from_millis(2),
                max_rto: SimDuration::from_millis(64),
                max_retries: 10,
            },
        }
    }

    /// **Berkeley VIA v2.2 on Myrinet (LANai 4.3).**
    ///
    /// NIC-centric VIA: MMIO doorbells into LANai memory, firmware that
    /// polls every VI's send block (Fig. 6's linear latency growth),
    /// translation on the NIC out of host-resident tables through a
    /// software cache (Fig. 5's buffer-reuse sensitivity), and a slow
    /// (~33 MHz) NIC processor that prices each fragment. Table-1 anchors:
    /// create VI 28 us, destroy 0.19 us, connect 496 us, teardown 9 us,
    /// CQ create 206 us, CQ destroy 35 us.
    pub fn bvia() -> Self {
        Profile {
            name: "BVIA",
            data_path: DataPathKind::NicOffload,
            net: NetParams::myrinet(),
            host: HostParams::pentium_ii_300(),
            pci: PciParams {
                setup: SimDuration::from_nanos(400),
                // The LANai's block-burst DMA sustains close to the 33 MHz
                // PCI theoretical rate.
                bandwidth_bps: 125_000_000,
            },
            doorbell: DoorbellKind::Mmio,
            firmware: FirmwareModel::bvia(),
            xlate: XlateConfig::bvia(),
            wire_mtu: 4096,
            frag_header_bytes: 16,
            max_transfer_size: 32 * 1024,
            max_queue_depth: 128,
            nic_tx_ring: 4096,
            credit_flow: CreditFlow {
                enabled: true,
                initial: 128,
            },
            heartbeat: None,
            reliability_levels: &[Reliability::Unreliable],
            supports_rdma_write: false,
            supports_rdma_read: false,
            setup: SetupCosts {
                create_vi: SimDuration::from_micros(28),       // Table 1
                destroy_vi: SimDuration::from_nanos(190),      // Table 1
                connect_client: SimDuration::from_micros(260), // Table 1 (496 total)
                connect_server: SimDuration::from_micros(225),
                teardown: SimDuration::from_micros(9), // Table 1
                create_cq: SimDuration::from_micros(206), // Table 1
                destroy_cq: SimDuration::from_micros(35), // Table 1
                reg_base: SimDuration::from_micros(19), // Fig 1: costliest < 20 KiB
                reg_per_page: SimDuration::from_nanos(700),
                dereg_base: SimDuration::from_micros(8), // Fig 2 shape
                dereg_per_page: SimDuration::from_nanos(4),
            },
            data: DataCosts {
                post_overhead: SimDuration::from_micros(2),
                tx_frag_nic: SimDuration::from_micros(10), // ~33 MHz LANai
                rx_frag_nic: SimDuration::from_micros(10),
                kernel_tx_per_frag: SimDuration::ZERO,
                kernel_rx_per_frag: SimDuration::ZERO,
                completion_write: SimDuration::from_nanos(500),
                cq_post: SimDuration::from_nanos(2_600), // §4.3.3: 2–5 us on BVIA
                cq_check: SimDuration::from_nanos(400),
                ack_bytes: 16,
                ack_processing: SimDuration::from_micros(3),
                retransmit_timeout: SimDuration::from_millis(2),
                max_rto: SimDuration::from_millis(64),
                max_retries: 10,
            },
        }
    }

    /// **Giganet cLAN 1.3.0 (cLAN1000 adapters, cLAN5000 switch).**
    ///
    /// Hardware VIA: MMIO doorbells into a hardware FIFO, translation
    /// tables in NIC memory (no reuse sensitivity), hardware ACK engine
    /// (Reliable Delivery native). The DMA engine sustains ~107 MB/s — the
    /// reason Berkeley VIA's Myrinet overtakes it for very large messages
    /// (paper Fig. 3) despite cLAN's far lower per-message overhead.
    /// Table-1 anchors: create VI 3 us, destroy 0.11 us, connect 2454 us,
    /// teardown 155 us, CQ create 54 us, CQ destroy 15 us.
    pub fn clan() -> Self {
        Profile {
            name: "cLAN",
            data_path: DataPathKind::NicOffload,
            net: NetParams::clan(),
            host: HostParams::pentium_ii_300(),
            pci: PciParams::pci_33_32(),
            doorbell: DoorbellKind::Mmio,
            firmware: FirmwareModel::clan(),
            xlate: XlateConfig::clan(),
            // The cLAN hardware pipelines transfers in 2 KiB cells, which
            // is what keeps its large-message *latency* low while the wire
            // data rate caps its bandwidth.
            wire_mtu: 2048,
            frag_header_bytes: 16,
            max_transfer_size: 64 * 1024,
            max_queue_depth: 1024,
            nic_tx_ring: 4096,
            credit_flow: CreditFlow {
                enabled: true,
                initial: 1024,
            },
            heartbeat: None,
            reliability_levels: &[
                Reliability::Unreliable,
                Reliability::ReliableDelivery,
                Reliability::ReliableReception,
            ],
            supports_rdma_write: true,
            supports_rdma_read: false,
            setup: SetupCosts {
                create_vi: SimDuration::from_micros(3),          // Table 1
                destroy_vi: SimDuration::from_nanos(110),        // Table 1
                connect_client: SimDuration::from_micros(1_350), // Table 1 (2454 total)
                connect_server: SimDuration::from_micros(1_095),
                teardown: SimDuration::from_micros(155), // Table 1
                create_cq: SimDuration::from_micros(54), // Table 1
                destroy_cq: SimDuration::from_micros(15), // Table 1
                reg_base: SimDuration::from_micros(4),   // Fig 1 shape
                reg_per_page: SimDuration::from_nanos(1_100),
                dereg_base: SimDuration::from_micros(3), // Fig 2 shape
                dereg_per_page: SimDuration::from_nanos(3),
            },
            data: DataCosts {
                post_overhead: SimDuration::from_nanos(300),
                tx_frag_nic: SimDuration::from_nanos(900),
                rx_frag_nic: SimDuration::from_nanos(900),
                kernel_tx_per_frag: SimDuration::ZERO,
                kernel_rx_per_frag: SimDuration::ZERO,
                completion_write: SimDuration::from_nanos(400),
                cq_post: SimDuration::from_nanos(150), // §4.3.3: negligible
                cq_check: SimDuration::from_nanos(150),
                ack_bytes: 16,
                ack_processing: SimDuration::from_nanos(600),
                retransmit_timeout: SimDuration::from_millis(1),
                max_rto: SimDuration::from_millis(32),
                max_retries: 10,
            },
        }
    }

    /// All three paper profiles, in the paper's reporting order.
    pub fn paper_trio() -> Vec<Profile> {
        vec![Profile::mvia(), Profile::bvia(), Profile::clan()]
    }

    /// A starting point for ablations: BVIA's architecture with every field
    /// public for modification.
    pub fn custom() -> Self {
        let mut p = Profile::bvia();
        p.name = "custom";
        p
    }

    /// Number of wire fragments a message of `len` bytes needs.
    pub fn fragments_for(&self, len: u64) -> u64 {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.wire_mtu as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trio_names() {
        let names: Vec<_> = Profile::paper_trio().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["M-VIA", "BVIA", "cLAN"]);
    }

    #[test]
    fn table1_anchor_ordering() {
        // The qualitative Table-1 relations the paper calls out.
        let (m, b, c) = (Profile::mvia(), Profile::bvia(), Profile::clan());
        // "cost of establishing connections extremely high in cLAN;
        //  M-VIA higher than BVIA":
        let conn = |p: &Profile| p.setup.connect_client + p.setup.connect_server;
        assert!(conn(&m) > conn(&c));
        assert!(conn(&c) > conn(&b));
        // "cost of creating and destroying a CQ is higher in BVIA":
        assert!(b.setup.create_cq > m.setup.create_cq);
        assert!(b.setup.create_cq > c.setup.create_cq);
        assert!(b.setup.destroy_cq > m.setup.destroy_cq);
        // Create VI: cLAN < BVIA < M-VIA.
        assert!(c.setup.create_vi < b.setup.create_vi);
        assert!(b.setup.create_vi < m.setup.create_vi);
    }

    #[test]
    fn registration_crossover_near_20kib() {
        // Fig 1: "memory registration is more expensive in BVIA for
        // messages of up to 20 KB" — so M-VIA must overtake around there.
        let m = Profile::mvia().setup;
        let b = Profile::bvia().setup;
        let cost = |s: &SetupCosts, pages: u64| s.reg_base + s.reg_per_page * pages;
        assert!(cost(&b, 1) > cost(&m, 1)); // 4 KiB: BVIA dearer
        assert!(cost(&b, 4) > cost(&m, 4)); // 16 KiB: still dearer
        assert!(cost(&m, 7) > cost(&b, 7)); // 28 KiB: M-VIA overtook
    }

    #[test]
    fn reliability_support_sets() {
        assert!(Profile::clan().supports_reliability(Reliability::ReliableReception));
        assert!(!Profile::bvia().supports_reliability(Reliability::ReliableDelivery));
        assert!(Profile::mvia().supports_reliability(Reliability::ReliableDelivery));
        assert!(!Profile::mvia().supports_reliability(Reliability::ReliableReception));
    }

    #[test]
    fn fragment_math() {
        let p = Profile::bvia(); // 4096-byte wire MTU
        assert_eq!(p.fragments_for(0), 1);
        assert_eq!(p.fragments_for(1), 1);
        assert_eq!(p.fragments_for(4096), 1);
        assert_eq!(p.fragments_for(4097), 2);
        assert_eq!(p.fragments_for(28672), 7);
    }

    #[test]
    fn architectural_flags_match_the_papers_descriptions() {
        assert_eq!(Profile::mvia().data_path, DataPathKind::HostEmulated);
        assert_eq!(Profile::bvia().data_path, DataPathKind::NicOffload);
        assert_eq!(Profile::mvia().doorbell, DoorbellKind::KernelTrap);
        assert_eq!(Profile::clan().doorbell, DoorbellKind::Mmio);
        assert!(matches!(
            Profile::bvia().firmware,
            FirmwareModel::PollingLoop { .. }
        ));
        assert!(matches!(
            Profile::clan().firmware,
            FirmwareModel::HardwareFifo { .. }
        ));
    }
}
