//! VIA descriptors: Control Segment, Data Segments, Address Segment.
//!
//! A descriptor describes one work request. Its layout drives two costs the
//! benchmarks see: the host-side build cost (per segment) and the size of
//! the descriptor-fetch DMA the NIC performs (`wire_size`).

use crate::types::{MemHandle, ViaError, ViaResult};

/// Spec limit on data segments per descriptor.
pub const MAX_DATA_SEGMENTS: usize = 252;

/// Modeled size of the control segment in bytes (as DMA'd by the NIC).
pub const CONTROL_SEGMENT_BYTES: u64 = 64;
/// Modeled size of each data/address segment in bytes.
pub const SEGMENT_BYTES: u64 = 16;

/// The operation a descriptor requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DescOp {
    /// Send a message (consumes one remote receive descriptor).
    Send,
    /// Receive a message (matched by one remote send).
    Recv,
    /// Write local data directly into remote registered memory.
    RdmaWrite,
    /// Read remote registered memory into local buffers.
    RdmaRead,
}

/// A local gather/scatter element: `len` bytes at `va` under `handle`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// User virtual address.
    pub va: u64,
    /// Memory handle covering the address range.
    pub handle: MemHandle,
    /// Length in bytes.
    pub len: u32,
}

/// The Address Segment of an RDMA descriptor: where on the remote node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteSegment {
    /// Remote user virtual address.
    pub va: u64,
    /// Remote memory handle (as communicated out of band).
    pub handle: MemHandle,
}

/// A work request, built with the fluent constructors.
///
/// ```
/// use via::descriptor::Descriptor;
/// use via::mem::{MemAttributes, ProcessMem};
///
/// let mut mem = ProcessMem::new(4096);
/// let va = mem.malloc(4096);
/// let h = mem.register(va, 4096, MemAttributes::default()).unwrap();
/// let d = Descriptor::send().segment(va, h, 4096).immediate(0xBEEF);
/// assert_eq!(d.total_len(), 4096);
/// assert!(d.validate_shape().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Descriptor {
    /// Requested operation.
    pub op: DescOp,
    /// Local gather (send/RDMA-write source; recv/RDMA-read scatter target).
    pub segments: Vec<DataSegment>,
    /// RDMA address segment.
    pub remote: Option<RemoteSegment>,
    /// Immediate data carried in the control segment.
    pub immediate: Option<u32>,
}

impl Descriptor {
    fn new(op: DescOp) -> Self {
        Descriptor {
            op,
            segments: Vec::new(),
            remote: None,
            immediate: None,
        }
    }

    /// A send descriptor.
    pub fn send() -> Self {
        Self::new(DescOp::Send)
    }

    /// A receive descriptor.
    pub fn recv() -> Self {
        Self::new(DescOp::Recv)
    }

    /// An RDMA-write descriptor targeting remote `(va, handle)`.
    pub fn rdma_write(remote_va: u64, remote_handle: MemHandle) -> Self {
        let mut d = Self::new(DescOp::RdmaWrite);
        d.remote = Some(RemoteSegment {
            va: remote_va,
            handle: remote_handle,
        });
        d
    }

    /// An RDMA-read descriptor sourcing from remote `(va, handle)`.
    pub fn rdma_read(remote_va: u64, remote_handle: MemHandle) -> Self {
        let mut d = Self::new(DescOp::RdmaRead);
        d.remote = Some(RemoteSegment {
            va: remote_va,
            handle: remote_handle,
        });
        d
    }

    /// Append a local data segment.
    pub fn segment(mut self, va: u64, handle: MemHandle, len: u32) -> Self {
        self.segments.push(DataSegment { va, handle, len });
        self
    }

    /// Attach immediate data.
    pub fn immediate(mut self, imm: u32) -> Self {
        self.immediate = Some(imm);
        self
    }

    /// Sum of segment lengths.
    pub fn total_len(&self) -> u64 {
        self.segments.iter().map(|s| s.len as u64).sum()
    }

    /// Modeled on-host descriptor footprint (what the NIC DMA-fetches).
    pub fn wire_size(&self) -> u64 {
        let segs = self.segments.len() as u64 + self.remote.is_some() as u64;
        CONTROL_SEGMENT_BYTES + SEGMENT_BYTES * segs
    }

    /// Structural validation independent of any provider: segment count,
    /// op/shape coherence.
    pub fn validate_shape(&self) -> ViaResult<()> {
        if self.segments.len() > MAX_DATA_SEGMENTS {
            return Err(ViaError::DescriptorError);
        }
        match self.op {
            DescOp::Send | DescOp::Recv => {
                if self.remote.is_some() {
                    return Err(ViaError::DescriptorError);
                }
            }
            DescOp::RdmaWrite | DescOp::RdmaRead => {
                if self.remote.is_none() {
                    return Err(ViaError::DescriptorError);
                }
                if self.op == DescOp::RdmaRead && self.immediate.is_some() {
                    // The spec forbids immediate data on RDMA reads.
                    return Err(ViaError::DescriptorError);
                }
            }
        }
        Ok(())
    }
}

/// The completed form of a descriptor, as returned by `*_done`/`*_wait`
/// (the spec writes completion into the descriptor's control segment; we
/// hand back a value instead).
#[derive(Clone, Debug)]
pub struct Completion {
    /// Operation that completed.
    pub op: DescOp,
    /// Final status.
    pub status: ViaResult<()>,
    /// Bytes transferred. For receives: the incoming message's size.
    pub length: u64,
    /// Immediate data delivered with the message, if any.
    pub immediate: Option<u32>,
}

impl Completion {
    /// True if the operation succeeded.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

#[cfg(test)]
impl MemHandle {
    /// Test-only constructor for doctests/unit tests.
    pub fn test(v: u32) -> Self {
        MemHandle(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: u32) -> MemHandle {
        MemHandle::test(v)
    }

    #[test]
    fn builder_accumulates_segments() {
        let d = Descriptor::send()
            .segment(0x1000, h(0), 100)
            .segment(0x2000, h(1), 200);
        assert_eq!(d.total_len(), 300);
        assert_eq!(d.segments.len(), 2);
        assert!(d.validate_shape().is_ok());
    }

    #[test]
    fn wire_size_grows_per_segment() {
        let base = Descriptor::send().wire_size();
        let one = Descriptor::send().segment(0, h(0), 1).wire_size();
        let rdma = Descriptor::rdma_write(0, h(0))
            .segment(0, h(0), 1)
            .wire_size();
        assert_eq!(one - base, SEGMENT_BYTES);
        assert_eq!(rdma - one, SEGMENT_BYTES); // the address segment
    }

    #[test]
    fn too_many_segments_rejected() {
        let mut d = Descriptor::send();
        for _ in 0..=MAX_DATA_SEGMENTS {
            d = d.segment(0x1000, h(0), 1);
        }
        assert_eq!(d.validate_shape(), Err(ViaError::DescriptorError));
    }

    #[test]
    fn send_with_remote_segment_rejected() {
        let mut d = Descriptor::send().segment(0x1000, h(0), 8);
        d.remote = Some(RemoteSegment {
            va: 0,
            handle: h(1),
        });
        assert_eq!(d.validate_shape(), Err(ViaError::DescriptorError));
    }

    #[test]
    fn rdma_requires_remote_segment() {
        let mut d = Descriptor::rdma_write(0x9000, h(2)).segment(0x1000, h(0), 8);
        assert!(d.validate_shape().is_ok());
        d.remote = None;
        assert_eq!(d.validate_shape(), Err(ViaError::DescriptorError));
    }

    #[test]
    fn rdma_read_rejects_immediate() {
        let d = Descriptor::rdma_read(0x9000, h(2))
            .segment(0x1000, h(0), 8)
            .immediate(1);
        assert_eq!(d.validate_shape(), Err(ViaError::DescriptorError));
    }

    #[test]
    fn zero_segment_send_is_valid() {
        // A zero-length send (control-segment-only, e.g. immediate ping).
        let d = Descriptor::send().immediate(42);
        assert!(d.validate_shape().is_ok());
        assert_eq!(d.total_len(), 0);
    }
}
